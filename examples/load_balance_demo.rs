//! Load-balance demonstration: watch the Hybrid scheme's worklist tame
//! the imbalance that sinks the StackOnly scheme (the paper's Figure 5
//! in miniature).
//!
//! ```text
//! cargo run --release --example load_balance_demo
//! ```

use parvc::graph::gen;
use parvc::prelude::*;

fn main() {
    // A dense p_hat-style complement: the most imbalanced family in the
    // paper's evaluation (§V-C).
    let g = gen::p_hat_complement(150, 3, 99);
    println!(
        "instance: |V|={}, |E|={}, |E|/|V|={:.1} (high-degree class)\n",
        g.num_vertices(),
        g.num_edges(),
        g.num_edges() as f64 / g.num_vertices() as f64
    );

    for (label, algorithm) in [
        (
            "StackOnly (prior work)",
            Algorithm::StackOnly { start_depth: 8 },
        ),
        ("Hybrid (the paper)", Algorithm::Hybrid),
    ] {
        let solver = Solver::builder()
            .algorithm(algorithm)
            .device(DeviceSpec::scaled(8))
            .grid_limit(Some(16))
            .build();
        let result = solver.solve_mvc(&g);
        let load = &result.stats.report.sm_load;
        println!(
            "{label}: MVC size {} in {:.0} ms",
            result.size,
            result.stats.seconds() * 1e3
        );
        println!(
            "  tree nodes {:>8}   device cycles {:>12}",
            result.stats.tree_nodes, result.stats.device_cycles
        );
        println!(
            "  per-SM load (x mean): min {:.2}  median {:.2}  max {:.2}  (imbalance {:.3})",
            load.min(),
            load.quantile(0.5),
            load.max(),
            load.imbalance()
        );
        // A bar chart of normalized SM loads.
        for (sm, &norm) in load.normalized.iter().enumerate() {
            let bar = "#".repeat((norm * 20.0).round() as usize);
            println!("  SM{sm:<2} {norm:>5.2} {bar}");
        }
        let donated: u64 = result
            .stats
            .report
            .blocks
            .iter()
            .map(|b| b.nodes_donated)
            .sum();
        if donated > 0 {
            println!("  (blocks donated {donated} sub-trees through the global worklist)");
        }
        println!();
    }
}
