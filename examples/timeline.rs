//! Activity timelines: what every thread block was doing, over the
//! launch's model-cycle horizon — the paper's SM-clock instrumentation
//! (§V-D) turned into an ASCII Gantt chart.
//!
//! Long runs of `w` (waiting on the worklist) on most rows while one
//! row grinds through rules = starvation; the Hybrid donation keeps all
//! rows busy.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use parvc::graph::gen;
use parvc::prelude::*;
use parvc::simgpu::trace;

fn main() {
    let g = gen::p_hat_complement(120, 3, 5);
    println!(
        "instance: |V|={}, |E|={} (dense p_hat-style complement)\n",
        g.num_vertices(),
        g.num_edges()
    );

    for (label, algorithm) in [
        ("StackOnly", Algorithm::StackOnly { start_depth: 8 }),
        ("Hybrid", Algorithm::Hybrid),
    ] {
        let solver = Solver::builder()
            .algorithm(algorithm)
            .device(DeviceSpec::scaled(4))
            .grid_limit(Some(8))
            .record_trace(true)
            .build();
        let r = solver.solve_mvc(&g);
        println!(
            "--- {label}: MVC {} in {:.0} ms, {} tree nodes ---",
            r.size,
            r.stats.seconds() * 1e3,
            r.stats.tree_nodes
        );
        print!("{}", trace::render_launch(&r.stats.report.blocks, 96));
        println!();
    }
}
