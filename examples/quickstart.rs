//! Quickstart: solve MVC and PVC on a small graph with each of the
//! three traversal schemes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parvc::graph::gen;
use parvc::prelude::*;

fn main() {
    // The paper's Figure 2 example: two triangles sharing a vertex.
    let g = gen::paper_example();
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    for algorithm in [
        Algorithm::Sequential,
        Algorithm::StackOnly { start_depth: 4 },
        Algorithm::Hybrid,
    ] {
        let solver = Solver::builder()
            .algorithm(algorithm)
            .grid_limit(Some(8))
            .build();
        let result = solver.solve_mvc(&g);
        assert!(is_vertex_cover(&g, &result.cover));
        println!(
            "{:<16} MVC size {} cover {:?}  ({} tree nodes, {:.1} ms)",
            algorithm.to_string(),
            result.size,
            result.cover,
            result.stats.tree_nodes,
            result.stats.seconds() * 1e3,
        );
    }

    // PVC: is there a cover of size 2? of size 3?
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(8))
        .build();
    for k in [2, 3] {
        match solver.solve_pvc(&g, k).cover {
            Some(cover) => println!("PVC k={k}: yes, e.g. {cover:?}"),
            None => println!("PVC k={k}: no cover of size <= {k} exists"),
        }
    }

    // A bigger instance: a p_hat-style dense graph, like the paper's
    // DIMACS complements.
    let big = gen::p_hat_complement(80, 2, 42);
    let result = solver.solve_mvc(&big);
    println!(
        "\np_hat-style (|V|=80, |E|={}): MVC size {} in {:.1} ms ({} tree nodes)",
        big.num_edges(),
        result.size,
        result.stats.seconds() * 1e3,
        result.stats.tree_nodes,
    );
    assert!(is_vertex_cover(&big, &result.cover));
}
