//! Knocking out a protein-interaction network — the computational
//! biology application from the paper's introduction (§I).
//!
//! Model: proteins are vertices, observed pairwise interactions are
//! edges. A minimum vertex cover is a smallest set of proteins whose
//! removal (knockout) disrupts *every* interaction — the classic
//! "vertex cover as network attack set" formulation. Power-law
//! interaction networks are exactly where the degree-one and
//! high-degree reduction rules shine.
//!
//! ```text
//! cargo run --release --example bio_network
//! ```

use parvc::graph::{analysis, gen, ops};
use parvc::prelude::*;

fn main() {
    // Protein-interaction networks are scale-free: preferential
    // attachment reproduces the hub-dominated topology.
    let ppi = gen::barabasi_albert(400, 3, 7);
    let stats = analysis::degree_stats(&ppi);
    println!(
        "synthetic PPI network: {} proteins, {} interactions (degree mean {:.1}, max {})",
        ppi.num_vertices(),
        ppi.num_edges(),
        stats.mean,
        stats.max,
    );

    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(8))
        .build();

    let mvc = solver.solve_mvc(&ppi);
    assert!(is_vertex_cover(&ppi, &mvc.cover));
    println!(
        "smallest knockout set disrupting all interactions: {} proteins ({:.1} ms, {} tree nodes)",
        mvc.size,
        mvc.stats.seconds() * 1e3,
        mvc.stats.tree_nodes,
    );

    // Hubs should dominate the knockout set — count how many of the 20
    // highest-degree proteins it contains.
    let mut by_degree: Vec<u32> = ppi.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(ppi.degree(v)));
    let hubs = &by_degree[..20];
    let in_cover = hubs.iter().filter(|h| mvc.cover.contains(h)).count();
    println!("{in_cover} of the 20 highest-degree hubs are in the knockout set");

    // Verify the knockout: the residual network must be interaction-free.
    let survivors: Vec<u32> = ppi.vertices().filter(|v| !mvc.cover.contains(v)).collect();
    let (residual, _) = ops::induced_subgraph(&ppi, &survivors);
    assert_eq!(
        residual.num_edges(),
        0,
        "knockout must disrupt every interaction"
    );
    println!(
        "residual network: {} proteins, {} interactions (verified edgeless)",
        residual.num_vertices(),
        residual.num_edges()
    );

    // The complement view: the surviving proteins form a maximum
    // independent set — the largest interaction-free panel for a
    // follow-up assay.
    let mis = solver.solve_mis(&ppi);
    println!(
        "largest interaction-free protein panel: {} proteins",
        mis.size
    );
}
