//! Conflict-aware task scheduling via vertex cover — one of the paper's
//! motivating applications (crew rostering / multiprocessor DSP
//! resynchronization, §I).
//!
//! Model: tasks are vertices; an edge joins two tasks that cannot keep
//! their current assignments simultaneously (shared crew, shared
//! resource window). A *minimum vertex cover* is the smallest set of
//! tasks to reschedule so that no conflict remains; the complementary
//! independent set keeps its assignments untouched.
//!
//! ```text
//! cargo run --release --example scheduling
//! ```

use parvc::graph::GraphBuilder;
use parvc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic rostering instance: `crews` crews each serve a chain of
/// shifts; overlapping shift windows across crews conflict.
fn build_conflict_graph(crews: u32, shifts_per_crew: u32, conflict_rate: f64) -> CsrGraph {
    let n = crews * shifts_per_crew;
    let mut rng = StdRng::seed_from_u64(2022);
    let mut b = GraphBuilder::new(n);
    // Consecutive shifts of one crew always conflict (turnaround time).
    for c in 0..crews {
        for s in 1..shifts_per_crew {
            b.add_edge(c * shifts_per_crew + s - 1, c * shifts_per_crew + s)
                .expect("in range");
        }
    }
    // Cross-crew conflicts: same depot, overlapping window.
    for u in 0..n {
        for v in (u + 1)..n {
            if u / shifts_per_crew != v / shifts_per_crew && rng.gen::<f64>() < conflict_rate {
                b.add_edge(u, v).expect("in range");
            }
        }
    }
    b.build()
}

fn main() {
    let g = build_conflict_graph(12, 10, 0.02);
    println!(
        "rostering conflict graph: {} shift assignments, {} conflicts",
        g.num_vertices(),
        g.num_edges()
    );

    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(8))
        .build();

    // How many assignments must be redone?
    let mvc = solver.solve_mvc(&g);
    assert!(is_vertex_cover(&g, &mvc.cover));
    println!(
        "minimum reschedule set: {} of {} assignments ({:.1}% of the roster), {:.1} ms",
        mvc.size,
        g.num_vertices(),
        mvc.size as f64 / g.num_vertices() as f64 * 100.0,
        mvc.stats.seconds() * 1e3,
    );

    // Planner question: can we fix everything by redoing at most B
    // assignments? That is PVC with k = B.
    for budget in [mvc.size - 1, mvc.size, mvc.size + 5] {
        match solver.solve_pvc(&g, budget).cover {
            Some(cover) => println!(
                "budget {budget}: feasible — reschedule {} assignments",
                cover.len()
            ),
            None => println!("budget {budget}: infeasible — no reschedule set that small"),
        }
    }

    // The stable part of the roster is the complementary independent set.
    let mis = solver.solve_mis(&g);
    println!(
        "{} assignments ({:.1}%) keep their slots untouched",
        mis.size,
        mis.size as f64 / g.num_vertices() as f64 * 100.0,
    );
}
