//! Kernelization walkthrough: what `parvc-prep` does to a sparse
//! instance before the branch-and-reduce search ever starts, and why
//! that turns intractable instances into sub-second ones.
//!
//! ```text
//! cargo run --release --example kernelize
//! ```
//!
//! The key snippets of this walkthrough also live as doc-tested
//! examples on the public API — `parvc_prep::preprocess`,
//! `parvc_core::SolverBuilder`, and `parvc_core::Engine::solve` — so
//! `cargo test --doc` keeps them honest.

use std::time::Duration;

use parvc::graph::{gen, ops};
use parvc::prelude::*;
use parvc::prep::{preprocess, PrepConfig};

fn main() {
    // A composite sparse network: a power-grid-style backbone (a
    // spanning tree plus chords — pure reduction fodder) living next
    // to hundreds of small dense communities (each needs real
    // branching). The degree rules erase the backbone, and the
    // component split turns the communities into independent
    // sub-searches; without preprocessing, one branch-and-bound tree
    // has to cross-product its way through all of them while dragging
    // 20k-wide degree arrays along.
    let g = ops::disjoint_union(
        &gen::power_grid_like(12_000, 1_800, 42),
        &gen::sparse_components(8_000, 400, 0.3, 42),
    );
    println!(
        "instance: |V|={} |E|={} (avg degree {:.2})\n",
        g.num_vertices(),
        g.num_edges(),
        2.0 * g.num_edges() as f64 / g.num_vertices() as f64
    );

    // Step 1: run the pipeline alone and look at what each rule did.
    let kernel = preprocess(&g, &PrepConfig::default());
    let s = &kernel.stats;
    println!("per-rule elimination:");
    for r in &s.rules {
        println!(
            "  {:<16} covered {:>6}  excluded {:>6}  ({} passes)",
            r.name, r.covered, r.excluded, r.passes
        );
    }
    println!(
        "\nkernel: |V|={} |E|={} in {} components (largest {}) — {:.1}% eliminated",
        s.kernel_vertices,
        s.kernel_edges,
        s.components,
        s.largest_component,
        s.elimination() * 100.0
    );

    // Step 2: the same pipeline through the solver façade. Each kernel
    // component becomes an independent engine sub-search under the
    // work-stealing policy; the sub-covers are lifted back and the
    // per-component optima sum into the global optimum.
    let solver = Solver::builder()
        .algorithm(Algorithm::WorkStealing)
        .grid_limit(Some(8))
        .deadline(Some(Duration::from_secs(10)))
        .preprocess(PrepConfig::default())
        .build();
    let r = solver.solve_mvc(&g);
    assert!(is_vertex_cover(&g, &r.cover));
    println!(
        "\nkernelized solve: cover {}{} in {:.3}s ({} tree nodes)",
        r.size,
        if r.stats.timed_out {
            " (budget hit, not proven)"
        } else {
            " (proven minimum)"
        },
        r.stats.seconds(),
        r.stats.tree_nodes
    );

    // Step 3: the unpreprocessed path under the same budget, for
    // contrast. The greedy seed alone is O(best · |V|) and the search
    // cannot split components, so the budget expires with an unproven
    // bound.
    let plain = Solver::builder()
        .algorithm(Algorithm::WorkStealing)
        .grid_limit(Some(8))
        .deadline(Some(Duration::from_secs(2)))
        .build();
    let p = plain.solve_mvc(&g);
    assert!(is_vertex_cover(&g, &p.cover));
    println!(
        "unpreprocessed:   cover {}{} in {:.3}s",
        p.size,
        if p.stats.timed_out {
            " (budget hit, not proven)"
        } else {
            " (proven minimum)"
        },
        p.stats.seconds()
    );
}
