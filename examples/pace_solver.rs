//! A PACE-challenge-style exact vertex cover solver driver.
//!
//! Reads a DIMACS-format graph from a file (or generates a PACE-like
//! instance when no path is given), solves MVC exactly with the Hybrid
//! scheme under a time budget, and prints the solution in the PACE
//! output convention (size, then one vertex per line, 1-based).
//!
//! ```text
//! cargo run --release --example pace_solver -- [graph.dimacs] [budget-secs]
//! ```

use std::io::BufReader;
use std::time::Duration;

use parvc::graph::{gen, io};
use parvc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let budget = args
        .next()
        .map(|s| s.parse::<f64>().expect("budget must be seconds"))
        .unwrap_or(30.0);

    let graph = match &path {
        Some(p) => {
            let file = std::fs::File::open(p).unwrap_or_else(|e| panic!("cannot open {p}: {e}"));
            io::parse_dimacs(BufReader::new(file))
                .unwrap_or_else(|e| panic!("cannot parse {p}: {e}"))
        }
        None => {
            eprintln!("no input file; generating a PACE-2019-style instance");
            gen::pace_like(160, 7, 4)
        }
    };
    eprintln!(
        "c instance: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(16))
        .deadline(Some(Duration::from_secs_f64(budget)))
        .build();

    let result = solver.solve_mvc(&graph);
    assert!(
        is_vertex_cover(&graph, &result.cover),
        "solver returned a non-cover"
    );

    // PACE output format: `s vc <n> <size>`, then the cover, 1-based.
    if result.stats.timed_out {
        eprintln!(
            "c budget of {budget}s exhausted — best cover found has size {} (not proven optimal)",
            result.size
        );
    } else {
        eprintln!(
            "c optimum proven in {:.2}s ({} tree nodes)",
            result.stats.seconds(),
            result.stats.tree_nodes
        );
    }
    println!("s vc {} {}", graph.num_vertices(), result.size);
    let mut out = String::new();
    for v in &result.cover {
        out.push_str(&(v + 1).to_string());
        out.push('\n');
    }
    print!("{out}");
}
