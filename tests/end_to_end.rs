//! End-to-end flows: realistic instances per family, deadline
//! behaviour, IO round-trips into the solver, and launch planning.

use std::time::Duration;

use parvc::core::{is_vertex_cover, Algorithm, Solver};
use parvc::graph::{analysis, gen, io, ops};
use parvc::simgpu::{DeviceSpec, KernelVariant};

fn hybrid() -> Solver {
    Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(8))
        .build()
}

#[test]
fn realistic_instance_per_family() {
    // One moderate instance per evaluated family, solved and verified.
    let cases = vec![
        ("p_hat_complement", gen::p_hat_complement(80, 2, 17)),
        ("power_law", gen::barabasi_albert(150, 4, 17)),
        ("small_world", gen::watts_strogatz(150, 4, 0.1, 17)),
        ("bipartite", gen::bipartite_gnp(40, 80, 0.12, 17)),
        ("communities", gen::sparse_components(120, 12, 0.4, 17)),
        ("pace_style", gen::pace_like(100, 5, 17)),
    ];
    let solver = hybrid();
    for (name, g) in cases {
        let r = solver.solve_mvc(&g);
        assert!(!r.stats.timed_out, "{name} should not time out");
        assert!(is_vertex_cover(&g, &r.cover), "{name}: invalid cover");
        // The greedy bound brackets the optimum.
        assert!(r.size <= r.stats.greedy_size, "{name}: worse than greedy");
        // PVC cross-check at the discovered optimum.
        assert!(
            solver.solve_pvc(&g, r.size).found(),
            "{name}: PVC at min failed"
        );
        if r.size > 0 {
            assert!(
                !solver.solve_pvc(&g, r.size - 1).found(),
                "{name}: PVC below min succeeded"
            );
        }
    }
}

#[test]
fn deadline_interrupts_and_flags() {
    // A deliberately hard instance with a tiny budget must return
    // best-so-far quickly, flagged as timed out — on every algorithm.
    let g = gen::random_geometric(200, 0.12, 5);
    for algorithm in [
        Algorithm::Sequential,
        Algorithm::StackOnly { start_depth: 8 },
        Algorithm::Hybrid,
        Algorithm::WorkStealing,
    ] {
        let solver = Solver::builder()
            .algorithm(algorithm)
            .grid_limit(Some(4))
            .deadline(Some(Duration::from_millis(150)))
            .build();
        let start = std::time::Instant::now();
        let r = solver.solve_mvc(&g);
        assert!(r.stats.timed_out, "{algorithm}: expected a timeout");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "{algorithm}: deadline not honored ({:?})",
            start.elapsed()
        );
        // Best-so-far is still a valid cover (greedy at worst).
        assert!(
            is_vertex_cover(&g, &r.cover),
            "{algorithm}: timeout result invalid"
        );
        assert!(r.size <= r.stats.greedy_size);
    }
}

#[test]
fn dimacs_roundtrip_through_solver() {
    let g = gen::p_hat_complement(40, 3, 23);
    let mut buf = Vec::new();
    io::write_dimacs(&g, "edge", &mut buf).unwrap();
    let parsed = io::parse_dimacs(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(parsed, g);
    let a = hybrid().solve_mvc(&g).size;
    let b = hybrid().solve_mvc(&parsed).size;
    assert_eq!(a, b);
}

#[test]
fn clique_complement_duality() {
    // A maximum clique of G is a maximum independent set of comp(G):
    // MVC(comp(G)) = |V| - clique(G). Check on a known case: the
    // Petersen graph's maximum clique is an edge (size 2).
    let g = gen::petersen();
    let comp = ops::complement(&g);
    let mvc_comp = hybrid().solve_mvc(&comp);
    assert_eq!(g.num_vertices() - mvc_comp.size, 2);
}

#[test]
fn launch_planning_matches_graph_scale() {
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .device(DeviceSpec::v100())
        .grid_limit(None)
        .build();
    // Small dense graph → shared-memory kernel; huge graph → global.
    let small = gen::p_hat_complement(300, 1, 1);
    let plan = solver.plan_launch(&small, 60);
    assert_eq!(plan.variant, KernelVariant::SharedMem);
    assert!(plan.full_occupancy);
    assert!(plan.grid_blocks >= 80, "V100 grid should span all SMs");

    let huge = gen::barabasi_albert(40_000, 2, 1);
    let plan = solver.plan_launch(&huge, 100);
    assert_eq!(plan.variant, KernelVariant::GlobalMem);
    assert!(plan.total_global_bytes <= DeviceSpec::v100().global_mem);
}

#[test]
fn degree_classes_match_table_one() {
    // The classifier must reproduce the paper's split on our stand-ins.
    assert_eq!(
        analysis::degree_class(&gen::p_hat_complement(100, 1, 1)),
        analysis::DegreeClass::High
    );
    assert_eq!(
        analysis::degree_class(&gen::watts_strogatz(200, 4, 0.1, 1)),
        analysis::DegreeClass::Low
    );
    assert_eq!(
        analysis::degree_class(&gen::pace_like(150, 6, 1)),
        analysis::DegreeClass::Low
    );
}

#[test]
fn solver_statistics_are_coherent() {
    let g = gen::p_hat_complement(60, 2, 31);
    let r = hybrid().solve_mvc(&g);
    let report = &r.stats.report;
    // Block-level counts reconcile with the aggregates.
    let nodes: u64 = report.blocks.iter().map(|b| b.tree_nodes_visited).sum();
    assert_eq!(nodes, r.stats.tree_nodes);
    assert_eq!(report.total_tree_nodes, nodes);
    // Load normalization averages to ~1 across SMs with any work.
    let mean: f64 =
        report.sm_load.normalized.iter().sum::<f64>() / report.sm_load.normalized.len() as f64;
    assert!((mean - 1.0).abs() < 1e-9 || nodes == 0);
    // Donated nodes were either consumed or the worklist drained empty.
    let donated: u64 = report.blocks.iter().map(|b| b.nodes_donated).sum();
    let consumed: u64 = report.blocks.iter().map(|b| b.nodes_from_worklist).sum();
    assert_eq!(
        consumed,
        donated + 1,
        "every donation plus the seed is consumed exactly once"
    );
}

#[test]
fn pvc_extreme_parameters() {
    let g = gen::cycle(9); // MVC = 5
    let solver = hybrid();
    assert!(!solver.solve_pvc(&g, 0).found());
    assert!(!solver.solve_pvc(&g, 4).found());
    assert!(solver.solve_pvc(&g, 5).found());
    assert!(solver.solve_pvc(&g, 9).found());
    assert!(solver.solve_pvc(&g, u32::MAX - 2).found());
}
