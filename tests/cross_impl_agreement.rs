//! Cross-policy agreement: every scheduling policy of the engine —
//! Sequential, StackOnly, Hybrid, WorkStealing, Batched — must
//! produce identical MVC sizes (and consistent PVC answers, and
//! identical weighted-MVC weights) on randomized instances, all
//! validated against the brute-force oracles.

use parvc::core::brute::{brute_force_mvc, weighted_brute_force};
use parvc::core::{is_vertex_cover, Algorithm, PrepConfig, Solver};
use parvc::graph::{gen, CsrGraph};
use proptest::prelude::*;

fn solvers() -> Vec<(&'static str, Solver)> {
    vec![
        (
            "sequential",
            Solver::builder().algorithm(Algorithm::Sequential).build(),
        ),
        (
            "stackonly",
            Solver::builder()
                .algorithm(Algorithm::StackOnly { start_depth: 5 })
                .grid_limit(Some(6))
                .build(),
        ),
        (
            "hybrid",
            Solver::builder()
                .algorithm(Algorithm::Hybrid)
                .grid_limit(Some(6))
                .build(),
        ),
        (
            "worksteal",
            Solver::builder()
                .algorithm(Algorithm::WorkStealing)
                .grid_limit(Some(6))
                .build(),
        ),
        (
            "batch",
            Solver::builder()
                .algorithm(Algorithm::Batched)
                .grid_limit(Some(6))
                .build(),
        ),
    ]
}

/// Arbitrary simple graph on up to 14 vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (4u32..=14).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..40).prop_map(move |pairs| {
            let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
            CsrGraph::from_edges(n, &edges).expect("filtered edges are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_implementations_find_the_optimum(g in arb_graph()) {
        let (opt, _) = brute_force_mvc(&g);
        for (name, solver) in solvers() {
            let r = solver.solve_mvc(&g);
            prop_assert_eq!(r.size, opt, "{} disagrees with brute force", name);
            prop_assert!(is_vertex_cover(&g, &r.cover), "{} returned a non-cover", name);
            prop_assert_eq!(r.cover.len() as u32, r.size, "{} cover/size mismatch", name);
        }
    }

    #[test]
    fn pvc_answers_match_the_optimum(g in arb_graph(), dk in 0u32..3) {
        let (opt, _) = brute_force_mvc(&g);
        // Query around the optimum: k < opt must fail, k >= opt succeed.
        let k = (opt + dk).saturating_sub(1);
        for (name, solver) in solvers() {
            let r = solver.solve_pvc(&g, k);
            if k >= opt {
                let cover = r.cover.expect("feasible k must yield a cover");
                prop_assert!(cover.len() as u32 <= k, "{} cover exceeds k", name);
                prop_assert!(is_vertex_cover(&g, &cover), "{} returned a non-cover", name);
            } else {
                prop_assert!(r.cover.is_none(), "{} found an impossible cover", name);
            }
        }
    }

    /// Weighted agreement on arbitrary graphs: every policy matches
    /// the weighted oracle, using Sequential as the cross-check.
    #[test]
    fn weighted_mode_agrees_across_policies(g in arb_graph(), wseed in 0u64..1000) {
        let g = gen::with_uniform_weights(g, 10, wseed);
        let (opt, _) = weighted_brute_force(&g);
        for (name, solver) in solvers() {
            let solver = Solver::builder()
                .algorithm(solver.algorithm())
                .grid_limit(Some(6))
                .weighted()
                .build();
            let r = solver.solve_mvc(&g);
            prop_assert_eq!(r.weight, opt, "{} disagrees with the weighted oracle", name);
            prop_assert!(is_vertex_cover(&g, &r.cover), "{} returned a non-cover", name);
            prop_assert_eq!(r.weight, g.cover_weight(&r.cover), "{} weight/cover mismatch", name);
        }
    }

    #[test]
    fn mis_complements_mvc(g in arb_graph()) {
        let solver = Solver::builder().algorithm(Algorithm::Sequential).build();
        let mis = solver.solve_mis(&g);
        let mvc = solver.solve_mvc(&g);
        prop_assert_eq!(mis.size + mvc.size, g.num_vertices());
        prop_assert!(parvc::core::is_independent_set(&g, &mis.set));
    }
}

/// A random instance from the generator corpus the engine's policies
/// must agree on: G(n,p), Barabási–Albert, 2-D grids, and sparse
/// multi-component graphs (the families with the most dissimilar
/// search-tree shapes).
fn arb_corpus_graph() -> impl Strategy<Value = (&'static str, CsrGraph)> {
    (0u8..4, 0u64..1_000).prop_map(|(family, seed)| match family {
        0 => ("gnp", gen::gnp(20 + (seed % 15) as u32, 0.25, seed)),
        1 => ("ba", gen::barabasi_albert(30 + (seed % 20) as u32, 3, seed)),
        2 => (
            "grid",
            gen::grid2d(3 + (seed % 4) as u32, 3 + (seed / 7 % 4) as u32),
        ),
        _ => (
            "components",
            gen::sparse_components(36 + (seed % 12) as u32, 5, 0.35, seed),
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: all four scheduling policies return the
    /// same optimal MVC size and a verified cover across the corpus —
    /// with kernelization **off and on** — using Sequential (itself
    /// brute-force-validated above) as the reference.
    #[test]
    fn all_policies_agree_across_generator_corpus((family, g) in arb_corpus_graph()) {
        let reference = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        prop_assert!(is_vertex_cover(&g, &reference.cover), "sequential non-cover on {}", family);
        for (name, solver) in solvers() {
            let algorithm = solver.algorithm();
            let r = solver.solve_mvc(&g);
            prop_assert_eq!(r.size, reference.size, "{} vs sequential on {}", name, family);
            prop_assert!(is_vertex_cover(&g, &r.cover), "{} non-cover on {}", name, family);
            prop_assert_eq!(r.cover.len() as u32, r.size, "{} cover/size mismatch", name);

            let prepped = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(6))
                .preprocess(PrepConfig::default())
                .build()
                .solve_mvc(&g);
            prop_assert_eq!(
                prepped.size, reference.size,
                "{} (prep) vs sequential on {}", name, family
            );
            prop_assert!(
                is_vertex_cover(&g, &prepped.cover),
                "{} (prep) non-cover on {}", name, family
            );
        }
    }
}

#[test]
fn agreement_on_every_named_family() {
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("petersen", gen::petersen()),
        ("paper_example", gen::paper_example()),
        ("grid_4x5", gen::grid2d(4, 5)),
        ("p_hat_comp", gen::p_hat_complement(40, 2, 3)),
        ("ba", gen::barabasi_albert(60, 3, 3)),
        ("ws", gen::watts_strogatz(50, 4, 0.2, 3)),
        ("geometric", gen::random_geometric(50, 0.18, 3)),
        ("bipartite", gen::bipartite_gnp(15, 20, 0.2, 3)),
        ("components", gen::sparse_components(48, 6, 0.4, 3)),
        ("pace", gen::pace_like(60, 4, 3)),
        ("regular3", gen::random_regular(40, 3, 3)),
        ("regular4", gen::random_regular(36, 4, 3)),
    ];
    for (name, g) in cases {
        let seq = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        for (impl_name, solver) in solvers() {
            let r = solver.solve_mvc(&g);
            assert_eq!(r.size, seq.size, "{impl_name} vs sequential on {name}");
            assert!(
                is_vertex_cover(&g, &r.cover),
                "{impl_name} non-cover on {name}"
            );
        }
    }
}

/// The mode-separation regression: a graph whose weighted optimum
/// differs from its unweighted one in *both* objective and witness
/// size, so a solver that silently runs the wrong mode cannot pass
/// either assertion. Two expensive bridged hubs, each with cheap
/// leaves: cardinality takes both hubs (size 2, weight 40); weight
/// keeps one hub for the bridge and swaps the other for its four
/// leaves (size 5, weight 24).
#[test]
fn weighted_optimum_differs_from_unweighted_on_the_regression_instance() {
    let mut edges: Vec<(u32, u32)> = (1..5).map(|v| (0, v)).collect(); // hub 0
    edges.extend((6..10).map(|v| (5, v))); // hub 5
    edges.push((0, 5)); // bridge between the hubs
    let g = CsrGraph::from_edges(10, &edges)
        .unwrap()
        .with_weights(vec![20, 1, 1, 1, 1, 20, 1, 1, 1, 1])
        .unwrap();
    let (w_opt, _) = weighted_brute_force(&g);
    let (c_opt, _) = brute_force_mvc(&g);
    assert_eq!(c_opt, 2, "cardinality: the two hubs");
    assert_eq!(
        w_opt, 24,
        "weight: one hub for the bridge + the other's leaves"
    );
    assert_ne!(
        w_opt, c_opt as u64,
        "the construction must separate the modes"
    );

    for (name, solver) in solvers() {
        let algorithm = solver.algorithm();
        let cardinality = solver.solve_mvc(&g);
        assert_eq!(cardinality.size, c_opt, "{name} (cardinality)");
        assert_eq!(cardinality.weight, 40, "{name}: two weight-20 hubs");

        for prep in [false, true] {
            let mut b = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(6))
                .weighted();
            if prep {
                b = b.preprocess(PrepConfig::default());
            }
            let weighted = b.build().solve_mvc(&g);
            assert_eq!(weighted.weight, w_opt, "{name} (weighted, prep={prep})");
            assert!(
                weighted.size > cardinality.size,
                "{name}: the weighted witness must be the bigger cover"
            );
            assert!(is_vertex_cover(&g, &weighted.cover), "{name}");
        }
    }
}

#[test]
fn stackonly_depths_agree() {
    let g = gen::p_hat_complement(50, 2, 9);
    let expect = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g)
        .size;
    for depth in [0, 1, 3, 7, 10] {
        let solver = Solver::builder()
            .algorithm(Algorithm::StackOnly { start_depth: depth })
            .grid_limit(Some(4))
            .build();
        assert_eq!(solver.solve_mvc(&g).size, expect, "start_depth {depth}");
    }
}

#[test]
fn hybrid_grid_sizes_agree() {
    let g = gen::barabasi_albert(70, 4, 11);
    let expect = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g)
        .size;
    for grid in [1, 2, 8, 24] {
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(grid))
            .build();
        assert_eq!(solver.solve_mvc(&g).size, expect, "grid {grid}");
    }
}

#[test]
fn batch_sizes_and_grids_agree() {
    // The batched hand-off policy must stay exact across batch sizes
    // (1 degenerates to per-child donation, large batches rarely
    // flush) and grid widths, and its donation counters must show the
    // batching actually engaged on a multi-block run.
    let g = gen::barabasi_albert(70, 4, 11);
    let expect = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g)
        .size;
    for batch in [1, 4, 64] {
        for grid in [1, 4, 8] {
            let solver = Solver::builder()
                .algorithm(Algorithm::Batched)
                .batch_size(batch)
                .grid_limit(Some(grid))
                .build();
            let r = solver.solve_mvc(&g);
            assert_eq!(r.size, expect, "batch {batch} grid {grid}");
            assert!(is_vertex_cover(&g, &r.cover));
        }
    }
    let r = Solver::builder()
        .algorithm(Algorithm::Batched)
        .batch_size(4)
        .grid_limit(Some(8))
        .build()
        .solve_mvc(&g);
    let donated: u64 = r.stats.report.blocks.iter().map(|b| b.nodes_donated).sum();
    assert!(donated > 0, "batched policy never handed off a batch");
}

#[test]
fn worksteal_grid_sizes_agree() {
    let g = gen::barabasi_albert(70, 4, 11);
    let expect = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g)
        .size;
    for grid in [1, 2, 8, 24] {
        let solver = Solver::builder()
            .algorithm(Algorithm::WorkStealing)
            .grid_limit(Some(grid))
            .build();
        assert_eq!(solver.solve_mvc(&g).size, expect, "grid {grid}");
    }
}
