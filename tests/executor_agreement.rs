//! Executor-agreement property suite: the pooled executor is a pure
//! wall-clock knob.
//!
//! The phase-split kernels (reduce-fixpoint classify, LP-bound BFS
//! layering, connectivity diff scan) promise *chunking invariance*:
//! per-chunk partials combined in ascending chunk order equal the
//! serial pass, and model-cycle charges are computed from instance
//! quantities only (see `parvc_simgpu::exec`). Consequence: with the
//! traversal pinned deterministic (`grid_limit(1)`), a solve under
//! [`ExecutorSpec::Pooled`] must reproduce the Serial solve **bit for
//! bit** — same cover, same tree-node count, same split counters, same
//! device cycles — across every policy, search mode, and corpus
//! family. Anything less means an executor leaked into the search.

use parvc::core::{Algorithm, ExecutorSpec, SolveStats, Solver};
use parvc::graph::gen;
use parvc::graph::CsrGraph;
use parvc::simgpu::counters::SplitCounters;

fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("sequential", Algorithm::Sequential),
        ("stackonly", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("worksteal", Algorithm::WorkStealing),
        ("batched", Algorithm::Batched),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

/// The four corpus families with the most dissimilar search trees,
/// sized for exhaustive policy × mode coverage.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("gnp", gen::gnp(28, 0.16, 11)),
        ("ba", gen::barabasi_albert(26, 2, 5)),
        ("grid", gen::grid2d(5, 4)),
        ("components", gen::sparse_components(48, 8, 0.5, 3)),
    ]
}

fn solver(algorithm: Algorithm, spec: ExecutorSpec, weighted: bool) -> Solver {
    let mut b = Solver::builder()
        .algorithm(algorithm)
        .grid_limit(Some(1))
        .component_branching(true)
        .executor(spec);
    if weighted {
        b = b.weighted();
    }
    b.build()
}

/// Everything an executor could possibly perturb, in one comparable
/// bundle.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    size: u32,
    weight: u64,
    cover: Vec<u32>,
    tree_nodes: u64,
    device_cycles: u64,
    splits: SplitCounters,
}

fn fingerprint(size: u32, weight: u64, cover: Vec<u32>, stats: &SolveStats) -> Fingerprint {
    Fingerprint {
        size,
        weight,
        cover,
        tree_nodes: stats.tree_nodes,
        device_cycles: stats.device_cycles,
        splits: stats.report.split_totals(),
    }
}

const POOLED: ExecutorSpec = ExecutorSpec::Pooled { threads: Some(3) };

#[test]
fn mvc_pooled_bitmatches_serial_across_policies_and_families() {
    for (family, g) in corpus() {
        for (name, algorithm) in policies() {
            let serial = solver(algorithm, ExecutorSpec::Serial, false).solve_mvc(&g);
            let pooled = solver(algorithm, POOLED, false).solve_mvc(&g);
            assert_eq!(
                fingerprint(serial.size, serial.weight, serial.cover, &serial.stats),
                fingerprint(pooled.size, pooled.weight, pooled.cover, &pooled.stats),
                "{name} on {family}: pooled MVC solve diverged from serial"
            );
        }
    }
}

#[test]
fn weighted_pooled_bitmatches_serial_across_policies_and_families() {
    for (family, g) in corpus() {
        let g = gen::with_uniform_weights(g, 10, 0x5eed);
        for (name, algorithm) in policies() {
            let serial = solver(algorithm, ExecutorSpec::Serial, true).solve_mvc(&g);
            let pooled = solver(algorithm, POOLED, true).solve_mvc(&g);
            assert_eq!(
                fingerprint(serial.size, serial.weight, serial.cover, &serial.stats),
                fingerprint(pooled.size, pooled.weight, pooled.cover, &pooled.stats),
                "{name} on {family}: pooled weighted solve diverged from serial"
            );
        }
    }
}

#[test]
fn pvc_pooled_bitmatches_serial_across_policies_and_families() {
    for (family, g) in corpus() {
        let opt = solver(Algorithm::Sequential, ExecutorSpec::Serial, false)
            .solve_mvc(&g)
            .size;
        // One satisfiable budget and one unsatisfiable: both the found
        // and the exhausted traversal must agree.
        for k in [opt, opt.saturating_sub(1)] {
            for (name, algorithm) in policies() {
                let serial = solver(algorithm, ExecutorSpec::Serial, false).solve_pvc(&g, k);
                let pooled = solver(algorithm, POOLED, false).solve_pvc(&g, k);
                assert_eq!(serial.found(), pooled.found(), "{name} on {family} k={k}");
                assert_eq!(
                    fingerprint(
                        serial.k,
                        0,
                        serial.cover.clone().unwrap_or_default(),
                        &serial.stats
                    ),
                    fingerprint(
                        pooled.k,
                        0,
                        pooled.cover.clone().unwrap_or_default(),
                        &pooled.stats
                    ),
                    "{name} on {family} k={k}: pooled PVC solve diverged from serial"
                );
            }
        }
    }
}

/// A disjoint union of small cycles: `num/2` copies of `C7` and `C8`
/// each. Cycles resist every reduction rule (all degrees are 2), so
/// the root node splits into `num` component sub-searches — in-search
/// component branching at full instance scale with a bounded tree.
fn disjoint_cycles(num: u32, len: u32) -> CsrGraph {
    let mut edges = Vec::new();
    let mut base = 0u32;
    for c in 0..num {
        let k = if c % 2 == 0 { len } else { len - 1 };
        for i in 0..k {
            edges.push((base + i, base + (i + 1) % k));
        }
        base += k;
    }
    CsrGraph::from_edges(base, &edges).unwrap()
}

#[test]
fn pooled_chunked_dispatch_agrees_above_the_parallel_threshold() {
    // Instances past MIN_PARALLEL = 4096 vertices, where the pooled
    // executor genuinely fans flat passes across worker threads instead
    // of short-circuiting to one inline chunk. Reduction- and
    // split-dominated shapes keep the trees small while every classify
    // pass dispatches.
    let large: Vec<(&'static str, CsrGraph)> = vec![
        ("path", gen::path(6000)),
        ("star", gen::star(5000)),
        ("cycles", disjoint_cycles(640, 8)),
    ];
    for (family, g) in &large {
        for (name, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("hybrid", Algorithm::Hybrid),
            ("compsteal", Algorithm::ComponentSteal),
        ] {
            let serial = solver(algorithm, ExecutorSpec::Serial, false).solve_mvc(g);
            let pooled = solver(algorithm, POOLED, false).solve_mvc(g);
            assert_eq!(
                fingerprint(serial.size, serial.weight, serial.cover, &serial.stats),
                fingerprint(pooled.size, pooled.weight, pooled.cover, &pooled.stats),
                "{name} on large {family}: chunked dispatch diverged from serial"
            );
        }
    }
}

#[test]
fn executor_spec_parses_cli_forms() {
    assert_eq!(ExecutorSpec::parse("serial").unwrap(), ExecutorSpec::Serial);
    assert_eq!(
        ExecutorSpec::parse("pooled").unwrap(),
        ExecutorSpec::Pooled { threads: None }
    );
    assert_eq!(
        ExecutorSpec::parse("pooled:5").unwrap(),
        ExecutorSpec::Pooled { threads: Some(5) }
    );
    assert!(ExecutorSpec::parse("gpu").is_err());
    assert!(ExecutorSpec::parse("pooled:0").is_err());
}
