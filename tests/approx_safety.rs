//! Safety of the approximate tier (`parvc_core::approx`):
//!
//! * every cover it returns is valid and within 2× of the brute-force
//!   optimum (cardinality *and* weighted) across the generator corpus;
//! * its lower-bound certificate (matching size / primal-dual dual)
//!   never exceeds the optimum, and neither does
//!   `parvc_prep::weighted_lower_bound`;
//! * the round counters are executor-invariant: a pooled run
//!   bit-matches a serial run — cover, rounds, and the
//!   `Activity::ApproxMatching` cycle charge — on instances big enough
//!   (≥ 4096 vertices) that the pooled executor really chunks;
//! * solving with `--seed approx` reaches the same optimum as the
//!   greedy seed under every policy.

use parvc::core::approx::{approx_cover, matching_cover_exec, weighted_approx_cover};
use parvc::core::brute::{brute_force_mvc, weighted_brute_force};
use parvc::core::{is_vertex_cover, Algorithm, ExecutorSpec, SeedStrategy, Solver};
use parvc::graph::{gen, matching, CsrGraph};
use parvc::simgpu::counters::{Activity, BlockCounters};
use parvc::simgpu::exec::SERIAL;

/// The gnp/ba/grid/components small-instance corpus, within
/// brute-force range, in both unweighted and weighted flavors.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("gnp_sparse", gen::gnp(16, 0.15, 5)),
        ("gnp_dense", gen::gnp(14, 0.4, 9)),
        ("ba", gen::barabasi_albert(16, 2, 3)),
        ("grid", gen::grid2d(4, 4)),
        ("components", gen::sparse_components(18, 3, 0.5, 7)),
    ]
}

fn weighted_corpus() -> Vec<(&'static str, CsrGraph)> {
    corpus()
        .into_iter()
        .enumerate()
        .map(|(i, (name, g))| (name, gen::with_uniform_weights(g, 9, 0xab + i as u64)))
        .collect()
}

#[test]
fn cardinality_covers_are_valid_and_two_approx() {
    for (name, g) in corpus() {
        let mut c = BlockCounters::new(0);
        let a = matching_cover_exec(&g, &SERIAL, &mut c);
        assert!(is_vertex_cover(&g, &a.cover), "{name}: non-cover");
        assert_eq!(a.cost, a.cover.len() as u64, "{name}");
        let (opt, _) = brute_force_mvc(&g);
        assert!(
            a.cost <= 2 * u64::from(opt),
            "{name}: {} > 2 x {opt}",
            a.cost
        );
        assert!(
            a.lower_bound <= u64::from(opt),
            "{name}: certificate {} above optimum {opt}",
            a.lower_bound
        );
        assert!(a.cost <= 2 * a.lower_bound, "{name}: certificate band");
    }
}

#[test]
fn weighted_covers_are_valid_and_two_approx() {
    for (name, g) in weighted_corpus() {
        let mut c = BlockCounters::new(0);
        let a = weighted_approx_cover(&g, &mut c);
        assert!(is_vertex_cover(&g, &a.cover), "{name}: non-cover");
        assert_eq!(a.cost, g.cover_weight(&a.cover), "{name}");
        let (opt, _) = weighted_brute_force(&g);
        assert!(
            a.cost <= 2 * opt,
            "{name}: weight {} > 2 x optimum {opt}",
            a.cost
        );
        assert!(
            a.lower_bound <= opt,
            "{name}: dual {} above optimum {opt}",
            a.lower_bound
        );
    }
}

#[test]
fn lower_bounds_never_exceed_the_optimum() {
    for (name, g) in weighted_corpus() {
        let (opt, _) = weighted_brute_force(&g);
        let dual = matching::primal_dual_cover(&g).dual;
        let lb = parvc::prep::weighted_lower_bound(&g);
        assert!(dual <= opt, "{name}: dual {dual} > optimum {opt}");
        assert!(lb <= opt, "{name}: weighted LB {lb} > optimum {opt}");
        assert!(
            lb >= matching::min_weight_matching_bound(&g),
            "{name}: the combined bound must dominate the matching bound"
        );
    }
}

/// Serial-vs-pooled bit-match on instances big enough that the pooled
/// executor genuinely splits the passes (≥ 4096 vertices, above
/// `MIN_PARALLEL`): same cover, same rounds, same compression, and the
/// same `ApproxMatching` cycle charge.
#[test]
fn round_counters_are_executor_invariant_at_scale() {
    let pooled3 = ExecutorSpec::Pooled { threads: Some(3) }.build();
    let pooled7 = ExecutorSpec::Pooled { threads: Some(7) }.build();
    for (name, g) in [
        ("ba_large", gen::barabasi_albert(5000, 2, 11)),
        ("gnp_large", gen::gnp(4500, 0.001, 13)),
    ] {
        assert!(g.num_vertices() >= 4096, "{name}: instance too small");
        let mut serial_c = BlockCounters::new(0);
        let reference = matching_cover_exec(&g, &SERIAL, &mut serial_c);
        assert!(is_vertex_cover(&g, &reference.cover), "{name}");
        // The executor version must also bit-match the serial
        // reference algorithm in the graph crate.
        let hs = matching::handshake_matching(&g, parvc::core::approx::COMPRESS_BELOW);
        assert_eq!(reference.rounds, hs.rounds, "{name}: reference rounds");
        assert_eq!(
            reference.lower_bound,
            hs.matching.len() as u64,
            "{name}: reference matching size"
        );
        for (exec_name, exec) in [("pooled:3", &pooled3), ("pooled:7", &pooled7)] {
            let mut c = BlockCounters::new(0);
            let got = matching_cover_exec(&g, &**exec, &mut c);
            assert_eq!(got.cover, reference.cover, "{name}/{exec_name}: cover");
            assert_eq!(got.rounds, reference.rounds, "{name}/{exec_name}: rounds");
            assert_eq!(
                got.compressed, reference.compressed,
                "{name}/{exec_name}: compression"
            );
            assert_eq!(
                c.cycles(Activity::ApproxMatching),
                serial_c.cycles(Activity::ApproxMatching),
                "{name}/{exec_name}: cycle charge must be executor-invariant"
            );
        }
    }
}

/// `--seed approx` changes the starting bound, never the optimum:
/// every policy, both modes, with component branching exercising the
/// split-path seeds too.
#[test]
fn approx_seed_preserves_the_optimum_under_every_policy() {
    let policies = [
        ("sequential", Algorithm::Sequential),
        ("stackonly", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("worksteal", Algorithm::WorkStealing),
        ("compsteal", Algorithm::ComponentSteal),
    ];
    let solver = |alg: Algorithm, seed: SeedStrategy, weighted: bool| {
        let mut b = Solver::builder()
            .algorithm(alg)
            .grid_limit(Some(2))
            .component_branching(true)
            .seed(seed);
        if weighted {
            b = b.weighted();
        }
        b.build()
    };
    for (name, g) in weighted_corpus() {
        let (opt, _) = weighted_brute_force(&g);
        let (card_opt, _) = brute_force_mvc(&g);
        for (policy, alg) in policies {
            let w = solver(alg, SeedStrategy::Approx, true).solve_mvc(&g);
            assert_eq!(w.weight, opt, "{name}/{policy}: weighted optimum");
            assert!(is_vertex_cover(&g, &w.cover), "{name}/{policy}");
            let u = solver(alg, SeedStrategy::Approx, false).solve_mvc(&g);
            assert_eq!(
                u.size, card_opt,
                "{name}/{policy}: cardinality optimum under the approx seed"
            );
        }
    }
}

/// The dispatcher respects the mode and the timed-out greedy fallback
/// verifies (satellite regression riding with the suite).
#[test]
fn timed_out_seeds_still_verify() {
    use std::time::Duration;
    for (name, g) in weighted_corpus() {
        let deadline = parvc::core::shared::Deadline::new(Some(Duration::ZERO));
        let (weight, cover) = parvc::core::greedy::greedy_weighted_mvc_bounded(&g, &deadline);
        assert!(is_vertex_cover(&g, &cover), "{name}: timed-out non-cover");
        assert_eq!(weight, g.cover_weight(&cover), "{name}");
        let mut c = BlockCounters::new(0);
        let a = approx_cover(&g, true, &SERIAL, &mut c);
        assert!(
            a.cost <= 2 * a.lower_bound,
            "{name}: approx must keep its band even where greedy times out"
        );
    }
}
