//! Pins `docs/serve.md` against the protocol implementation, the same
//! way `docs/cli.md` is pinned against the CLI help: the verb table is
//! generated from `parvc_serve::proto::VERBS` and must appear in the
//! doc verbatim, so the protocol reference cannot drift from the code.

use std::path::Path;

fn serve_doc() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/serve.md");
    std::fs::read_to_string(&path).expect("docs/serve.md must exist (the protocol reference)")
}

#[test]
fn verb_table_is_current() {
    let doc = serve_doc();
    let table = parvc::serve::verb_table_markdown();
    assert!(
        doc.contains(&table),
        "docs/serve.md is stale — its verb table must contain, verbatim, \
         the output of parvc_serve::proto::verb_table_markdown():\n{table}"
    );
}

#[test]
fn every_verb_has_a_reference_section() {
    let doc = serve_doc();
    for v in parvc::serve::VERBS {
        assert!(
            doc.contains(&format!("### `{}", v.name)),
            "docs/serve.md: verb {} has no reference section",
            v.name
        );
    }
}

#[test]
fn doc_examples_parse_as_requests() {
    // The concrete request lines the docs and README show must stay
    // parseable — a grammar change that breaks them must update the
    // prose too.
    for line in [
        "LOAD a gnp:200:0.05@7",
        "SOLVE a",
        "SOLVE a --weighted",
        "SOLVE a --k 230",
        "SOLVE a --deadline 2.5 --seed approx --no-cache",
        "SOLVE a --approx",
        "RESOLVE a --edits gen:12:0.5@7",
        "RESOLVE a --edits +e:0:5;-v:3 --weighted",
        "STATS",
        "EVICT a",
        "EVICT --cache",
    ] {
        let parsed = parvc::serve::parse_request(line)
            .unwrap_or_else(|e| panic!("documented request '{line}' no longer parses: {e}"));
        assert!(
            parsed.is_some(),
            "documented request '{line}' parsed to a comment"
        );
    }
}
