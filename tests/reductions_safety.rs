//! Safety of the reduction rules and integrity of the degree-array
//! representation under arbitrary operation sequences.

use parvc::core::bound::SearchBound;
use parvc::core::brute::brute_force_mvc;
use parvc::core::ops::Kernel;
use parvc::core::{BlockScratch, TreeNode};
use parvc::graph::CsrGraph;
use parvc::simgpu::counters::BlockCounters;
use parvc::simgpu::{CostModel, KernelVariant};
use proptest::prelude::*;

fn arb_graph(max_n: u32) -> impl Strategy<Value = CsrGraph> {
    (3u32..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..50).prop_map(move |pairs| {
            let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
            CsrGraph::from_edges(n, &edges).expect("filtered edges are valid")
        })
    })
}

fn residual(g: &CsrGraph, node: &TreeNode) -> CsrGraph {
    let edges: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(u, v)| !node.is_removed(u) && !node.is_removed(v))
        .collect();
    CsrGraph::from_edges(g.num_vertices(), &edges).expect("subset of valid edges")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fundamental safety property: reductions never change the
    /// optimum — opt(G) = |S_reduced| + opt(G_residual).
    #[test]
    fn reduce_preserves_optimum(g in arb_graph(13)) {
        let cost = CostModel::default();
        let kernel = Kernel { block_size: 32, variant: KernelVariant::SharedMem, ..Kernel::sequential(&g, &cost) };
        let mut node = TreeNode::root(&g);
        let mut counters = BlockCounters::new(0);
        kernel.reduce(&mut node, SearchBound::Mvc { best: u32::MAX }, &mut BlockScratch::new(), &mut counters);
        node.check_consistency(&g).expect("degree array corrupted");

        let (opt, _) = brute_force_mvc(&g);
        let (opt_rest, _) = brute_force_mvc(&residual(&g, &node));
        prop_assert_eq!(node.cover_size() + opt_rest, opt);
    }

    /// After a full reduce with an inert bound, no degree-one vertex
    /// and no degree-two triangle may remain (fixpoint is real).
    #[test]
    fn reduce_reaches_a_fixpoint(g in arb_graph(16)) {
        let cost = CostModel::default();
        let kernel = Kernel { block_size: 32, variant: KernelVariant::SharedMem, ..Kernel::sequential(&g, &cost) };
        let mut node = TreeNode::root(&g);
        let mut counters = BlockCounters::new(0);
        kernel.reduce(&mut node, SearchBound::Mvc { best: u32::MAX }, &mut BlockScratch::new(), &mut counters);

        for v in g.vertices() {
            prop_assert_ne!(node.degree(v), 1, "degree-one vertex {} survived", v);
            if node.degree(v) == 2 {
                let nbrs: Vec<u32> = node.live_neighbors(&g, v).collect();
                prop_assert!(
                    !g.has_edge(nbrs[0], nbrs[1]),
                    "triangle at degree-two vertex {} survived",
                    v
                );
            }
        }
    }

    /// Degree-array integrity under random removal sequences: counters
    /// and degrees stay consistent with a recomputation from CSR.
    #[test]
    fn degree_array_integrity(g in arb_graph(16), picks in proptest::collection::vec(0u32..16, 1..10)) {
        let mut node = TreeNode::root(&g);
        for p in picks {
            let v = p % g.num_vertices();
            if !node.is_removed(v) {
                node.remove_into_cover(&g, v);
            }
            node.check_consistency(&g).expect("corrupted after removal");
        }
        // Cover size equals sentinel count; edges only ever shrink.
        prop_assert_eq!(node.cover_vertices().len() as u32, node.cover_size());
        prop_assert!(node.num_edges() <= g.num_edges());
    }

    /// The PVC bound can only prune MORE than an equally-tight MVC
    /// bound (k vs best = k+1 are equivalent budgets).
    #[test]
    fn pvc_and_mvc_budget_equivalence(g in arb_graph(12), k in 0u32..6) {
        let node = TreeNode::root(&g);
        let pvc = SearchBound::Pvc { k };
        let mvc = SearchBound::Mvc { best: k + 1 };
        prop_assert_eq!(pvc.prune(&node), mvc.prune(&node));
    }

    /// Greedy upper-bounds the optimum and returns a genuine cover.
    #[test]
    fn greedy_bounds_hold(g in arb_graph(13)) {
        let (size, cover) = parvc::core::greedy::greedy_mvc(&g);
        let (opt, _) = brute_force_mvc(&g);
        prop_assert!(size >= opt);
        prop_assert!(parvc::core::is_vertex_cover(&g, &cover));
        prop_assert_eq!(size as usize, cover.len());
    }
}

/// Regression: the high-degree rule must respect a budget that shrinks
/// *during* the round (recompute-per-removal semantics).
#[test]
fn high_degree_budget_shrinks_during_round() {
    // Star-of-stars: center 0 with hubs 1..=3, each hub with 4 leaves.
    let mut edges = vec![(0u32, 1u32), (0, 2), (0, 3)];
    let mut next = 4;
    for hub in 1..=3 {
        for _ in 0..4 {
            edges.push((hub, next));
            next += 1;
        }
    }
    let g = CsrGraph::from_edges(next, &edges).unwrap();
    let cost = CostModel::default();
    let kernel = Kernel {
        block_size: 32,
        variant: KernelVariant::SharedMem,
        ..Kernel::sequential(&g, &cost)
    };
    let mut node = TreeNode::root(&g);
    let mut counters = BlockCounters::new(0);
    kernel.reduce(
        &mut node,
        SearchBound::Mvc { best: 4 },
        &mut BlockScratch::new(),
        &mut counters,
    );
    node.check_consistency(&g).unwrap();
    // The optimum is {1,2,3} (size 3): every hub covered; reductions
    // with best=4 may solve it outright or leave a kernel — but they
    // must never overshoot the budget by mass-removal.
    assert!(
        node.cover_size() <= 4,
        "reduction overshot the cover budget"
    );
}

#[test]
fn reduce_on_disconnected_components_is_independent() {
    // Two disjoint paths: reductions must solve both independently.
    let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]).unwrap();
    let cost = CostModel::default();
    let kernel = Kernel {
        block_size: 32,
        variant: KernelVariant::SharedMem,
        ..Kernel::sequential(&g, &cost)
    };
    let mut node = TreeNode::root(&g);
    let mut counters = BlockCounters::new(0);
    kernel.reduce(
        &mut node,
        SearchBound::Mvc { best: u32::MAX },
        &mut BlockScratch::new(),
        &mut counters,
    );
    assert!(node.is_edgeless());
    assert_eq!(node.cover_size(), 4); // P4 needs 2 each
}
