//! Incremental re-solve safety property suite.
//!
//! The contract of `parvc_core::resolve` (see its module docs): for
//! ANY edit script, the incremental answer must equal a from-scratch
//! solve of the edited graph — same optimum (size for cardinality,
//! weight for weighted) with a verified cover — while touching only
//! the components the script dirties. The suite pins that across the
//! full solver matrix (all 6 policies × prep on/off × MVC/weighted),
//! on scripts that merge components, split them, and churn at random;
//! plus the PR 7 telemetry contract (a full recording sink must not
//! change a single bit of the result) and the connectivity-reuse
//! guarantee (session labels are built once, not per call).

use parvc::core::{is_vertex_cover, Algorithm, Solver, SolverBuilder, TelemetryConfig};
use parvc::graph::gen;
use parvc::graph::ops::connected_components;
use parvc::graph::{CsrGraph, Edit, EditScript};
use parvc::prep::PrepConfig;

fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("sequential", Algorithm::Sequential),
        ("stackonly", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("worksteal", Algorithm::WorkStealing),
        ("batched", Algorithm::Batched),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

/// Small instances spanning the families that stress different edit
/// behaviours: dense-ish random, scale-free, grid (splits into long
/// pieces), and a many-component graph (the reuse showcase).
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("gnp", gen::gnp(24, 0.18, 3)),
        ("ba", gen::barabasi_albert(30, 2, 5)),
        ("grid", gen::grid2d(5, 5)),
        ("components", gen::sparse_components(48, 8, 0.5, 3)),
    ]
}

fn builder(algorithm: Algorithm, prep: bool, weighted: bool) -> SolverBuilder {
    let mut b = Solver::builder().algorithm(algorithm).grid_limit(Some(1));
    if prep {
        b = b.preprocess(PrepConfig::default());
    }
    if weighted {
        b = b.weighted();
    }
    b
}

/// The objective in the solve's own units.
fn objective(r: &parvc::core::MvcResult, weighted: bool) -> u64 {
    if weighted {
        r.weight
    } else {
        r.size as u64
    }
}

/// The tentpole property over the full matrix: 6 policies × prep
/// on/off × MVC/weighted × 4 families, each against a seeded random
/// edit script (insert-heavy scripts merge components, delete-heavy
/// ones split them; the seed varies per cell so the suite samples a
/// spread of both).
#[test]
fn incremental_matches_scratch_across_the_matrix() {
    for (gi, (gname, base)) in corpus().into_iter().enumerate() {
        for (pi, (pname, algorithm)) in policies().into_iter().enumerate() {
            for prep in [false, true] {
                for weighted in [false, true] {
                    let g = if weighted {
                        gen::with_uniform_weights(base.clone(), 9, gi as u64)
                    } else {
                        base.clone()
                    };
                    let seed = (gi * 100 + pi * 10 + prep as usize * 2 + weighted as usize) as u64;
                    // Insert fraction sweeps with the seed so the cell
                    // grid covers merge-heavy and split-heavy scripts.
                    let frac = [0.2, 0.5, 0.8][seed as usize % 3];
                    let edits = gen::edit_script(&g, 12, frac, seed);
                    let ctx = format!("{gname}/{pname}/prep={prep}/weighted={weighted}");

                    let solver = builder(algorithm, prep, weighted).build();
                    let prev = solver.solve_mvc(&g);
                    let r = solver
                        .resolve(&g, &prev, &edits)
                        .unwrap_or_else(|e| panic!("{ctx}: script must apply: {e}"));
                    let scratch = solver.solve_mvc(&r.graph);

                    assert_eq!(
                        objective(&r.result, weighted),
                        objective(&scratch, weighted),
                        "{ctx}: incremental and from-scratch optima differ"
                    );
                    assert!(
                        is_vertex_cover(&r.graph, &r.result.cover),
                        "{ctx}: incremental cover is not a cover of the edited graph"
                    );
                    assert_eq!(
                        r.stats.components_reused + r.stats.components_invalidated,
                        r.stats.components_total,
                        "{ctx}: reuse accounting must partition the components"
                    );
                }
            }
        }
    }
}

/// A session absorbing several consecutive batches stays correct call
/// after call — each round's answer matches a from-scratch solve of
/// that round's graph.
#[test]
fn chained_batches_stay_exact() {
    let g = gen::sparse_components(48, 8, 0.5, 3);
    for (pname, algorithm) in [
        ("sequential", Algorithm::Sequential),
        ("compsteal", Algorithm::ComponentSteal),
    ] {
        let solver = builder(algorithm, false, false).build();
        let prev = solver.solve_mvc(&g);
        let mut session = solver.resolve_session(&g, &prev);
        for round in 0..3u64 {
            let edits = gen::edit_script(session.graph(), 10, 0.5, round * 7 + 1);
            let r = session
                .resolve(&edits)
                .unwrap_or_else(|e| panic!("{pname} round {round}: {e}"));
            let scratch = solver.solve_mvc(&r.graph);
            assert_eq!(r.result.size, scratch.size, "{pname} round {round}");
            assert!(is_vertex_cover(&r.graph, &r.result.cover));
        }
    }
}

/// An insert bridging two components must merge their invalidation
/// sets: both are dirtied, everything else is reused, and the next
/// call sees one fewer component.
#[test]
fn merge_script_invalidates_both_sides() {
    let g = gen::sparse_components(48, 8, 0.5, 3);
    let (label, count) = connected_components(&g);
    // A vertex from component 0 and one from component 1.
    let a = (0..g.num_vertices())
        .find(|&v| label[v as usize] == 0)
        .unwrap();
    let b = (0..g.num_vertices())
        .find(|&v| label[v as usize] == 1)
        .unwrap();

    let solver = builder(Algorithm::Sequential, false, false).build();
    let prev = solver.solve_mvc(&g);
    let mut session = solver.resolve_session(&g, &prev);
    let bridge = EditScript::from_ops(vec![Edit::InsertEdge(a, b)]);
    let r = session.resolve(&bridge).unwrap();
    assert_eq!(r.stats.components_total, count);
    assert_eq!(
        r.stats.components_invalidated, 2,
        "both endpoints' components"
    );
    assert_eq!(r.stats.components_reused, count - 2);
    let scratch = solver.solve_mvc(&r.graph);
    assert_eq!(r.result.size, scratch.size);

    // The merge is visible to the next call: one fewer component.
    let r2 = session.resolve(&EditScript::new()).unwrap();
    assert_eq!(r2.stats.components_total, count - 1);
}

/// Deleting a cut edge splits a component; the relabel step must
/// discover the new pieces (the next call counts one more component)
/// and the answer must stay exact.
#[test]
fn split_script_discovers_new_components() {
    // A 1×10 grid is a path: every edge is a bridge.
    let g = gen::grid2d(1, 10);
    let solver = builder(Algorithm::Sequential, false, false).build();
    let prev = solver.solve_mvc(&g);
    let mut session = solver.resolve_session(&g, &prev);
    let cut = EditScript::from_ops(vec![Edit::DeleteEdge(4, 5)]);
    let r = session.resolve(&cut).unwrap();
    assert_eq!(r.stats.components_total, 1);
    assert_eq!(r.stats.components_invalidated, 1);
    let scratch = solver.solve_mvc(&r.graph);
    assert_eq!(r.result.size, scratch.size);
    assert!(is_vertex_cover(&r.graph, &r.result.cover));

    let r2 = session.resolve(&EditScript::new()).unwrap();
    assert_eq!(
        r2.stats.components_total, 2,
        "the split must be visible after relabeling"
    );
}

/// Builds a small valid script confined to one component: delete one
/// of its edges, then re-insert it (net-zero churn, maximal locality).
fn confined_script(g: &CsrGraph, label: &[u32], comp: u32) -> EditScript {
    let (u, v) = g
        .edges()
        .find(|&(u, _)| label[u as usize] == comp)
        .expect("component has an edge");
    EditScript::from_ops(vec![Edit::DeleteEdge(u, v), Edit::InsertEdge(u, v)])
}

/// The counter-pinned reuse property (satellite of the PR 7 telemetry
/// contract): an edit confined to one component leaves every other
/// component's cached optimum untouched — `components_reused` is
/// asserted exactly — and attaching a full recording sink changes
/// nothing about the result while exposing the resolve span category
/// and reuse counters in the snapshot.
#[test]
fn single_component_edit_reuses_all_others_bit_for_bit() {
    let g = gen::sparse_components(60, 10, 0.5, 7);
    let (label, count) = connected_components(&g);
    let comp = label[0];
    let edits = confined_script(&g, &label, comp);

    // Telemetry off.
    let off = builder(Algorithm::Sequential, false, false).build();
    let prev_off = off.solve_mvc(&g);
    let r_off = off.resolve(&g, &prev_off, &edits).unwrap();

    // Full sink attached.
    let on = builder(Algorithm::Sequential, false, false)
        .telemetry(TelemetryConfig::default())
        .build();
    let prev_on = on.solve_mvc(&g);
    let r_on = on.resolve(&g, &prev_on, &edits).unwrap();

    // Exact reuse accounting: only vertex 0's component re-solved.
    for (ctx, r) in [("off", &r_off), ("on", &r_on)] {
        assert_eq!(r.stats.components_total, count, "{ctx}");
        assert_eq!(r.stats.components_invalidated, 1, "{ctx}");
        assert_eq!(r.stats.components_reused, count - 1, "{ctx}");
    }

    // Bit-match: same optimum, same cover, same reuse stats.
    assert_eq!(r_off.result.size, r_on.result.size);
    assert_eq!(r_off.result.weight, r_on.result.weight);
    assert_eq!(r_off.result.cover, r_on.result.cover);
    assert_eq!(r_off.stats, r_on.stats);
    assert!(r_off.result.stats.telemetry.is_none(), "phantom snapshot");

    // The recording run's snapshot carries the resolve taxonomy.
    let snap = r_on.result.stats.telemetry.as_ref().expect("sink was on");
    assert!(
        snap.span_categories().contains("resolve"),
        "missing resolve spans: {:?}",
        snap.span_categories()
    );
    assert_eq!(
        snap.counters.get("resolve.components_reused").copied(),
        Some((count - 1) as u64),
        "reuse counter must flow into the metrics registry"
    );
    assert_eq!(
        snap.counters.get("resolve.components_invalidated").copied(),
        Some(1)
    );

    // And the cached optima really were reused: the other components'
    // cover vertices are carried over verbatim.
    let untouched: Vec<u32> = prev_off
        .cover
        .iter()
        .copied()
        .filter(|&v| label[v as usize] != comp)
        .collect();
    let carried: Vec<u32> = r_off
        .result
        .cover
        .iter()
        .copied()
        .filter(|&v| label[v as usize] != comp)
        .collect();
    assert_eq!(untouched, carried, "clean components' optima must survive");
}

/// The carried-forward connectivity item: a session reuses its
/// union-find labels across calls (one full build at construction,
/// localized relabels after), while the rebuild-every-time baseline
/// pays one full build per call — strictly more, asserted on the
/// bench suite's `massive_components` instance.
#[test]
fn label_reuse_beats_rebuild_baseline_on_massive_components() {
    // bench/suite.rs `massive_components`: 6000 communities, 120k
    // vertices — the instance where only the kernelized path
    // completes, and exactly the shape incremental re-solve targets.
    let g = gen::sparse_components(120_000, 6_000, 0.3, 0xfee3);
    let solver = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .preprocess(PrepConfig::default())
        .build();
    let prev = solver.solve_mvc(&g);
    assert!(!prev.stats.timed_out);

    let mut reuse = solver.resolve_session(&g, &prev);
    let mut baseline = solver
        .resolve_session(&g, &prev)
        .rebuild_labels_every_call();

    const ROUNDS: u64 = 4;
    let mut reuse_rebuilds = 0;
    let mut baseline_rebuilds = 0;
    for round in 0..ROUNDS {
        // Identical scripts on both sessions (their graphs evolve in
        // lock-step because both stay exact).
        let edits = gen::edit_script(reuse.graph(), 6, 0.5, round ^ 0xabc);
        let a = reuse.resolve(&edits).unwrap();
        let b = baseline.resolve(&edits).unwrap();
        assert_eq!(a.result.size, b.result.size, "round {round}");
        assert_eq!(
            a.stats.components_invalidated, b.stats.components_invalidated,
            "round {round}: label maintenance must not change invalidation"
        );
        reuse_rebuilds = a.stats.uf_rebuilds;
        baseline_rebuilds = b.stats.uf_rebuilds;
    }
    assert_eq!(
        reuse_rebuilds, 1,
        "reuse mode: the construction-time build only"
    );
    assert_eq!(baseline_rebuilds, 1 + ROUNDS, "baseline: one more per call");
    assert!(
        reuse_rebuilds < baseline_rebuilds,
        "label reuse must strictly beat the rebuild-every-time baseline \
         ({reuse_rebuilds} >= {baseline_rebuilds})"
    );
}
