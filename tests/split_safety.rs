//! Safety of in-search component branching (`parvc_core::split`):
//! split-on and split-off must agree with the brute-force oracle under
//! every scheduling policy, for MVC and PVC, across the generator
//! corpus — plus a regression on a graph engineered to disconnect only
//! at branching depth ≥ 2 (where only the *in-search* split, not
//! `parvc-prep`'s up-front decomposition, can catch it).

use parvc::core::bound::SearchBound;
use parvc::core::brute::{brute_force_mvc, weighted_brute_force};
use parvc::core::greedy::greedy_mvc;
use parvc::core::ops::Kernel;
use parvc::core::split::SplitParams;
use parvc::core::{is_vertex_cover, Algorithm, Extensions, Solver, TreeNode};
use parvc::graph::{gen, ops, CsrGraph};
use parvc::simgpu::counters::{Activity, BlockCounters};
use parvc::simgpu::{CostModel, KernelVariant};
use proptest::prelude::*;

/// Every policy, with an aggressive split trigger so small residuals
/// still exercise the machinery.
fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("sequential", Algorithm::Sequential),
        ("stackonly", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("worksteal", Algorithm::WorkStealing),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

fn solver(algorithm: Algorithm, split: bool) -> Solver {
    let mut b = Solver::builder().algorithm(algorithm).grid_limit(Some(6));
    if split {
        b = b.component_branching_params(SplitParams {
            min_live: 4,
            max_depth: 16,
        });
    }
    b.build()
}

/// The corpus whose families disconnect in the most dissimilar ways:
/// G(n,p) (rarely), preferential attachment (tree-like, often), grids
/// (cut lines), and sparse multi-component graphs (immediately).
fn arb_corpus_graph() -> impl Strategy<Value = (&'static str, CsrGraph)> {
    (0u8..4, 0u64..1_000).prop_map(|(family, seed)| match family {
        0 => ("gnp", gen::gnp(16 + (seed % 6) as u32, 0.25, seed)),
        1 => ("ba", gen::barabasi_albert(18 + (seed % 6) as u32, 2, seed)),
        2 => (
            "grid",
            gen::grid2d(3 + (seed % 2) as u32, 3 + (seed / 7 % 3) as u32),
        ),
        _ => (
            "components",
            gen::sparse_components(18 + (seed % 6) as u32, 4, 0.4, seed),
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole safety property: splitting on and off agree with
    /// brute force across the corpus, under every policy.
    #[test]
    fn split_on_and_off_agree_with_brute_force((family, g) in arb_corpus_graph()) {
        let (opt, _) = brute_force_mvc(&g);
        for (name, algorithm) in policies() {
            for split in [false, true] {
                let r = solver(algorithm, split).solve_mvc(&g);
                prop_assert_eq!(
                    r.size, opt,
                    "{} (split={}) vs brute force on {}", name, split, family
                );
                prop_assert!(
                    is_vertex_cover(&g, &r.cover),
                    "{} (split={}) non-cover on {}", name, split, family
                );
                prop_assert_eq!(r.cover.len() as u32, r.size);
            }
        }
    }

    /// Weighted MVC through component-sum nodes: split-on and
    /// split-off must agree with the weighted oracle under every
    /// policy — the budgeted sub-searches, sibling budgets, and
    /// combine step all run in weight units.
    #[test]
    fn weighted_split_on_and_off_agree_with_the_oracle(
        (family, g) in arb_corpus_graph(),
        wseed in 0u64..1000,
    ) {
        let g = gen::with_uniform_weights(g, 10, wseed);
        let (opt, _) = weighted_brute_force(&g);
        for (name, algorithm) in policies() {
            for split in [false, true] {
                let mut b = Solver::builder()
                    .algorithm(algorithm)
                    .grid_limit(Some(6))
                    .weighted();
                if split {
                    b = b.component_branching_params(SplitParams {
                        min_live: 4,
                        max_depth: 16,
                    });
                }
                let r = b.build().solve_mvc(&g);
                prop_assert_eq!(
                    r.weight, opt,
                    "{} (weighted, split={}) vs oracle on {}", name, split, family
                );
                prop_assert!(
                    is_vertex_cover(&g, &r.cover),
                    "{} (weighted, split={}) non-cover on {}", name, split, family
                );
            }
        }
    }

    /// PVC through component-sum nodes: feasibility answers around the
    /// optimum must be exact with splitting on.
    #[test]
    fn split_pvc_answers_are_exact((family, g) in arb_corpus_graph(), dk in 0u32..3) {
        let (opt, _) = brute_force_mvc(&g);
        let k = (opt + dk).saturating_sub(1);
        for (name, algorithm) in policies() {
            let r = solver(algorithm, true).solve_pvc(&g, k);
            if k >= opt {
                let cover = r.cover.expect("feasible k must yield a cover");
                prop_assert!(cover.len() as u32 <= k, "{} cover exceeds k on {}", name, family);
                prop_assert!(is_vertex_cover(&g, &cover), "{} non-cover on {}", name, family);
            } else {
                prop_assert!(
                    r.cover.is_none(),
                    "{} (split) found an impossible cover on {}", name, family
                );
            }
        }
    }
}

/// Two dense 9-vertex G(n,p) blobs joined by exactly two bridge edges
/// (`0–9` and `4–13`). The seed is chosen (and the test re-verifies at
/// runtime) so that no reduction or branch disconnects the residual at
/// depth 0 or 1 — the blobs only separate once branching has cut both
/// bridges, at depth ≥ 2, which only the *in-search* split can catch.
fn depth2_graph() -> CsrGraph {
    let seed = 10;
    let a = gen::gnp(9, 0.45, seed);
    let b = gen::gnp(9, 0.45, seed + 1000);
    let mut edges: Vec<(u32, u32)> = a.edges().collect();
    edges.extend(b.edges().map(|(u, v)| (u + 9, v + 9)));
    edges.push((0, 9));
    edges.push((4, 13));
    CsrGraph::from_edges(18, &edges).unwrap()
}

/// Whether the residual graph (live vertices with degree ≥ 1) of
/// `node` is connected.
fn residual_connected(g: &CsrGraph, node: &TreeNode) -> bool {
    let live: Vec<u32> = (0..node.len()).filter(|&v| node.degree(v) > 0).collect();
    let (sub, _) = ops::induced_subgraph(g, &live);
    ops::is_connected(&sub)
}

#[test]
fn disconnection_at_depth_two_is_caught_by_in_search_split() {
    let g = depth2_graph();
    let (opt, _) = brute_force_mvc(&g);
    assert_eq!(opt, 10, "the construction's optimum moved");
    assert!(ops::is_connected(&g), "the construction must be connected");

    // Structural preconditions: mirroring the engine's first steps, the
    // residual stays connected at the root and after either depth-1
    // branch — prep's up-front split can never fire here.
    let cost = CostModel::default();
    let kernel = Kernel {
        graph: &g,
        cost: &cost,
        block_size: 32,
        variant: KernelVariant::SharedMem,
        ext: Extensions::NONE,
    };
    let best = greedy_mvc(&g).0;
    let bound = SearchBound::Mvc { best };
    let mut c = BlockCounters::new(0);
    let mut root = TreeNode::root(&g);
    kernel.reduce(&mut root, bound, &mut c);
    assert!(
        residual_connected(&g, &root),
        "root must stay connected after reduction"
    );
    let vmax = kernel.find_max_degree(&root, &mut c).unwrap();
    let mut left = root.clone();
    kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, &mut c);
    kernel.reduce(&mut left, bound, &mut c);
    let mut right = root.clone();
    kernel.remove_vertex(&mut right, vmax, Activity::RemoveMaxVertex, &mut c);
    kernel.reduce(&mut right, bound, &mut c);
    for (label, child) in [("remove-N(vmax)", &left), ("remove-vmax", &right)] {
        assert!(
            child.is_edgeless() || residual_connected(&g, child),
            "{label} child must not disconnect at depth 1"
        );
    }

    // The regression: with splitting on, the search must still take at
    // least one split (at depth ≥ 2, by the preconditions above) and
    // stay exact under every policy.
    for (name, algorithm) in policies() {
        let on = solver(algorithm, true).solve_mvc(&g);
        assert_eq!(on.size, opt, "{name} (split on)");
        assert!(is_vertex_cover(&g, &on.cover), "{name} non-cover");
        let off = solver(algorithm, false).solve_mvc(&g);
        assert_eq!(off.size, opt, "{name} (split off)");
    }
    let seq = solver(Algorithm::Sequential, true).solve_mvc(&g);
    let splits = seq.stats.report.split_totals();
    assert!(
        splits.taken >= 1,
        "no split taken although the graph disconnects at depth 2"
    );
    assert!(splits.components >= 2 * splits.taken);
}

/// The weighted split regression: two expensive-hub communities
/// joined by one bridge — the weighted optimum differs from the
/// unweighted one (so a sub-search silently running cardinality
/// arithmetic cannot pass), the residual disconnects once branching
/// cuts the bridge, and every policy must stay weight-exact with
/// splitting on and off.
#[test]
fn weighted_split_regression_where_the_optima_differ() {
    // Hub 0 over leaves 1..5, hub 6 over leaves 7..11, bridge 0-6.
    let mut edges: Vec<(u32, u32)> = (1..6).map(|v| (0, v)).collect();
    edges.extend((7..12).map(|v| (6, v)));
    edges.push((0, 6));
    let g = CsrGraph::from_edges(12, &edges)
        .unwrap()
        .with_weights(vec![30, 1, 1, 1, 1, 1, 30, 1, 1, 1, 1, 1])
        .unwrap();
    let (w_opt, _) = weighted_brute_force(&g);
    let (c_opt, _) = brute_force_mvc(&g);
    assert_eq!(c_opt, 2, "cardinality: the two hubs");
    assert_eq!(w_opt, 35, "weight: one hub for the bridge + five leaves");
    assert_ne!(w_opt, c_opt as u64);

    for (name, algorithm) in policies() {
        for split in [false, true] {
            let mut b = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(6))
                .weighted();
            if split {
                b = b.component_branching_params(SplitParams {
                    min_live: 4,
                    max_depth: 16,
                });
            }
            let r = b.build().solve_mvc(&g);
            assert_eq!(r.weight, w_opt, "{name} (weighted, split={split})");
            assert!(is_vertex_cover(&g, &r.cover), "{name}");
        }
    }
}

/// ComponentSteal on a graph that never disconnects degrades to plain
/// work stealing — and must stay exact.
#[test]
fn compsteal_without_any_split_is_sound() {
    let g = gen::p_hat_complement(40, 2, 5);
    let expect = solver(Algorithm::Sequential, false).solve_mvc(&g);
    let r = solver(Algorithm::ComponentSteal, true).solve_mvc(&g);
    assert_eq!(r.size, expect.size);
    assert!(is_vertex_cover(&g, &r.cover));
    assert_eq!(r.stats.report.split_totals().taken, 0);
}
