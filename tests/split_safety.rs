//! Safety of in-search component branching (`parvc_core::split`):
//! split-on and split-off must agree with the brute-force oracle under
//! every scheduling policy, for MVC and PVC, across the generator
//! corpus — plus a regression on a graph engineered to disconnect only
//! at branching depth ≥ 2 (where only the *in-search* split, not
//! `parvc-prep`'s up-front decomposition, can catch it).

use parvc::core::bound::SearchBound;
use parvc::core::brute::{brute_force_mvc, weighted_brute_force};
use parvc::core::greedy::greedy_mvc;
use parvc::core::ops::Kernel;
use parvc::core::split::{SplitBackend, SplitBound, SplitParams};
use parvc::core::{is_vertex_cover, Algorithm, Solver, TreeNode};
use parvc::graph::{gen, ops, CsrGraph};
use parvc::simgpu::counters::{Activity, BlockCounters};
use parvc::simgpu::{CostModel, KernelVariant};
use proptest::prelude::*;

/// Every policy, with an aggressive split trigger so small residuals
/// still exercise the machinery.
fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("sequential", Algorithm::Sequential),
        ("stackonly", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("worksteal", Algorithm::WorkStealing),
        ("batch", Algorithm::Batched),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

fn solver(algorithm: Algorithm, split: bool) -> Solver {
    let mut b = Solver::builder().algorithm(algorithm).grid_limit(Some(6));
    if split {
        b = b.component_branching_params(SplitParams {
            min_live: 4,
            max_depth: 16,
            ..SplitParams::default()
        });
    }
    b.build()
}

/// The corpus whose families disconnect in the most dissimilar ways:
/// G(n,p) (rarely), preferential attachment (tree-like, often), grids
/// (cut lines), and sparse multi-component graphs (immediately).
fn arb_corpus_graph() -> impl Strategy<Value = (&'static str, CsrGraph)> {
    (0u8..4, 0u64..1_000).prop_map(|(family, seed)| match family {
        0 => ("gnp", gen::gnp(16 + (seed % 6) as u32, 0.25, seed)),
        1 => ("ba", gen::barabasi_albert(18 + (seed % 6) as u32, 2, seed)),
        2 => (
            "grid",
            gen::grid2d(3 + (seed % 2) as u32, 3 + (seed / 7 % 3) as u32),
        ),
        _ => (
            "components",
            gen::sparse_components(18 + (seed % 6) as u32, 4, 0.4, seed),
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole safety property: splitting on and off agree with
    /// brute force across the corpus, under every policy.
    #[test]
    fn split_on_and_off_agree_with_brute_force((family, g) in arb_corpus_graph()) {
        let (opt, _) = brute_force_mvc(&g);
        for (name, algorithm) in policies() {
            for split in [false, true] {
                let r = solver(algorithm, split).solve_mvc(&g);
                prop_assert_eq!(
                    r.size, opt,
                    "{} (split={}) vs brute force on {}", name, split, family
                );
                prop_assert!(
                    is_vertex_cover(&g, &r.cover),
                    "{} (split={}) non-cover on {}", name, split, family
                );
                prop_assert_eq!(r.cover.len() as u32, r.size);
            }
        }
    }

    /// Weighted MVC through component-sum nodes: split-on and
    /// split-off must agree with the weighted oracle under every
    /// policy — the budgeted sub-searches, sibling budgets, and
    /// combine step all run in weight units.
    #[test]
    fn weighted_split_on_and_off_agree_with_the_oracle(
        (family, g) in arb_corpus_graph(),
        wseed in 0u64..1000,
    ) {
        let g = gen::with_uniform_weights(g, 10, wseed);
        let (opt, _) = weighted_brute_force(&g);
        for (name, algorithm) in policies() {
            for split in [false, true] {
                let mut b = Solver::builder()
                    .algorithm(algorithm)
                    .grid_limit(Some(6))
                    .weighted();
                if split {
                    b = b.component_branching_params(SplitParams {
                        min_live: 4,
                        max_depth: 16,
                        ..SplitParams::default()
                    });
                }
                let r = b.build().solve_mvc(&g);
                prop_assert_eq!(
                    r.weight, opt,
                    "{} (weighted, split={}) vs oracle on {}", name, split, family
                );
                prop_assert!(
                    is_vertex_cover(&g, &r.cover),
                    "{} (weighted, split={}) non-cover on {}", name, split, family
                );
            }
        }
    }

    /// PVC through component-sum nodes: feasibility answers around the
    /// optimum must be exact with splitting on.
    #[test]
    fn split_pvc_answers_are_exact((family, g) in arb_corpus_graph(), dk in 0u32..3) {
        let (opt, _) = brute_force_mvc(&g);
        let k = (opt + dk).saturating_sub(1);
        for (name, algorithm) in policies() {
            let r = solver(algorithm, true).solve_pvc(&g, k);
            if k >= opt {
                let cover = r.cover.expect("feasible k must yield a cover");
                prop_assert!(cover.len() as u32 <= k, "{} cover exceeds k on {}", name, family);
                prop_assert!(is_vertex_cover(&g, &cover), "{} non-cover on {}", name, family);
            } else {
                prop_assert!(
                    r.cover.is_none(),
                    "{} (split) found an impossible cover on {}", name, family
                );
            }
        }
    }
}

/// Two dense 9-vertex G(n,p) blobs joined by exactly two bridge edges
/// (`0–9` and `4–13`). The seed is chosen (and the test re-verifies at
/// runtime) so that no reduction or branch disconnects the residual at
/// depth 0 or 1 — the blobs only separate once branching has cut both
/// bridges, at depth ≥ 2, which only the *in-search* split can catch.
fn depth2_graph() -> CsrGraph {
    let seed = 10;
    let a = gen::gnp(9, 0.45, seed);
    let b = gen::gnp(9, 0.45, seed + 1000);
    let mut edges: Vec<(u32, u32)> = a.edges().collect();
    edges.extend(b.edges().map(|(u, v)| (u + 9, v + 9)));
    edges.push((0, 9));
    edges.push((4, 13));
    CsrGraph::from_edges(18, &edges).unwrap()
}

/// Whether the residual graph (live vertices with degree ≥ 1) of
/// `node` is connected.
fn residual_connected(g: &CsrGraph, node: &TreeNode) -> bool {
    let live: Vec<u32> = (0..node.len()).filter(|&v| node.degree(v) > 0).collect();
    let (sub, _) = ops::induced_subgraph(g, &live);
    ops::is_connected(&sub)
}

#[test]
fn disconnection_at_depth_two_is_caught_by_in_search_split() {
    let g = depth2_graph();
    let (opt, _) = brute_force_mvc(&g);
    assert_eq!(opt, 10, "the construction's optimum moved");
    assert!(ops::is_connected(&g), "the construction must be connected");

    // Structural preconditions: mirroring the engine's first steps, the
    // residual stays connected at the root and after either depth-1
    // branch — prep's up-front split can never fire here.
    let cost = CostModel::default();
    let kernel = Kernel {
        block_size: 32,
        variant: KernelVariant::SharedMem,
        ..Kernel::sequential(&g, &cost)
    };
    let best = greedy_mvc(&g).0;
    let bound = SearchBound::Mvc { best };
    let mut c = BlockCounters::new(0);
    let mut root = TreeNode::root(&g);
    kernel.reduce(
        &mut root,
        bound,
        &mut parvc::core::BlockScratch::new(),
        &mut c,
    );
    assert!(
        residual_connected(&g, &root),
        "root must stay connected after reduction"
    );
    let vmax = kernel.find_max_degree(&root, &mut c).unwrap();
    let mut left = root.clone();
    kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, &mut c);
    kernel.reduce(
        &mut left,
        bound,
        &mut parvc::core::BlockScratch::new(),
        &mut c,
    );
    let mut right = root.clone();
    kernel.remove_vertex(&mut right, vmax, Activity::RemoveMaxVertex, &mut c);
    kernel.reduce(
        &mut right,
        bound,
        &mut parvc::core::BlockScratch::new(),
        &mut c,
    );
    for (label, child) in [("remove-N(vmax)", &left), ("remove-vmax", &right)] {
        assert!(
            child.is_edgeless() || residual_connected(&g, child),
            "{label} child must not disconnect at depth 1"
        );
    }

    // The regression: with splitting on, the search must still take at
    // least one split (at depth ≥ 2, by the preconditions above) and
    // stay exact under every policy.
    for (name, algorithm) in policies() {
        let on = solver(algorithm, true).solve_mvc(&g);
        assert_eq!(on.size, opt, "{name} (split on)");
        assert!(is_vertex_cover(&g, &on.cover), "{name} non-cover");
        let off = solver(algorithm, false).solve_mvc(&g);
        assert_eq!(off.size, opt, "{name} (split off)");
    }
    let seq = solver(Algorithm::Sequential, true).solve_mvc(&g);
    let splits = seq.stats.report.split_totals();
    assert!(
        splits.taken >= 1,
        "no split taken although the graph disconnects at depth 2"
    );
    assert!(splits.components >= 2 * splits.taken);
}

/// The weighted split regression: two expensive-hub communities
/// joined by one bridge — the weighted optimum differs from the
/// unweighted one (so a sub-search silently running cardinality
/// arithmetic cannot pass), the residual disconnects once branching
/// cuts the bridge, and every policy must stay weight-exact with
/// splitting on and off.
#[test]
fn weighted_split_regression_where_the_optima_differ() {
    // Hub 0 over leaves 1..5, hub 6 over leaves 7..11, bridge 0-6.
    let mut edges: Vec<(u32, u32)> = (1..6).map(|v| (0, v)).collect();
    edges.extend((7..12).map(|v| (6, v)));
    edges.push((0, 6));
    let g = CsrGraph::from_edges(12, &edges)
        .unwrap()
        .with_weights(vec![30, 1, 1, 1, 1, 1, 30, 1, 1, 1, 1, 1])
        .unwrap();
    let (w_opt, _) = weighted_brute_force(&g);
    let (c_opt, _) = brute_force_mvc(&g);
    assert_eq!(c_opt, 2, "cardinality: the two hubs");
    assert_eq!(w_opt, 35, "weight: one hub for the bridge + five leaves");
    assert_ne!(w_opt, c_opt as u64);

    for (name, algorithm) in policies() {
        for split in [false, true] {
            let mut b = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(6))
                .weighted();
            if split {
                b = b.component_branching_params(SplitParams {
                    min_live: 4,
                    max_depth: 16,
                    ..SplitParams::default()
                });
            }
            let r = b.build().solve_mvc(&g);
            assert_eq!(r.weight, w_opt, "{name} (weighted, split={split})");
            assert!(is_vertex_cover(&g, &r.cover), "{name}");
        }
    }
}

/// ComponentSteal on a graph that never disconnects degrades to plain
/// work stealing — and must stay exact.
#[test]
fn compsteal_without_any_split_is_sound() {
    let g = gen::p_hat_complement(40, 2, 5);
    let expect = solver(Algorithm::Sequential, false).solve_mvc(&g);
    let r = solver(Algorithm::ComponentSteal, true).solve_mvc(&g);
    assert_eq!(r.size, expect.size);
    assert!(is_vertex_cover(&g, &r.cover));
    assert_eq!(r.stats.report.split_totals().taken, 0);
}

/// The two connectivity backends, as full split parameter sets. The
/// BFS arm also pins the PR 3 matching bound so the union-find arm's
/// LP bound is exercised against it in the full-solve property.
fn backend_params(backend: SplitBackend) -> SplitParams {
    SplitParams {
        min_live: 4,
        max_depth: 16,
        backend,
        bound: SplitBound::Matching,
    }
}

/// Extracts the component partition a backend reports at `node`, as
/// `old_ids` member lists (canonically ordered by `detect_components`).
fn components_of(
    kernel: &Kernel<'_>,
    node: &parvc::core::TreeNode,
    backend: SplitBackend,
    conn: &mut parvc::core::Connectivity,
    weighted: bool,
) -> Option<Vec<Vec<u32>>> {
    let mut c = BlockCounters::new(0);
    parvc::core::split::detect_components(
        kernel,
        node,
        backend_params(backend),
        conn,
        &mut c,
        weighted,
    )
    .map(|comps| comps.into_iter().map(|s| s.old_ids).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The union-find satellite property: at **every** node of a
    /// branching descent — including jumps back to earlier nodes,
    /// which cross the tracker's checkpoint and force the dirty-region
    /// rebuild — the incremental union-find backend reports exactly
    /// the components the from-scratch BFS reports, under cardinality
    /// and weighted reductions alike.
    #[test]
    fn union_find_and_bfs_report_identical_components(
        (family, g) in arb_corpus_graph(),
        wseed in 0u64..1000,
        branch_bits in 0u32..256,
        wbit in 0u8..2,
    ) {
        let weighted = wbit == 1;
        let g = if weighted {
            gen::with_uniform_weights(g, 10, wseed)
        } else {
            g
        };
        let cost = CostModel::default();
        let kernel = Kernel {
            block_size: 32,
            variant: KernelVariant::SharedMem,
            ..Kernel::sequential(&g, &cost)
        };
        let bound = if weighted {
            SearchBound::WeightedMvc { best: u64::MAX - 1 }
        } else {
            SearchBound::Mvc { best: g.num_vertices() }
        };
        let mut c = BlockCounters::new(0);
        let mut conn = parvc::core::Connectivity::new();
        let mut node = TreeNode::root(&g);
        let mut checkpoints: Vec<TreeNode> = Vec::new();
        for level in 0..8u32 {
            kernel.reduce(&mut node, bound, &mut parvc::core::BlockScratch::new(), &mut c);
            let bfs = components_of(
                &kernel, &node, SplitBackend::Bfs,
                &mut parvc::core::Connectivity::new(), weighted,
            );
            let uf = components_of(&kernel, &node, SplitBackend::UnionFind, &mut conn, weighted);
            prop_assert_eq!(
                &bfs, &uf,
                "{}: backends disagree at level {} (weighted={})", family, level, weighted
            );
            // Jump back every third level to cross the checkpoint (the
            // popped node resurrects vertices, forcing a rebuild).
            if level % 3 == 2 {
                if let Some(earlier) = checkpoints.pop() {
                    node = earlier;
                    continue;
                }
            }
            let Some(vmax) = kernel.find_max_degree(&node, &mut c) else { break };
            if node.degree(vmax) <= 0 {
                break;
            }
            checkpoints.push(node.clone());
            if (branch_bits >> level) & 1 == 0 {
                kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, &mut c);
            } else {
                kernel.remove_neighbors(&mut node, vmax, Activity::RemoveNeighbors, &mut c);
            }
        }
    }

    /// Full-solve equivalence: a deterministic Sequential traversal
    /// explores the identical tree under either backend — same
    /// optimum, same number of checks, same splits taken — for MVC,
    /// PVC, and weighted MVC.
    #[test]
    fn backends_explore_identical_trees((family, g) in arb_corpus_graph(), wseed in 0u64..1000) {
        let solve = |backend, weighted: bool| {
            let mut b = Solver::builder()
                .algorithm(Algorithm::Sequential)
                .component_branching_params(backend_params(backend));
            if weighted {
                b = b.weighted();
            }
            b.build()
        };
        for weighted in [false, true] {
            let g = if weighted {
                gen::with_uniform_weights(g.clone(), 10, wseed)
            } else {
                g.clone()
            };
            let bfs = solve(SplitBackend::Bfs, weighted).solve_mvc(&g);
            let uf = solve(SplitBackend::UnionFind, weighted).solve_mvc(&g);
            prop_assert_eq!(bfs.size, uf.size, "{} (weighted={})", family, weighted);
            prop_assert_eq!(bfs.weight, uf.weight, "{} (weighted={})", family, weighted);
            prop_assert_eq!(
                bfs.stats.tree_nodes, uf.stats.tree_nodes,
                "{} (weighted={}): backends explored different trees", family, weighted
            );
            let (sb, su) = (bfs.stats.report.split_totals(), uf.stats.report.split_totals());
            prop_assert_eq!(sb.checks, su.checks, "{}: check counts differ", family);
            prop_assert_eq!(sb.taken, su.taken, "{}: splits taken differ", family);
            prop_assert_eq!(sb.components, su.components, "{}: components differ", family);
            prop_assert!(sb.uf_rebuilds == 0, "BFS backend must not touch the tracker");
        }
        // PVC around the optimum, both backends.
        let (opt, _) = brute_force_mvc(&g);
        for k in [opt.saturating_sub(1), opt] {
            let bfs = solve(SplitBackend::Bfs, false).solve_pvc(&g, k);
            let uf = solve(SplitBackend::UnionFind, false).solve_pvc(&g, k);
            prop_assert_eq!(
                bfs.cover.is_some(), uf.cover.is_some(),
                "{}: PVC k={} answers differ between backends", family, k
            );
            prop_assert_eq!(bfs.cover.is_some(), k >= opt, "{}: PVC answer wrong", family);
        }
    }

    /// The LP sibling bound never changes the answer, only the work:
    /// both bound choices stay exact against brute force, and the LP
    /// arm never explores more tree nodes than the matching arm on a
    /// deterministic Sequential traversal.
    #[test]
    fn lp_bound_is_exact_and_no_weaker((family, g) in arb_corpus_graph()) {
        let (opt, _) = brute_force_mvc(&g);
        let solve = |bound| {
            Solver::builder()
                .algorithm(Algorithm::Sequential)
                .component_branching_params(SplitParams {
                    min_live: 4,
                    max_depth: 16,
                    bound,
                    ..SplitParams::default()
                })
                .build()
                .solve_mvc(&g)
        };
        let lp = solve(SplitBound::Lp);
        let matching = solve(SplitBound::Matching);
        prop_assert_eq!(lp.size, opt, "{}: LP bound broke exactness", family);
        prop_assert_eq!(matching.size, opt, "{}: matching bound broke exactness", family);
        prop_assert!(is_vertex_cover(&g, &lp.cover), "{}: LP non-cover", family);
        prop_assert!(
            lp.stats.tree_nodes <= matching.stats.tree_nodes,
            "{}: the LP bound explored more nodes ({} > {})",
            family, lp.stats.tree_nodes, matching.stats.tree_nodes
        );
    }
}

/// The union-find backend must actually save connectivity work on a
/// component-structured instance (the bench asserts this on
/// `massive_components`; this is the same property in test size).
#[test]
fn union_find_does_less_check_work_than_bfs() {
    let g = gen::sparse_components(400, 25, 0.3, 9);
    let solve = |backend| {
        Solver::builder()
            .algorithm(Algorithm::Sequential)
            .component_branching_params(SplitParams {
                backend,
                ..SplitParams::default()
            })
            .build()
            .solve_mvc(&g)
    };
    let uf = solve(SplitBackend::UnionFind);
    let bfs = solve(SplitBackend::Bfs);
    assert_eq!(uf.size, bfs.size);
    let (wu, wb) = (
        uf.stats.report.split_totals(),
        bfs.stats.report.split_totals(),
    );
    assert_eq!(wu.checks, wb.checks, "same tree, same checks");
    assert!(
        wu.check_work < wb.check_work,
        "union-find must do strictly less work ({} >= {})",
        wu.check_work,
        wb.check_work
    );
    assert!(wu.uf_rebuilds >= 1, "the tracker must have (re)built");
}
