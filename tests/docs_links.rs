//! Link check over the Markdown documentation: every relative link in
//! README.md, ARCHITECTURE.md, and docs/cli.md must point at a file
//! that exists in the repository (the CI `docs` job runs this, so a
//! renamed file cannot silently orphan the docs).

use std::path::Path;

/// Extracts `](target)` link targets from Markdown, skipping absolute
/// URLs and in-page anchors.
fn relative_links(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = markdown;
    while let Some(i) = rest.find("](") {
        rest = &rest[i + 2..];
        let Some(end) = rest.find(')') else { break };
        let target = &rest[..end];
        rest = &rest[end..];
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with('#')
            || target.is_empty()
        {
            continue;
        }
        // Drop an in-page anchor suffix, if any.
        let path = target.split('#').next().unwrap_or(target);
        out.push(path.to_string());
    }
    out
}

#[test]
fn markdown_relative_links_resolve() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let docs = [
        "README.md",
        "ARCHITECTURE.md",
        "docs/cli.md",
        "docs/serve.md",
        "docs/operations.md",
    ];
    for doc in docs {
        let path = repo.join(doc);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{doc} must exist (it is the documentation front door): {e}")
        });
        let links = relative_links(&text);
        assert!(
            !links.is_empty() || doc == "docs/cli.md",
            "{doc}: expected at least one relative link"
        );
        let base = path.parent().expect("doc path has a parent directory");
        for link in links {
            // Relative links resolve against the CONTAINING document's
            // directory (so docs/cli.md links resolve under docs/).
            let target = base.join(&link);
            assert!(
                target.exists(),
                "{doc}: broken relative link '{link}' (resolved to {})",
                target.display()
            );
        }
    }
}

#[test]
fn front_door_documents_exist_and_are_nonempty() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (doc, needle) in [
        ("README.md", "parvc"),
        ("ARCHITECTURE.md", "SchedulePolicy"),
        ("docs/cli.md", "--component-branching"),
        ("docs/serve.md", "content_hash"),
        ("docs/operations.md", "Perfetto"),
    ] {
        let text = std::fs::read_to_string(repo.join(doc)).expect(doc);
        assert!(text.len() > 500, "{doc} is suspiciously short");
        assert!(text.contains(needle), "{doc} lost its '{needle}' content");
    }
}
