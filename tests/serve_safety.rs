//! The serving tier's safety contract, exercised through the public
//! request/response surface (`Server::handle`, one line in, one JSON
//! line out) plus one real TCP round trip:
//!
//! * the LOAD → SOLVE (miss) → SOLVE (hit) → RESOLVE → STATS loop,
//!   with the hit's cover **bit-identical** to the miss's and every
//!   step counted;
//! * cache keys are content, not names: the same graph loaded from a
//!   DIMACS file and from a generator spec shares one cache entry;
//! * LRU eviction and the disk persistence round trip — a restarted
//!   server answers from yesterday's cache file;
//! * overload shedding returns certified 2-approximations: valid
//!   covers within 2× of the brute-force optimum, with sound lower
//!   bounds (the oracle contract `tests/approx_safety.rs` pins for
//!   the tier itself).

use parvc::core::brute::{brute_force_mvc, weighted_brute_force};
use parvc::graph::{gen, io};
use parvc::serve::{ServeConfig, Server};
use parvc_bench::json::{parse, Value};

fn handle(server: &Server, line: &str) -> Value {
    let response = server
        .handle(line)
        .unwrap_or_else(|| panic!("no response for '{line}'"));
    let doc = parse(&response).unwrap_or_else(|e| panic!("bad response for '{line}': {e}"));
    assert!(
        matches!(doc.get("ok"), Some(Value::Bool(true))),
        "request '{line}' failed: {response}"
    );
    doc
}

fn num(doc: &Value, key: &str) -> u64 {
    doc.get(key)
        .and_then(Value::num)
        .unwrap_or_else(|| panic!("missing numeric field '{key}' in {doc:?}"))
}

fn cover(doc: &Value) -> Vec<u32> {
    doc.get("cover")
        .and_then(Value::arr)
        .unwrap_or_else(|| panic!("missing cover in {doc:?}"))
        .iter()
        .filter_map(Value::num)
        .map(|v| v as u32)
        .collect()
}

fn is_true(doc: &Value, key: &str) -> bool {
    matches!(doc.get(key), Some(Value::Bool(true)))
}

/// A temp path unique to this test process.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("parvc-serve-test-{}-{name}", std::process::id()))
}

#[test]
fn load_solve_hit_resolve_stats_round_trip() {
    let server = Server::new(ServeConfig::default());
    handle(&server, "LOAD demo gnp:50:0.1@7");

    let miss = handle(&server, "SOLVE demo");
    assert!(!is_true(&miss, "cached"), "first solve must miss");
    let first_cover = cover(&miss);
    assert!(parvc::core::is_vertex_cover(
        &gen::gnp(50, 0.1, 7),
        &first_cover
    ));

    let hit = handle(&server, "SOLVE demo");
    assert!(is_true(&hit, "cached"), "repeat solve must hit");
    assert_eq!(
        cover(&hit),
        first_cover,
        "a cache hit must reproduce the original cover bit for bit"
    );
    assert_eq!(num(&hit, "cost"), num(&miss, "cost"));

    let resolved = handle(&server, "RESOLVE demo --edits gen:6:0.5@9");
    assert_eq!(num(&resolved, "edits"), 6);
    assert!(num(&resolved, "components_total") >= 1);

    // The re-solve primed the cache for the post-edit graph: the next
    // SOLVE of the same name must hit and agree with RESOLVE's answer.
    let after = handle(&server, "SOLVE demo");
    assert!(
        is_true(&after, "cached"),
        "post-edit solve must hit the resolve-primed entry"
    );
    assert_eq!(cover(&after), cover(&resolved));

    let stats = handle(&server, "STATS");
    let cache = stats.get("cache").expect("STATS has a cache object");
    // Hits: repeat SOLVE + RESOLVE's cache-seeded baseline + post-edit
    // SOLVE. Misses: the first SOLVE only.
    assert_eq!(num(cache, "hits"), 3, "stats: {stats:?}");
    assert_eq!(num(cache, "misses"), 1);
    assert_eq!(num(&stats, "sheds"), 0);
    let requests = stats.get("requests").expect("STATS has request counts");
    assert_eq!(num(requests, "solve"), 3);
    assert_eq!(num(requests, "resolve"), 1);
    assert_eq!(num(requests, "errors"), 0);
}

#[test]
fn file_and_spec_share_one_cache_entry() {
    let spec = "components:60:6:0.5@11";
    let g = gen::sparse_components(60, 6, 0.5, 11);
    let path = temp_path("file-vs-spec.dimacs");
    let file = std::fs::File::create(&path).expect("create temp dimacs");
    io::write_dimacs(&g, "edge", std::io::BufWriter::new(file)).expect("write dimacs");

    let server = Server::new(ServeConfig::default());
    let from_file = handle(&server, &format!("LOAD f {}", path.display()));
    let from_spec = handle(&server, &format!("LOAD s {spec}"));
    assert_eq!(
        from_file.get("hash"),
        from_spec.get("hash"),
        "same content must hash identically regardless of how it loads"
    );

    let miss = handle(&server, "SOLVE f");
    let hit = handle(&server, "SOLVE s");
    assert!(!is_true(&miss, "cached"));
    assert!(
        is_true(&hit, "cached"),
        "the spec-loaded twin must hit the file-loaded instance's entry"
    );
    assert_eq!(cover(&hit), cover(&miss));

    let stats = handle(&server, "STATS");
    assert_eq!(
        num(stats.get("cache").expect("cache object"), "entries"),
        1,
        "one graph content ⇒ one cache entry, whatever its names"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn eviction_and_disk_persistence_round_trip() {
    let path = temp_path("cache-persist.json");
    std::fs::remove_file(&path).ok();
    let cfg = || ServeConfig {
        cache_capacity: 2,
        cache_path: Some(path.clone()),
        ..ServeConfig::default()
    };

    let first_cover;
    {
        let server = Server::new(cfg());
        handle(&server, "LOAD a gnp:30:0.15@1");
        handle(&server, "LOAD b gnp:30:0.15@2");
        handle(&server, "LOAD c gnp:30:0.15@3");
        handle(&server, "SOLVE a");
        handle(&server, "SOLVE b");
        first_cover = cover(&handle(&server, "SOLVE c")); // evicts a's entry
        let stats = handle(&server, "STATS");
        let cache = stats.get("cache").expect("cache object");
        assert_eq!(num(cache, "entries"), 2, "capacity 2 holds 2 entries");
        assert_eq!(num(cache, "evictions"), 1, "third insert evicted the LRU");
        let again = handle(&server, "SOLVE a");
        assert!(!is_true(&again, "cached"), "evicted entry must re-miss");
    }

    // A fresh server over the same cache file answers from disk.
    let server = Server::new(cfg());
    handle(&server, "LOAD c gnp:30:0.15@3");
    let warm = handle(&server, "SOLVE c");
    assert!(
        is_true(&warm, "cached"),
        "restarted server must answer from the persisted cache"
    );
    assert_eq!(
        cover(&warm),
        first_cover,
        "the persisted cover must round-trip bit for bit"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn shed_answers_are_certified_two_approximations() {
    let server = Server::new(ServeConfig {
        high_water: 0, // shed every exact solve
        ..ServeConfig::default()
    });
    let corpus = [
        ("gnp", "gnp:14:0.3@5", false),
        ("comp", "components:21:3:0.5@2", false),
        ("wgnp", "gnp:12:0.3@8:w=degree", true),
    ];
    for (name, spec, weighted) in corpus {
        let g = gen::spec::parse(spec)
            .expect("corpus spec parses")
            .expect("corpus spec is a generator");
        handle(&server, &format!("LOAD {name} {spec}"));
        let flag = if weighted { " --weighted" } else { "" };
        let doc = handle(&server, &format!("SOLVE {name}{flag}"));
        assert!(
            is_true(&doc, "degraded"),
            "{name}: overloaded solve must shed"
        );
        assert!(is_true(&doc, "certified"));
        let c = cover(&doc);
        assert!(
            parvc::core::is_vertex_cover(&g, &c),
            "{name}: shed answer is not a cover"
        );
        let (cost, lb) = (num(&doc, "cost"), num(&doc, "lower_bound"));
        let opt = if weighted {
            weighted_brute_force(&g).0
        } else {
            brute_force_mvc(&g).0 as u64
        };
        assert!(
            lb <= opt,
            "{name}: certificate lower bound {lb} exceeds OPT {opt}"
        );
        assert!(
            cost <= 2 * opt,
            "{name}: shed cover cost {cost} breaks the 2x bound (OPT {opt})"
        );
        assert!(
            cost <= 2 * lb,
            "{name}: certificate is internally inconsistent"
        );
    }
    // A cache hit is still served under overload: prime via --no-cache
    // bypass? No — the shed path never fills the cache, so prove the
    // other half instead: RESOLVE is never shed.
    let resolved = handle(&server, "RESOLVE gnp --edits +e:0:5");
    assert!(
        resolved.get("degraded").is_none(),
        "RESOLVE must never shed"
    );

    let stats = handle(&server, "STATS");
    assert_eq!(num(&stats, "sheds"), 3, "every exact SOLVE was shed");
}

#[test]
fn cache_hits_survive_overload() {
    // Prime the cache under normal admission, then force overload:
    // the hit must still be served exactly (lookup precedes shedding).
    let warm = Server::new(ServeConfig::default());
    handle(&warm, "LOAD a gnp:30:0.15@4");
    let exact = cover(&handle(&warm, "SOLVE a"));

    let path = temp_path("overload-hits.json");
    std::fs::remove_file(&path).ok();
    let shared = |high_water: usize| ServeConfig {
        high_water,
        cache_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    {
        let server = Server::new(shared(4));
        handle(&server, "LOAD a gnp:30:0.15@4");
        handle(&server, "SOLVE a"); // fills the shared cache file
    }
    let overloaded = Server::new(shared(0));
    handle(&overloaded, "LOAD a gnp:30:0.15@4");
    let hit = handle(&overloaded, "SOLVE a");
    assert!(
        is_true(&hit, "cached"),
        "cache hit must be served under overload"
    );
    assert_eq!(
        cover(&hit),
        exact,
        "overload must not change the cached answer"
    );
    let stats = handle(&overloaded, "STATS");
    assert_eq!(num(&stats, "sheds"), 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn tcp_round_trip_on_an_ephemeral_port() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = Server::new(ServeConfig::default());
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let serving = scope
            .spawn(|| parvc::serve::serve_listener(&server, &listener, 2, &stop).expect("serve"));

        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        let mut ask = |line: &str| -> Value {
            writeln!(writer, "{line}").expect("send");
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            parse(&response).unwrap_or_else(|e| panic!("bad response for '{line}': {e}"))
        };

        let loaded = ask("LOAD net gnp:40:0.1@2");
        assert!(is_true(&loaded, "ok"));
        let miss = ask("SOLVE net");
        let hit = ask("SOLVE net");
        assert!(!is_true(&miss, "cached"));
        assert!(is_true(&hit, "cached"));
        assert_eq!(cover(&hit), cover(&miss));
        let bad = ask("SOLVE nosuch");
        assert!(
            !is_true(&bad, "ok"),
            "unknown instance must error, not hang"
        );
        writeln!(writer, "QUIT").expect("quit");

        // Unblock the accept loop so the serving thread can observe stop.
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        let served = serving.join().expect("serving thread");
        assert!(served >= 1, "at least our connection was served");
    });
}
