//! Determinism guarantees: what must be reproducible, and what may
//! legitimately vary between runs.
//!
//! Deterministic: generators (seeded), the Sequential traversal (fixed
//! child order), reductions (id-ordered rounds), occupancy planning.
//! Nondeterministic by design: the parallel traversals' work order —
//! but never their *answers*.

use parvc::core::{Algorithm, Solver};
use parvc::graph::{gen, io, kcore, ops};

#[test]
fn sequential_solver_is_fully_deterministic() {
    let g = gen::p_hat_complement(70, 2, 55);
    let run = || {
        let r = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        (r.size, r.cover.clone(), r.stats.tree_nodes)
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(
            run(),
            first,
            "sequential traversal must be bit-for-bit repeatable"
        );
    }
}

#[test]
fn parallel_answers_are_stable_across_runs() {
    let g = gen::barabasi_albert(90, 4, 55);
    let expect = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g)
        .size;
    for run in 0..4 {
        for algorithm in [Algorithm::Hybrid, Algorithm::StackOnly { start_depth: 5 }] {
            let r = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(8))
                .build()
                .solve_mvc(&g);
            assert_eq!(r.size, expect, "run {run}: {algorithm} answer drifted");
        }
    }
}

#[test]
fn generators_are_run_to_run_stable() {
    // Byte-identical regeneration (the suite's reproducibility rests on
    // this; exact |E| pins live in `suite_fingerprints_match...`).
    assert_eq!(
        gen::p_hat_complement(60, 2, 3075),
        gen::p_hat_complement(60, 2, 3075)
    );
    assert_eq!(gen::pace_like(120, 5, 4), gen::pace_like(120, 5, 4));
    assert_eq!(
        gen::watts_strogatz(100, 4, 0.2, 9),
        gen::watts_strogatz(100, 4, 0.2, 9)
    );
    // BA's edge count is determined analytically, not by the RNG:
    // C(m+1, 2) seed-clique edges + m per later vertex.
    assert_eq!(gen::barabasi_albert(100, 3, 7).num_edges(), 6 + 96 * 3);
}

#[test]
fn suite_fingerprints_match_experiments_doc() {
    // EXPERIMENTS.md quotes |V|/|E| per instance; keep them honest.
    use parvc_bench_fingerprints::*;
    for (name, v, e) in EXPECTED {
        let inst = find(name);
        assert_eq!(
            (inst.graph.num_vertices(), inst.graph.num_edges()),
            (*v, *e),
            "instance {name} drifted from the documented shape"
        );
    }
}

/// Tiny helper module so the fingerprint test reads cleanly.
mod parvc_bench_fingerprints {
    pub use parvc_bench::suite::{suite, Instance, Scale};

    pub const EXPECTED: &[(&str, u32, u64)] = &[
        ("p_hat_100_1", 100, 3765),
        ("p_hat_200_3", 200, 4757),
        ("wiki_link_lo_like", 150, 1722),
        ("power_grid_like", 350, 700),
        ("vc_exact_023_like", 170, 584),
        ("vc_exact_009_like", 180, 630),
    ];

    pub fn find(name: &str) -> Instance {
        suite(Scale::Small)
            .into_iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("instance {name} missing from suite"))
    }
}

#[test]
fn dimacs_serialization_is_canonical() {
    // Same graph, two construction orders → identical DIMACS bytes.
    let a = parvc::graph::CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
    let b = parvc::graph::CsrGraph::from_edges(5, &[(4, 3), (2, 1), (1, 0)]).unwrap();
    let mut buf_a = Vec::new();
    let mut buf_b = Vec::new();
    io::write_dimacs(&a, "edge", &mut buf_a).unwrap();
    io::write_dimacs(&b, "edge", &mut buf_b).unwrap();
    assert_eq!(buf_a, buf_b);
}

#[test]
fn complement_and_core_are_pure_functions() {
    let g = gen::gnp(50, 0.2, 77);
    assert_eq!(ops::complement(&g), ops::complement(&g));
    assert_eq!(kcore::core_decomposition(&g), kcore::core_decomposition(&g));
}
