//! Safety of the **weighted MVC** mode: the engine must reproduce the
//! `weighted_brute_force` oracle under every scheduling policy, with
//! preprocessing off and on, across the generator corpus with uniform
//! random weights in `1..=10` — and a weighted run over all-1 weights
//! must match the unweighted `SearchMode::Mvc` cover sizes exactly
//! (unit-weight equivalence), so a silent unit mix-up in either
//! direction cannot pass.

use parvc::core::brute::{brute_force_mvc, weighted_brute_force};
use parvc::core::{is_vertex_cover, Algorithm, PrepConfig, Solver};
use parvc::graph::{gen, CsrGraph};
use proptest::prelude::*;

/// Every scheduling policy of the engine.
fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("sequential", Algorithm::Sequential),
        ("stackonly", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("worksteal", Algorithm::WorkStealing),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

fn weighted_solver(algorithm: Algorithm, prep: bool) -> Solver {
    let mut b = Solver::builder()
        .algorithm(algorithm)
        .grid_limit(Some(6))
        .weighted();
    if prep {
        b = b.preprocess(PrepConfig::default());
    }
    b.build()
}

/// A corpus instance (gnp/ba/grid/components — the families with the
/// most dissimilar search trees) with uniform random weights in
/// `1..=10`, kept small enough for the subset-enumeration oracle.
fn arb_weighted_corpus_graph() -> impl Strategy<Value = (&'static str, CsrGraph)> {
    (0u8..4, 0u64..1_000).prop_map(|(family, seed)| {
        let (name, g) = match family {
            0 => ("gnp", gen::gnp(14 + (seed % 6) as u32, 0.25, seed)),
            1 => ("ba", gen::barabasi_albert(15 + (seed % 5) as u32, 2, seed)),
            2 => (
                "grid",
                gen::grid2d(3 + (seed % 2) as u32, 3 + (seed / 7 % 3) as u32),
            ),
            _ => (
                "components",
                gen::sparse_components(16 + (seed % 4) as u32, 4, 0.4, seed),
            ),
        };
        (name, gen::with_uniform_weights(g, 10, seed ^ 0xabcd))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: engine == weighted brute force for all
    /// five policies, prep-off AND prep-on, weights ∈ {1..10}.
    #[test]
    fn engine_matches_weighted_brute_force((family, g) in arb_weighted_corpus_graph()) {
        let (opt, _) = weighted_brute_force(&g);
        for (name, algorithm) in policies() {
            for prep in [false, true] {
                let r = weighted_solver(algorithm, prep).solve_mvc(&g);
                prop_assert_eq!(
                    r.weight, opt,
                    "{} (prep={}) vs weighted brute force on {}", name, prep, family
                );
                prop_assert!(
                    is_vertex_cover(&g, &r.cover),
                    "{} (prep={}) non-cover on {}", name, prep, family
                );
                prop_assert_eq!(r.weight, g.cover_weight(&r.cover));
                prop_assert_eq!(r.size as usize, r.cover.len());
            }
        }
    }

    /// Unit-weight equivalence: a weighted run over all-1 weights must
    /// report the same cover size as the unweighted `SearchMode::Mvc`
    /// traversal on the same instance, for every policy — the two
    /// modes' arithmetic is identical at weight 1, so any divergence
    /// is a unit bug.
    #[test]
    fn unit_weights_bit_match_the_unweighted_mode((family, g) in arb_weighted_corpus_graph()) {
        let plain = g.clone().without_weights();
        let unit = plain
            .clone()
            .with_weights(vec![1; plain.num_vertices() as usize])
            .expect("unit weights are valid");
        let (opt, _) = brute_force_mvc(&plain);
        for (name, algorithm) in policies() {
            let unweighted = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(6))
                .build()
                .solve_mvc(&plain);
            let weighted = weighted_solver(algorithm, false).solve_mvc(&unit);
            prop_assert_eq!(
                weighted.weight, opt as u64,
                "{} weighted(all-1) vs brute force on {}", name, family
            );
            prop_assert_eq!(
                weighted.size, unweighted.size,
                "{} unit-weight size mismatch on {}", name, family
            );
            prop_assert_eq!(weighted.weight, weighted.size as u64);
            prop_assert!(is_vertex_cover(&plain, &weighted.cover));
        }
    }
}

/// The weighted optimum on a graph the cardinality mode gets "wrong":
/// an expensive hub forces the weighted solver away from the size-1
/// cover, under every policy and through prep — a mode mix-up (weight
/// arithmetic silently falling back to cardinality) cannot pass.
#[test]
fn expensive_hub_separates_the_modes() {
    let g = gen::star(8)
        .with_weights(vec![50, 1, 1, 1, 1, 1, 1, 1])
        .unwrap();
    let (opt, _) = weighted_brute_force(&g);
    assert_eq!(opt, 7, "seven weight-1 leaves beat the weight-50 hub");
    assert_eq!(
        brute_force_mvc(&g).0,
        1,
        "cardinality still prefers the hub"
    );
    for (name, algorithm) in policies() {
        for prep in [false, true] {
            let r = weighted_solver(algorithm, prep).solve_mvc(&g);
            assert_eq!(r.weight, 7, "{name} (prep={prep})");
            assert_eq!(r.size, 7, "{name} (prep={prep})");
            assert!(is_vertex_cover(&g, &r.cover));
        }
    }
}

/// Weighted solves through in-search component branching: every
/// policy (ComponentSteal donates whole components) must stay exact
/// on a multi-component weighted instance.
#[test]
fn weighted_component_branching_stays_exact() {
    for seed in 0..3u64 {
        let g = gen::with_uniform_weights(gen::sparse_components(18, 4, 0.45, seed), 10, seed);
        let (opt, _) = weighted_brute_force(&g);
        for (name, algorithm) in policies() {
            let r = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(6))
                .weighted()
                .component_branching(true)
                .build()
                .solve_mvc(&g);
            assert_eq!(r.weight, opt, "{name} (split) seed {seed}");
            assert!(is_vertex_cover(&g, &r.cover), "{name} seed {seed}");
        }
    }
}

/// Weighted mode composes with the reduction/pruning extensions
/// (domination rule + matching lower bound run their weighted gates).
#[test]
fn weighted_extensions_stay_exact() {
    for seed in 0..4u64 {
        let g = gen::with_uniform_weights(gen::gnp(14, 0.3, seed), 10, seed + 99);
        let (opt, _) = weighted_brute_force(&g);
        let r = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .extensions(parvc::core::Extensions::ALL)
            .weighted()
            .build()
            .solve_mvc(&g);
        assert_eq!(r.weight, opt, "seed {seed}");
        assert!(is_vertex_cover(&g, &r.cover));
    }
}

/// The degree-weight channel (`w(v) = d(v) + 1`) makes hubs expensive
/// across a whole Barabási–Albert graph — a structured stress for the
/// weight gates, validated against the oracle.
#[test]
fn degree_weights_on_preferential_attachment() {
    for seed in 0..3u64 {
        let g = gen::with_degree_weights(gen::barabasi_albert(16, 2, seed));
        let (opt, _) = weighted_brute_force(&g);
        for (name, algorithm) in policies() {
            let r = weighted_solver(algorithm, false).solve_mvc(&g);
            assert_eq!(r.weight, opt, "{name} seed {seed}");
        }
    }
}
