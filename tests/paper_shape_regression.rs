//! Shape regression: the paper's qualitative claims, as assertions.
//!
//! These tests pin the *direction* of every headline comparison in
//! EXPERIMENTS.md with wide margins, so a future refactor that quietly
//! breaks the load-balancing story (without breaking correctness)
//! fails CI. All margins are several-fold below the measured gaps.

use parvc::core::{Algorithm, Solver};
use parvc::graph::gen;
use parvc::simgpu::counters::{Activity, ActivityFamily};
use parvc::simgpu::DeviceSpec;

/// A difficult high-degree instance (p_hat-style dense complement with
/// a non-trivial tree) used across the shape checks.
fn difficult_instance() -> parvc::graph::CsrGraph {
    gen::p_hat_complement(150, 3, 0x9a1 + 1503)
}

fn solver(algorithm: Algorithm) -> Solver {
    Solver::builder()
        .algorithm(algorithm)
        .device(DeviceSpec::scaled(8))
        .grid_limit(Some(16))
        .build()
}

#[test]
fn hybrid_beats_stackonly_in_device_cycles_on_difficult_mvc() {
    // Paper Table II: Hybrid over StackOnly, high-degree MVC — 167×.
    // Our ablation measured 2.5–6× in model device time; require 1.3×.
    let g = difficult_instance();
    let hybrid = solver(Algorithm::Hybrid).solve_mvc(&g);
    let stack = solver(Algorithm::StackOnly { start_depth: 8 }).solve_mvc(&g);
    assert_eq!(hybrid.size, stack.size);
    assert!(
        (hybrid.stats.device_cycles as f64) < stack.stats.device_cycles as f64 / 1.3,
        "hybrid {} cycles vs stackonly {} — load-balancing advantage lost",
        hybrid.stats.device_cycles,
        stack.stats.device_cycles
    );
}

#[test]
fn hybrid_load_is_flatter_than_stackonly_on_difficult_mvc() {
    // Paper Figure 5: StackOnly max 63.98× vs Hybrid 1.07×. Measured
    // 7.5× vs 1.18×; require a 2× imbalance gap.
    let g = difficult_instance();
    let hybrid = solver(Algorithm::Hybrid).solve_mvc(&g);
    let stack = solver(Algorithm::StackOnly { start_depth: 8 }).solve_mvc(&g);
    let hi = hybrid.stats.report.sm_load.imbalance();
    let si = stack.stats.report.sm_load.imbalance();
    assert!(
        si > 2.0 * hi,
        "imbalance gap collapsed: stackonly {si:.3} vs hybrid {hi:.3}"
    );
}

#[test]
fn reduction_rules_dominate_hybrid_time() {
    // Paper Figure 6: 65.2% of kernel time in the rules; measured 67%.
    // Require a plurality (> 40%) on the difficult instance.
    let g = difficult_instance();
    let r = solver(Algorithm::Hybrid).solve_mvc(&g);
    let reducing: f64 = r
        .stats
        .report
        .activity_breakdown()
        .iter()
        .filter(|(a, _)| a.family() == ActivityFamily::Reducing)
        .map(|(_, s)| s)
        .sum();
    assert!(
        reducing > 0.40,
        "reducing share fell to {:.1}%",
        reducing * 100.0
    );
}

#[test]
fn donations_flow_on_difficult_instances() {
    // The hybrid mechanism must actually engage: blocks donate and
    // peers consume (seed + donations, each exactly once).
    let g = difficult_instance();
    let r = solver(Algorithm::Hybrid).solve_mvc(&g);
    let donated: u64 = r.stats.report.blocks.iter().map(|b| b.nodes_donated).sum();
    let consumed: u64 = r
        .stats
        .report
        .blocks
        .iter()
        .map(|b| b.nodes_from_worklist)
        .sum();
    assert!(
        donated > 100,
        "only {donated} donations on a difficult instance"
    );
    assert_eq!(consumed, donated + 1);
    // More than one block must have obtained work (true distribution).
    let active = r
        .stats
        .report
        .blocks
        .iter()
        .filter(|b| b.nodes_from_worklist > 0)
        .count();
    assert!(active > 1, "a single block consumed everything");
}

#[test]
fn stackonly_pays_redundant_descent() {
    // Paper §III-A: StackOnly revisits shared path prefixes. Under a
    // FIXED bound (PVC k = min−1 searches the whole tree: no solution,
    // no best-improvement races), the explored tree is identical for
    // all implementations, so StackOnly's node count must strictly
    // exceed Sequential's — the excess is exactly the re-descents
    // (e.g. the root alone is visited once per surviving sub-tree
    // index instead of once).
    let g = gen::p_hat_complement(100, 2, 0x9a1 + 1002);
    let min = solver(Algorithm::Sequential).solve_mvc(&g).size;
    let seq = solver(Algorithm::Sequential).solve_pvc(&g, min - 1);
    let stack = solver(Algorithm::StackOnly { start_depth: 10 }).solve_pvc(&g, min - 1);
    assert!(!seq.found() && !stack.found());
    assert!(
        stack.stats.tree_nodes > seq.stats.tree_nodes,
        "stackonly {} nodes vs sequential {} — where did the redundancy go?",
        stack.stats.tree_nodes,
        seq.stats.tree_nodes
    );
}

#[test]
fn easy_pvc_instances_stay_easy_for_everyone() {
    // Paper observation 2: PVC k=min+1 is fast on all implementations.
    let g = gen::p_hat_complement(100, 1, 0x9a1 + 1001);
    let min = solver(Algorithm::Sequential).solve_mvc(&g).size;
    for algorithm in [
        Algorithm::Sequential,
        Algorithm::StackOnly { start_depth: 8 },
        Algorithm::Hybrid,
    ] {
        let r = solver(algorithm).solve_pvc(&g, min + 1);
        assert!(r.found(), "{algorithm}");
        assert!(
            r.stats.wall_time < std::time::Duration::from_secs(30),
            "{algorithm} took {:?} on an easy instance",
            r.stats.wall_time
        );
    }
}

#[test]
fn worklist_wait_cycles_show_up_in_the_breakdown() {
    // Figure 6's biggest distribution cost is remove-from-worklist;
    // the accounting must attribute nonzero cycles there.
    let g = difficult_instance();
    let r = solver(Algorithm::Hybrid).solve_mvc(&g);
    let remove: u64 = r
        .stats
        .report
        .blocks
        .iter()
        .map(|b| b.cycles(Activity::RemoveFromWorklist))
        .sum();
    assert!(remove > 0);
}
