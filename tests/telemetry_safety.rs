//! Telemetry non-interference property suite.
//!
//! The observability layer's core contract (`crates/obs`): a sink
//! *observes* the solve, it never steers it. Spans and metrics are
//! recorded strictly after the observed operation completes, the
//! heartbeat only reads shared atomics, and the `ObservedExec`
//! decorator delegates every scheduling decision to the wrapped
//! executor. Consequence: with the traversal pinned deterministic
//! (`grid_limit(1)`, like the executor-agreement suite), a solve with
//! a full recording sink attached must reproduce the telemetry-off
//! solve **bit for bit** — same cover, same tree shape, same
//! per-block `BlockCounters` and `SplitCounters` — across every
//! policy, with and without preprocessing, under both executors.

use parvc::core::{Algorithm, ExecutorSpec, MvcResult, Solver, SolverBuilder, TelemetryConfig};
use parvc::graph::gen;
use parvc::graph::CsrGraph;
use parvc::prep::PrepConfig;
use parvc::simgpu::counters::{Activity, BlockCounters, SplitCounters};

fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("sequential", Algorithm::Sequential),
        ("stackonly", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("worksteal", Algorithm::WorkStealing),
        ("batched", Algorithm::Batched),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("gnp", gen::gnp(26, 0.17, 9)),
        ("components", gen::sparse_components(48, 8, 0.5, 3)),
    ]
}

/// `BlockCounters` has no `PartialEq` (the span log is not part of its
/// identity), so identity is asserted on an exhaustive projection:
/// every public counter plus the full per-activity cycle vector.
#[derive(Debug, PartialEq)]
struct BlockFingerprint {
    block_id: u32,
    cycles: Vec<u64>,
    tree_nodes_visited: u64,
    nodes_donated: u64,
    nodes_from_worklist: u64,
    donations_bounced: u64,
    max_stack_depth: u64,
    steals_by_victim: Vec<(u32, u64)>,
    splits: SplitCounters,
}

fn block_fingerprint(c: &BlockCounters) -> BlockFingerprint {
    BlockFingerprint {
        block_id: c.block_id,
        cycles: Activity::ALL.iter().map(|&a| c.cycles(a)).collect(),
        tree_nodes_visited: c.tree_nodes_visited,
        nodes_donated: c.nodes_donated,
        nodes_from_worklist: c.nodes_from_worklist,
        donations_bounced: c.donations_bounced,
        max_stack_depth: c.max_stack_depth,
        steals_by_victim: c.steals_by_victim.iter().map(|(&k, &v)| (k, v)).collect(),
        splits: c.splits.clone(),
    }
}

#[derive(Debug, PartialEq)]
struct SolveFingerprint {
    size: u32,
    weight: u64,
    cover: Vec<u32>,
    tree_nodes: u64,
    device_cycles: u64,
    blocks: Vec<BlockFingerprint>,
}

fn fingerprint(r: &MvcResult) -> SolveFingerprint {
    SolveFingerprint {
        size: r.size,
        weight: r.weight,
        cover: r.cover.clone(),
        tree_nodes: r.stats.tree_nodes,
        device_cycles: r.stats.device_cycles,
        blocks: r
            .stats
            .report
            .blocks
            .iter()
            .map(block_fingerprint)
            .collect(),
    }
}

fn builder(algorithm: Algorithm, exec: ExecutorSpec, prep: bool) -> SolverBuilder {
    let mut b = Solver::builder()
        .algorithm(algorithm)
        .grid_limit(Some(1))
        .component_branching(true)
        .executor(exec);
    if prep {
        b = b.preprocess(PrepConfig::default());
    }
    b
}

/// The full matrix: 6 policies × prep on/off × serial/pooled, each
/// compared telemetry-off vs telemetry-on with the default (full)
/// recording configuration.
#[test]
fn full_sink_never_perturbs_the_solve() {
    let execs = [
        ("serial", ExecutorSpec::Serial),
        ("pooled", ExecutorSpec::Pooled { threads: Some(3) }),
    ];
    for (gname, g) in corpus() {
        for (pname, algorithm) in policies() {
            for prep in [false, true] {
                for (ename, exec) in execs {
                    let ctx = format!("{gname}/{pname}/prep={prep}/{ename}");
                    let off = builder(algorithm, exec, prep).build().solve_mvc(&g);
                    let on = builder(algorithm, exec, prep)
                        .telemetry(TelemetryConfig::default())
                        .build()
                        .solve_mvc(&g);
                    assert!(off.stats.telemetry.is_none(), "{ctx}: phantom snapshot");
                    assert!(on.stats.telemetry.is_some(), "{ctx}: missing snapshot");
                    assert_eq!(fingerprint(&off), fingerprint(&on), "{ctx}");
                }
            }
        }
    }
}

/// The recording run's snapshot is substantive, not an empty shell:
/// engine spans and node counters always appear, and the preprocessed
/// arm adds the prep/component taxonomy.
#[test]
fn recording_runs_capture_the_span_taxonomy() {
    let g = gen::sparse_components(48, 8, 0.5, 3);
    let r = builder(Algorithm::Hybrid, ExecutorSpec::Serial, true)
        .telemetry(TelemetryConfig::default())
        .build()
        .solve_mvc(&g);
    let snap = r.stats.telemetry.as_ref().expect("telemetry was on");
    let cats = snap.span_categories();
    for cat in ["prep", "component", "engine"] {
        assert!(cats.contains(cat), "missing category {cat}: {cats:?}");
    }
    assert!(snap.has_model_lane(), "model-cycle track missing");
    assert_eq!(
        snap.counters.get("engine.nodes").copied(),
        Some(r.stats.tree_nodes),
        "engine.nodes must agree with the report's tree-node total"
    );
}

/// The heartbeat counts every tick without touching the search (its
/// printing is interval-gated; a huge interval keeps stderr silent),
/// so a progress-enabled solve is bit-identical too.
#[test]
fn progress_heartbeat_never_perturbs_the_solve() {
    let g = gen::gnp(26, 0.17, 9);
    for (pname, algorithm) in policies() {
        let plain = builder(algorithm, ExecutorSpec::Serial, false)
            .build()
            .solve_mvc(&g);
        let beating = builder(algorithm, ExecutorSpec::Serial, false)
            .progress(std::time::Duration::from_secs(3600))
            .build()
            .solve_mvc(&g);
        assert_eq!(fingerprint(&plain), fingerprint(&beating), "{pname}");
    }
}

/// Dispatch-seam spans appear exactly when the pooled executor fans
/// out: the serial executor never crosses the seam (flat passes run
/// inline below the parallel cutoff), and `ObservedExec` must not
/// invent work the executor didn't do.
#[test]
fn dispatch_spans_follow_the_executor() {
    let g = gen::gnp(26, 0.17, 9);
    let serial = builder(Algorithm::Hybrid, ExecutorSpec::Serial, false)
        .telemetry(TelemetryConfig::default())
        .build()
        .solve_mvc(&g);
    let snap = serial.stats.telemetry.as_ref().unwrap();
    assert_eq!(
        snap.counters.get("exec.dispatches"),
        None,
        "serial flat passes must not cross the dispatch seam"
    );
}
