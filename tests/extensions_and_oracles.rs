//! The optional extensions (domination rule, matching lower bound) must
//! preserve exactness — and the Kőnig-theorem polynomial oracle lets us
//! check all solvers on bipartite instances far beyond brute force.

use parvc::core::brute::brute_force_mvc;
use parvc::core::{is_vertex_cover, Algorithm, Extensions, Solver};
use parvc::graph::{gen, matching, CsrGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (4u32..=13).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..36).prop_map(move |pairs| {
            let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
            CsrGraph::from_edges(n, &edges).expect("filtered edges are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn extensions_keep_all_algorithms_exact(g in arb_graph()) {
        let (opt, _) = brute_force_mvc(&g);
        for ext in [
            Extensions { domination_rule: true, ..Extensions::NONE },
            Extensions { matching_lower_bound: true, ..Extensions::NONE },
            Extensions::ALL,
        ] {
            for algorithm in [
                Algorithm::Sequential,
                Algorithm::StackOnly { start_depth: 4 },
                Algorithm::Hybrid,
            ] {
                let solver = Solver::builder()
                    .algorithm(algorithm)
                    .extensions(ext)
                    .grid_limit(Some(4))
                    .build();
                let r = solver.solve_mvc(&g);
                prop_assert_eq!(r.size, opt, "{} with {:?}", algorithm, ext);
                prop_assert!(is_vertex_cover(&g, &r.cover));
            }
        }
    }

    #[test]
    fn extensions_keep_pvc_exact(g in arb_graph()) {
        let (opt, _) = brute_force_mvc(&g);
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .extensions(Extensions::ALL)
            .grid_limit(Some(4))
            .build();
        if opt > 0 {
            prop_assert!(!solver.solve_pvc(&g, opt - 1).found());
        }
        prop_assert!(solver.solve_pvc(&g, opt).found());
    }
}

#[test]
fn extensions_never_explore_more_than_baseline_on_average() {
    // The extensions strictly strengthen pruning/reduction, so across a
    // batch of instances total explored nodes must not grow.
    let mut base_nodes = 0u64;
    let mut ext_nodes = 0u64;
    for seed in 0..6 {
        let g = gen::gnp(26, 0.25, seed + 70);
        let base = Solver::builder().algorithm(Algorithm::Sequential).build();
        let ext = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .extensions(Extensions::ALL)
            .build();
        let rb = base.solve_mvc(&g);
        let re = ext.solve_mvc(&g);
        assert_eq!(rb.size, re.size, "seed {seed}");
        base_nodes += rb.stats.tree_nodes;
        ext_nodes += re.stats.tree_nodes;
    }
    assert!(
        ext_nodes <= base_nodes,
        "extensions explored more nodes overall ({ext_nodes} > {base_nodes})"
    );
}

#[test]
fn konig_oracle_validates_solvers_on_large_bipartite_graphs() {
    // 300+ vertex bipartite instances: brute force is hopeless, Kőnig
    // is exact in polynomial time.
    for seed in 0..4 {
        let g = gen::bipartite_gnp(60, 90, 0.08, seed + 11);
        let oracle = matching::konig_cover(&g).expect("bipartite by construction");
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(8))
            .build();
        let r = solver.solve_mvc(&g);
        assert_eq!(
            r.size as usize,
            oracle.len(),
            "seed {seed}: solver disagrees with Kőnig's theorem"
        );
        assert!(is_vertex_cover(&g, &r.cover));
    }
}

#[test]
fn konig_oracle_validates_on_grids_and_forests() {
    // Structured bipartite families with known covers.
    let cases: Vec<CsrGraph> = vec![
        gen::grid2d(7, 9),
        gen::path(101),
        gen::star(64),
        gen::cycle(30),
    ];
    let solver = Solver::builder().algorithm(Algorithm::Sequential).build();
    for g in cases {
        let oracle = matching::konig_cover(&g).expect("bipartite families");
        assert_eq!(solver.solve_mvc(&g).size as usize, oracle.len());
    }
}

#[test]
fn matching_lower_bound_tightens_the_greedy_gap() {
    // On a disjoint union of edges (perfect matching graph), the
    // matching bound makes the root immediately tight: the solver
    // proves optimality after the root node.
    let edges: Vec<(u32, u32)> = (0..30).map(|i| (2 * i, 2 * i + 1)).collect();
    let g = CsrGraph::from_edges(60, &edges).unwrap();
    let solver = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .matching_lower_bound(true)
        .build();
    let r = solver.solve_mvc(&g);
    assert_eq!(r.size, 30);
}

#[test]
fn domination_solves_threshold_graphs_without_branching() {
    // In a complete split graph (clique + independent set, all cross
    // edges), clique vertices dominate the others; with domination on,
    // reduction alone should crack it.
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push((u, v)); // clique 0..6
        }
        for w in 6..14u32 {
            edges.push((u, w)); // cross edges
        }
    }
    let g = CsrGraph::from_edges(14, &edges).unwrap();
    let base = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g);
    let dom = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .domination_rule(true)
        .build()
        .solve_mvc(&g);
    assert_eq!(base.size, dom.size);
    assert_eq!(dom.size, 6, "the clique is the optimal cover");
    assert!(dom.stats.tree_nodes <= base.stats.tree_nodes);
}
