//! Kernelization safety: for **every** rule subset,
//! `lift(prep(G), optimal sub-covers)` must be a valid cover of `G`
//! whose size equals the brute-force optimum — i.e. every pipeline
//! stage is optimum-preserving, alone and in combination, across the
//! gnp/ba/grid/components generator corpus.

use parvc::core::brute::brute_force_mvc;
use parvc::core::{is_vertex_cover, Algorithm, Solver};
use parvc::graph::{gen, CsrGraph};
use parvc::prep::{preprocess, PrepConfig};
use proptest::prelude::*;

/// All 16 stage subsets: low-degree × crown × high-degree × split.
fn rule_subsets() -> Vec<PrepConfig> {
    (0..16u32)
        .map(|mask| PrepConfig {
            low_degree: mask & 1 != 0,
            crown: mask & 2 != 0,
            high_degree: mask & 4 != 0,
            split_components: mask & 8 != 0,
            ..PrepConfig::default()
        })
        .collect()
}

/// Solves each kernel component exactly (sequential engine, already
/// brute-force-validated elsewhere) and lifts.
fn solve_via_prep(g: &CsrGraph, cfg: &PrepConfig) -> Vec<u32> {
    let kernel = preprocess(g, cfg);
    let solver = Solver::builder().algorithm(Algorithm::Sequential).build();
    let subs: Vec<Vec<u32>> = kernel
        .components
        .iter()
        .map(|inst| solver.solve_mvc(&inst.graph).cover)
        .collect();
    kernel.lift(&subs)
}

/// A random instance from the generator corpus, small enough for the
/// brute-force oracle.
fn arb_corpus_graph() -> impl Strategy<Value = (&'static str, CsrGraph)> {
    (0u8..4, 0u64..1_000).prop_map(|(family, seed)| match family {
        0 => ("gnp", gen::gnp(12 + (seed % 4) as u32, 0.3, seed)),
        1 => ("ba", gen::barabasi_albert(14, 2, seed)),
        2 => (
            "grid",
            gen::grid2d(2 + (seed % 3) as u32, 3 + (seed / 7 % 2) as u32),
        ),
        _ => ("components", gen::sparse_components(15, 3, 0.5, seed)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lift_of_prep_is_an_optimal_cover_for_every_rule_subset(
        (family, g) in arb_corpus_graph()
    ) {
        let (opt, _) = brute_force_mvc(&g);
        for (i, cfg) in rule_subsets().iter().enumerate() {
            let cover = solve_via_prep(&g, cfg);
            prop_assert!(
                is_vertex_cover(&g, &cover),
                "{family} subset {i}: lift produced a non-cover"
            );
            prop_assert_eq!(
                cover.len() as u32,
                opt,
                "{} subset {}: lifted size differs from brute-force optimum",
                family, i
            );
        }
    }

    /// End-to-end: the solver façade with preprocessing on matches the
    /// brute-force optimum through every scheduling policy.
    #[test]
    fn preprocessed_policies_match_brute_force((family, g) in arb_corpus_graph()) {
        let (opt, _) = brute_force_mvc(&g);
        for algorithm in [
            Algorithm::Sequential,
            Algorithm::StackOnly { start_depth: 4 },
            Algorithm::Hybrid,
            Algorithm::WorkStealing,
        ] {
            let solver = Solver::builder()
                .algorithm(algorithm)
                .grid_limit(Some(4))
                .preprocess(PrepConfig::default())
                .build();
            let r = solver.solve_mvc(&g);
            prop_assert_eq!(r.size, opt, "{} with prep on {}", algorithm, family);
            prop_assert!(is_vertex_cover(&g, &r.cover));
        }
    }
}

#[test]
fn prep_stats_consistency_across_named_families() {
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("petersen", gen::petersen()),
        ("paper_example", gen::paper_example()),
        ("grid_4x5", gen::grid2d(4, 5)),
        ("ba_tree", gen::barabasi_albert(400, 1, 3)),
        ("ws", gen::watts_strogatz(60, 4, 0.2, 3)),
        ("components", gen::sparse_components(48, 6, 0.4, 3)),
        ("pace", gen::pace_like(80, 4, 3)),
        ("bipartite", gen::bipartite_gnp(15, 20, 0.2, 3)),
    ];
    for (name, g) in cases {
        let kernel = preprocess(&g, &PrepConfig::default());
        let s = &kernel.stats;
        assert_eq!(
            s.forced + s.excluded + s.kernel_vertices,
            s.original_vertices,
            "{name}: stats must account for every vertex"
        );
        assert_eq!(
            s.kernel_vertices,
            kernel.kernel_vertices(),
            "{name}: stats vs component totals"
        );
        // The lifted forced set alone covers everything outside the
        // kernel components.
        let cover = solve_via_prep(&g, &PrepConfig::default());
        assert!(is_vertex_cover(&g, &cover), "{name}");
    }
}

#[test]
fn trees_are_fully_kernelized() {
    let g = gen::barabasi_albert(5_000, 1, 11);
    let kernel = preprocess(&g, &PrepConfig::default());
    assert!(kernel.is_fully_reduced(), "a tree must kernelize away");
    assert!(kernel.stats.elimination() >= 0.9);
    let cover = kernel.lift(&[]);
    assert!(is_vertex_cover(&g, &cover));
}

/// The Scale::Massive acceptance scenario in-process (the full ≥100k
/// instance runs in the `massive` bench binary; this keeps the shape
/// under test at a tier-1-friendly size): preprocessing + work-stealing
/// proves the optimum on a component-shattered sparse instance.
///
/// No unpreprocessed reference here — solving hundreds of disjoint
/// hard components through one branch-and-bound tree is exactly the
/// multiplicative blowup the decomposition avoids, so the reference is
/// the preprocessed *sequential* solve (the per-component engine is
/// brute-force-validated by the properties above).
#[test]
fn component_instance_prep_agrees_with_reference() {
    let g = gen::sparse_components(4_000, 200, 0.3, 9);
    let prep = Solver::builder()
        .algorithm(Algorithm::WorkStealing)
        .grid_limit(Some(8))
        .preprocess(PrepConfig::default())
        .build()
        .solve_mvc(&g);
    assert!(is_vertex_cover(&g, &prep.cover));
    assert!(!prep.stats.timed_out);
    let reference = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .preprocess(PrepConfig::default())
        .build()
        .solve_mvc(&g);
    assert_eq!(prep.size, reference.size);
    let stats = prep.stats.prep.expect("prep stats recorded");
    assert!(stats.components > 100, "the instance must shatter");

    // A small sibling instance keeps an unpreprocessed cross-check.
    let small = gen::sparse_components(120, 10, 0.4, 9);
    let plain = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&small);
    let kerned = Solver::builder()
        .algorithm(Algorithm::WorkStealing)
        .grid_limit(Some(4))
        .preprocess(PrepConfig::default())
        .build()
        .solve_mvc(&small);
    assert_eq!(plain.size, kerned.size);
}
