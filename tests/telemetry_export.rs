//! Exporter well-formedness: the Chrome trace and metrics snapshot
//! emitted by `parvc-obs` are valid documents, not just plausible
//! strings.
//!
//! Both exporters hand-roll their JSON (the workspace is offline and
//! serde-free), so the checks parse everything back with
//! `parvc_bench::json` — the same reader the bench-smoke regression
//! gate trusts — and then assert the structural invariants Perfetto
//! and chrome://tracing rely on: complete events carry `ts`/`dur`,
//! timestamps are monotone per `(pid, tid)` thread, and spans on a
//! thread nest properly. A hand-built snapshot is additionally pinned
//! byte-for-byte against a committed fixture so format drift is a
//! reviewed diff, not an accident.

use parvc::core::{Algorithm, Solver, TelemetryConfig};
use parvc::graph::gen;
use parvc::obs::{Histogram, Lane, SpanRecord, TelemetrySnapshot};
use parvc::prep::PrepConfig;
use parvc_bench::json::{self, Value};

/// A snapshot from a real preprocessed solve (components family, so
/// the prep → component → engine taxonomy all fires).
fn solved_snapshot() -> TelemetrySnapshot {
    let g = gen::sparse_components(48, 8, 0.5, 3);
    let r = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(1))
        .component_branching(true)
        .preprocess(PrepConfig::default())
        .telemetry(TelemetryConfig::default())
        .build()
        .solve_mvc(&g);
    r.stats.telemetry.expect("telemetry was on")
}

/// The non-metadata trace events, as `(pid, tid, ts, dur, ph)`.
fn events(trace: &Value) -> Vec<(u64, u64, u64, u64, String)> {
    trace
        .get("traceEvents")
        .and_then(Value::arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::str) != Some("M"))
        .map(|e| {
            (
                e.get("pid").and_then(Value::num).expect("pid"),
                e.get("tid").and_then(Value::num).expect("tid"),
                e.get("ts").and_then(Value::num).expect("ts"),
                e.get("dur").and_then(Value::num).unwrap_or(0),
                e.get("ph").and_then(Value::str).expect("ph").to_string(),
            )
        })
        .collect()
}

#[test]
fn chrome_trace_parses_and_is_track_monotone() {
    let snap = solved_snapshot();
    let trace = json::parse(&snap.chrome_trace()).expect("exporter emits parseable JSON");
    assert_eq!(
        trace.get("displayTimeUnit").and_then(Value::str),
        Some("ms")
    );
    let events = events(&trace);
    assert!(!events.is_empty(), "a preprocessed solve records spans");
    // Timestamps monotone per (pid, tid): the exporter sorts per
    // track, so any regression here is a sorting bug.
    let mut last: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
    for (pid, tid, ts, _, _) in &events {
        let prev = last.entry((*pid, *tid)).or_insert(0);
        assert!(ts >= prev, "ts regressed on track ({pid},{tid})");
        *prev = *ts;
    }
    // Complete events on a thread nest: a span starting inside an
    // open span must also end inside it (exact in µs because children
    // finish before their parents by call order).
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<u64>> = Default::default();
    for (pid, tid, ts, dur, ph) in &events {
        if ph != "X" {
            continue;
        }
        let stack = stacks.entry((*pid, *tid)).or_default();
        while stack.last().is_some_and(|&end| end <= *ts) {
            stack.pop();
        }
        if let Some(&end) = stack.last() {
            assert!(
                ts + dur <= end,
                "span [{ts}, {}] overflows its enclosing span (ends {end}) on ({pid},{tid})",
                ts + dur
            );
        }
        stack.push(ts + dur);
    }
    // Both lanes present: wall-clock (pid 0) and model-cycle (pid 1).
    assert!(events.iter().any(|e| e.0 == 0), "wall lane missing");
    assert!(events.iter().any(|e| e.0 == 1), "model lane missing");
}

#[test]
fn solve_taxonomy_covers_at_least_four_categories() {
    let snap = solved_snapshot();
    let cats = snap.span_categories();
    assert!(
        cats.len() >= 4,
        "expected >= 4 span categories, got {cats:?}"
    );
    assert!(snap.has_model_lane());
}

#[test]
fn metrics_snapshot_round_trips_through_bench_json() {
    let snap = solved_snapshot();
    let text = snap.metrics_json();
    let v = json::parse(&text).expect("metrics JSON parses");
    // Re-serializing the parsed value and re-parsing reaches a fixed
    // point — the exporter stays inside the bench reader's subset.
    let v2 = json::parse(&v.to_pretty()).expect("pretty form re-parses");
    assert_eq!(v, v2);
    // The flat fields survive the trip.
    assert_eq!(
        v.get("counters")
            .and_then(|c| c.get("engine.nodes"))
            .and_then(Value::num),
        snap.counters.get("engine.nodes").copied()
    );
    assert_eq!(
        v.get("spans").and_then(Value::num),
        Some(snap.spans.len() as u64)
    );
    // The text table renders every metric name the JSON carries.
    let table = snap.metrics_table();
    for name in snap.counters.keys().chain(snap.gauges.keys()) {
        assert!(table.contains(name), "table is missing {name}");
    }
}

/// A deterministic snapshot with every record shape the exporter
/// handles: wall + model lanes, instants, and all three metric kinds.
fn fixture_snapshot() -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::default();
    snap.push_spans([
        SpanRecord {
            cat: "prep",
            name: "preprocess",
            track: 0,
            lane: Lane::Wall,
            start_us: 10,
            dur_us: 120,
            arg: 30,
            instant: false,
        },
        SpanRecord {
            cat: "prep",
            name: "degree-0/1/2",
            track: 0,
            lane: Lane::Wall,
            start_us: 12,
            dur_us: 40,
            arg: 7,
            instant: false,
        },
        SpanRecord {
            cat: "engine",
            name: "block",
            track: 1,
            lane: Lane::Wall,
            start_us: 140,
            dur_us: 60,
            arg: 5,
            instant: false,
        },
        SpanRecord {
            cat: "steal",
            name: "steal",
            track: 1,
            lane: Lane::Wall,
            start_us: 150,
            dur_us: 0,
            arg: 2,
            instant: true,
        },
        SpanRecord {
            cat: "model",
            name: "FindMaxDegree",
            track: 0,
            lane: Lane::Model,
            start_us: 0,
            dur_us: 48,
            arg: 0,
            instant: false,
        },
    ]);
    snap.dropped_spans = 3;
    snap.counters.insert("engine.nodes", 42);
    snap.counters.insert("steal.steals", 1);
    snap.gauges.insert("prep.rounds", 2);
    let mut h = Histogram::default();
    for v in [1, 17, 900] {
        h.record(v);
    }
    snap.histograms.insert("prep.component_size", h);
    snap
}

/// `tests/fixtures/telemetry_chrome_trace.json` is the committed
/// output of the exporter on [`fixture_snapshot`]. If this fails, the
/// trace format changed — regenerate with
/// `cargo test --test telemetry_export regenerate_fixture -- --ignored`
/// and review the diff.
#[test]
fn chrome_trace_fixture_is_current() {
    let committed = include_str!("fixtures/telemetry_chrome_trace.json");
    assert_eq!(
        committed,
        fixture_snapshot().chrome_trace(),
        "trace format drifted — regenerate the fixture and review the diff"
    );
}

#[test]
fn metrics_fixture_is_current() {
    let committed = include_str!("fixtures/telemetry_metrics.json");
    assert_eq!(
        committed,
        fixture_snapshot().metrics_json(),
        "metrics format drifted — regenerate the fixture and review the diff"
    );
}

/// Regenerates both fixtures in place (run from the repo root):
/// `cargo test --test telemetry_export regenerate_fixture -- --ignored`
#[test]
#[ignore]
fn regenerate_fixture() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(
        format!("{dir}/telemetry_chrome_trace.json"),
        fixture_snapshot().chrome_trace(),
    )
    .unwrap();
    std::fs::write(
        format!("{dir}/telemetry_metrics.json"),
        fixture_snapshot().metrics_json(),
    )
    .unwrap();
}
