//! Heavy concurrency stress for the worklist substrate and failure
//! injection around its capacity limits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parvc::core::{is_vertex_cover, Algorithm, Solver};
use parvc::graph::gen;
use parvc::worklist::{BrokerQueue, PopOutcome, Worklist};

/// Exhaustive tree drain with many workers and a worklist much smaller
/// than the tree: every leaf must be counted exactly once, every run.
#[test]
fn exact_leaf_count_under_tiny_worklist() {
    for run in 0..5 {
        const DEPTH: u32 = 12;
        let wl = Arc::new(Worklist::<u32>::with_capacity(8)); // tiny!
        wl.seed(DEPTH);
        let leaves = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let wl = Arc::clone(&wl);
                let leaves = Arc::clone(&leaves);
                s.spawn(move || {
                    let mut h = wl.handle();
                    let mut local = Vec::new();
                    loop {
                        let node = match local.pop() {
                            Some(n) => n,
                            None => match h.pop() {
                                PopOutcome::Item(n) => n,
                                PopOutcome::Done => break,
                            },
                        };
                        if node == 0 {
                            leaves.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        // Donate one child when possible; bounced
                        // donations must fall back to the local stack.
                        match h.add(node - 1) {
                            Ok(()) => {}
                            Err(back) => local.push(back),
                        }
                        local.push(node - 1);
                    }
                });
            }
        });
        assert_eq!(
            leaves.load(Ordering::Relaxed),
            1 << DEPTH,
            "run {run} lost/duplicated work"
        );
        assert_eq!(wl.len_hint(), 0, "run {run} left entries behind");
    }
}

/// The broker queue under rotating producer/consumer roles: the sum of
/// everything popped must equal the sum of everything pushed.
#[test]
fn broker_checksum_under_role_rotation() {
    let q = Arc::new(BrokerQueue::<u64>::with_capacity(32));
    let pushed = Arc::new(AtomicU64::new(0));
    let popped = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            let pushed = Arc::clone(&pushed);
            let popped = Arc::clone(&popped);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    if (i + t) % 2 == 0 {
                        let val = t * 1_000_000 + i;
                        if q.try_push(val).is_ok() {
                            pushed.fetch_add(val, Ordering::Relaxed);
                        }
                    } else if let Some(v) = q.try_pop() {
                        popped.fetch_add(v, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // Drain what's left.
    while let Some(v) = q.try_pop() {
        popped.fetch_add(v, Ordering::Relaxed);
    }
    assert_eq!(
        pushed.load(Ordering::Relaxed),
        popped.load(Ordering::Relaxed)
    );
}

/// A Hybrid solve with a pathologically tiny worklist must still be
/// correct: donations bounce to local stacks instead of losing work.
#[test]
fn hybrid_correct_with_tiny_worklist() {
    let g = gen::p_hat_complement(50, 2, 41);
    let expect = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g);
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .worklist_capacity(2) // queue rounds up to 2 — the minimum
        .threshold_frac(1.0) // try to donate on every branch
        .grid_limit(Some(8))
        .build();
    let r = solver.solve_mvc(&g);
    assert_eq!(r.size, expect.size);
    assert!(is_vertex_cover(&g, &r.cover));
    // Bounces are race-dependent (the queue must fill between the
    // threshold check and the add), so only the accounting identity is
    // asserted: donated entries all get consumed, bounced ones do not.
    let donated: u64 = r.stats.report.blocks.iter().map(|b| b.nodes_donated).sum();
    let consumed: u64 = r
        .stats
        .report
        .blocks
        .iter()
        .map(|b| b.nodes_from_worklist)
        .sum();
    assert_eq!(
        consumed,
        donated + 1,
        "donations + seed must be consumed exactly once"
    );
}

/// Repeated parallel PVC at k = min−1 (exhaustive, no solution) is the
/// hardest termination-detection case: all blocks must agree the
/// search is over with no solution, every time.
#[test]
fn pvc_exhaustive_termination_is_stable() {
    let g = gen::p_hat_complement(40, 3, 13);
    let min = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g)
        .size;
    for run in 0..5 {
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(8))
            .build();
        let r = solver.solve_pvc(&g, min - 1);
        assert!(!r.found(), "run {run}: found an impossible cover");
        assert!(!r.stats.timed_out, "run {run}: spurious timeout");
    }
}

/// PVC early exit: once any block finds a cover, all blocks drain out
/// promptly even with a large grid.
#[test]
fn pvc_early_exit_drains_quickly() {
    let g = gen::p_hat_complement(60, 1, 19);
    let min = Solver::builder()
        .algorithm(Algorithm::Sequential)
        .build()
        .solve_mvc(&g)
        .size;
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(16))
        .build();
    let start = std::time::Instant::now();
    let r = solver.solve_pvc(&g, min + 2);
    assert!(r.found());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(20),
        "early exit too slow: {:?}",
        start.elapsed()
    );
}
