//! `parvc` — command-line driver for the vertex-cover suite.
//!
//! ```text
//! parvc solve   [--policy seq|stack|hybrid|steal] [--threads <n>]
//!               [--k <k>] [--deadline <s>] [--extensions]
//!               [--prep] [--prep-rules d012,crown,highdeg,split]
//!               [--format dimacs|edgelist] <instance>
//! parvc prep    [--rules d012,crown,highdeg,split] [--out <file>]
//!               [--format dimacs|edgelist] <instance>
//! parvc generate <family> <args...> [--seed <s>] [--out <file>]
//! parvc analyze [--format dimacs|edgelist] <instance>
//! parvc demo
//! ```
//!
//! `<instance>` is either a real instance **file** (DIMACS `.dimacs` /
//! `.clq` / `.col`, or a whitespace edge list — downloaded benchmarks
//! drop straight in) or a generator **spec**
//! `family:arg1:arg2[...][@seed]`, e.g. `gnp:200:0.05@7`,
//! `ba:150000:1`, `components:120000:6000:0.3`.
//!
//! `--policy` selects the scheduling policy the branch-and-reduce
//! engine runs (`--algorithm` is accepted as an alias); `--threads`
//! caps the number of thread blocks (`--blocks` is an alias).
//! `--prep` runs the `parvc-prep` kernelization + component
//! decomposition before the search; `parvc prep` reports what that
//! pipeline does to an instance (and can write the kernel as DIMACS).
//!
//! Families for `generate` and specs: `phat n class`, `gnp n p`,
//! `ba n m`, `ws n k beta`, `geometric n radius`,
//! `pace n communities`, `components n parts p`,
//! `bipartite left right p`, `grid w h`.

use std::io::BufReader;
use std::time::Duration;

use parvc::graph::{analysis, gen, io, kcore, matching, ops};
use parvc::prelude::*;
use parvc::prep::{preprocess, PrepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("prep") => cmd_prep(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!(
                "usage: parvc <solve|prep|generate|analyze|demo> [options]\n\
                 see the crate docs (src/bin/parvc.rs) for details"
            );
            std::process::exit(2);
        }
    }
}

struct Flags {
    positional: Vec<String>,
    options: std::collections::BTreeMap<String, String>,
    switches: std::collections::BTreeSet<String>,
}

fn parse_flags(args: &[String], value_flags: &[&str]) -> Flags {
    let mut flags = Flags {
        positional: Vec::new(),
        options: Default::default(),
        switches: Default::default(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if value_flags.contains(&name) {
                let v = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--{name} requires a value");
                        std::process::exit(2);
                    })
                    .clone();
                flags.options.insert(name.to_string(), v);
            } else {
                flags.switches.insert(name.to_string());
            }
        } else {
            flags.positional.push(a.clone());
        }
    }
    flags
}

/// Builds the graph a positional `<instance>` argument names: a
/// generator spec (`family:args[@seed]`) when the first `:`-segment is
/// a known family, otherwise a file in `--format` (or inferred from
/// the extension).
fn load_instance(spec: &str, format: Option<&str>) -> CsrGraph {
    match parse_gen_spec(spec) {
        Some(g) => g,
        None => load_graph(spec, format),
    }
}

/// Parses `family:arg1:arg2[...][@seed]` into a generated graph, or
/// `None` if the leading segment is not a generator family — a file
/// path may legitimately contain `:` or `@`, so nothing is rejected
/// before the family name matches.
fn parse_gen_spec(spec: &str) -> Option<CsrGraph> {
    const FAMILIES: [&str; 9] = [
        "phat",
        "gnp",
        "ba",
        "ws",
        "geometric",
        "pace",
        "components",
        "bipartite",
        "grid",
    ];
    let (family, rest) = spec.split_once(':')?;
    if !FAMILIES.contains(&family) {
        return None;
    }
    let (body, seed) = match rest.split_once('@') {
        Some((body, s)) => (
            body,
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad seed '{s}' in spec '{spec}'");
                std::process::exit(2);
            }),
        ),
        None => (rest, 42u64),
    };
    let parts = body.split(':');
    let args: Vec<f64> = parts
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric argument '{t}' in spec '{spec}'");
                std::process::exit(2);
            })
        })
        .collect();
    let arg = |i: usize| -> f64 {
        *args.get(i).unwrap_or_else(|| {
            eprintln!("spec '{spec}': family {family} needs more arguments");
            std::process::exit(2);
        })
    };
    Some(generate_family(family, seed, &arg))
}

/// The shared family dispatch used by `generate` and the spec syntax.
/// `arg(i)` yields the i-th numeric argument after the family name.
fn generate_family(family: &str, seed: u64, arg: &dyn Fn(usize) -> f64) -> CsrGraph {
    match family {
        "phat" => gen::p_hat_complement(arg(0) as u32, arg(1) as u8, seed),
        "gnp" => gen::gnp(arg(0) as u32, arg(1), seed),
        "ba" => gen::barabasi_albert(arg(0) as u32, arg(1) as u32, seed),
        "ws" => gen::watts_strogatz(arg(0) as u32, arg(1) as u32, arg(2), seed),
        "geometric" => gen::random_geometric(arg(0) as u32, arg(1), seed),
        "pace" => gen::pace_like(arg(0) as u32, arg(1) as u32, seed),
        "components" => gen::sparse_components(arg(0) as u32, arg(1) as u32, arg(2), seed),
        "bipartite" => gen::bipartite_gnp(arg(0) as u32, arg(1) as u32, arg(2), seed),
        "grid" => gen::grid2d(arg(0) as u32, arg(1) as u32),
        other => {
            eprintln!("unknown family '{other}'");
            std::process::exit(2);
        }
    }
}

fn load_graph(path: &str, format: Option<&str>) -> CsrGraph {
    let format = format.map(str::to_string).unwrap_or_else(|| {
        if path.ends_with(".dimacs") || path.ends_with(".clq") || path.ends_with(".col") {
            "dimacs".into()
        } else {
            "edgelist".into()
        }
    });
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let reader = BufReader::new(file);
    let result = match format.as_str() {
        "dimacs" => io::parse_dimacs(reader),
        "edgelist" => io::parse_edge_list(reader, None),
        other => {
            eprintln!("unknown format '{other}' (dimacs|edgelist)");
            std::process::exit(2);
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

/// Parses a `d012,crown,highdeg,split` stage list into a [`PrepConfig`]
/// (absent flag = every stage on).
fn parse_prep_rules(list: Option<&String>) -> PrepConfig {
    let Some(list) = list else {
        return PrepConfig::default();
    };
    let mut cfg = PrepConfig {
        low_degree: false,
        crown: false,
        high_degree: false,
        split_components: false,
        ..PrepConfig::default()
    };
    for rule in list.split(',').filter(|r| !r.is_empty()) {
        match rule {
            "d012" => cfg.low_degree = true,
            "crown" => cfg.crown = true,
            "highdeg" => cfg.high_degree = true,
            "split" => cfg.split_components = true,
            other => {
                eprintln!("unknown prep rule '{other}' (d012|crown|highdeg|split)");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn cmd_solve(args: &[String]) {
    let flags = parse_flags(
        args,
        &[
            "policy",
            "algorithm",
            "k",
            "deadline",
            "format",
            "blocks",
            "threads",
            "prep-rules",
        ],
    );
    let Some(path) = flags.positional.first() else {
        eprintln!("solve: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    // --policy names the engine's SchedulePolicy; --algorithm is the
    // historical alias.
    let policy = flags
        .options
        .get("policy")
        .or_else(|| flags.options.get("algorithm"));
    let algorithm = match policy.map(String::as_str) {
        None | Some("hybrid") => Algorithm::Hybrid,
        Some("seq") | Some("sequential") => Algorithm::Sequential,
        Some("stack") | Some("stackonly") => Algorithm::StackOnly { start_depth: 8 },
        Some("steal") | Some("worksteal") | Some("workstealing") => Algorithm::WorkStealing,
        Some(other) => {
            eprintln!("unknown policy '{other}' (seq|stack|hybrid|steal)");
            std::process::exit(2);
        }
    };
    let mut builder = Solver::builder().algorithm(algorithm);
    if let Some(d) = flags.options.get("deadline") {
        builder = builder.deadline(Some(Duration::from_secs_f64(
            d.parse().expect("--deadline takes seconds"),
        )));
    }
    // --threads caps the resident thread blocks (one OS thread each);
    // --blocks is the historical alias.
    if let Some(b) = flags
        .options
        .get("threads")
        .or_else(|| flags.options.get("blocks"))
    {
        builder = builder.grid_limit(Some(b.parse().expect("--threads takes a count")));
    }
    if flags.switches.contains("extensions") {
        builder = builder.extensions(parvc::core::Extensions::ALL);
    }
    if flags.switches.contains("prep") || flags.options.contains_key("prep-rules") {
        builder = builder.preprocess(parse_prep_rules(flags.options.get("prep-rules")));
    }
    let solver = builder.build();

    eprintln!("instance: |V|={}, |E|={}", g.num_vertices(), g.num_edges());
    match flags.options.get("k") {
        Some(k) => {
            let k: u32 = k.parse().expect("--k takes an integer");
            let r = solver.solve_pvc(&g, k);
            match &r.cover {
                Some(cover) => {
                    assert!(is_vertex_cover(&g, cover));
                    println!("yes: cover of size {} <= {k}", cover.len());
                    println!("{:?}", cover);
                }
                None if r.stats.timed_out => println!("unknown: budget exhausted"),
                None => println!("no: no vertex cover of size <= {k} exists"),
            }
            eprintln!(
                "{} tree nodes, {:.3}s",
                r.stats.tree_nodes,
                r.stats.seconds()
            );
        }
        None => {
            let r = solver.solve_mvc(&g);
            assert!(is_vertex_cover(&g, &r.cover));
            if r.stats.timed_out {
                println!("best cover found (NOT proven minimum): {}", r.size);
            } else {
                println!("minimum vertex cover: {}", r.size);
            }
            println!("{:?}", r.cover);
            eprintln!(
                "{} tree nodes, {:.3}s (greedy bound was {})",
                r.stats.tree_nodes,
                r.stats.seconds(),
                r.stats.greedy_size
            );
            if let Some(prep) = &r.stats.prep {
                eprintln!(
                    "prep: {:.1}% of vertices eliminated, {} forced, kernel |V|={} in {} components",
                    prep.elimination() * 100.0,
                    prep.forced,
                    prep.kernel_vertices,
                    prep.components
                );
            }
        }
    }
}

fn cmd_prep(args: &[String]) {
    let flags = parse_flags(args, &["format", "out", "rules"]);
    let Some(path) = flags.positional.first() else {
        eprintln!("prep: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let cfg = parse_prep_rules(flags.options.get("rules"));
    let start = std::time::Instant::now();
    let kernel = preprocess(&g, &cfg);
    let elapsed = start.elapsed();
    let s = &kernel.stats;

    println!(
        "original: |V|={} |E|={}",
        s.original_vertices, s.original_edges
    );
    println!(
        "{:<16} {:>10} {:>10} {:>7}",
        "rule", "covered", "excluded", "passes"
    );
    for r in &s.rules {
        println!(
            "{:<16} {:>10} {:>10} {:>7}",
            r.name, r.covered, r.excluded, r.passes
        );
    }
    println!(
        "kernel:   |V|={} |E|={} in {} components (largest {})",
        s.kernel_vertices, s.kernel_edges, s.components, s.largest_component
    );
    println!(
        "eliminated {:.1}% of vertices ({} forced into the cover, {} avoidable) \
         in {} rounds, {:.3}s",
        s.elimination() * 100.0,
        s.forced,
        s.original_vertices - s.kernel_vertices - s.forced,
        s.rounds,
        elapsed.as_secs_f64()
    );
    if kernel.is_fully_reduced() {
        let cover = kernel.lift(&[]);
        assert!(is_vertex_cover(&g, &cover));
        println!(
            "fully reduced: preprocessing alone proves the minimum vertex cover is {}",
            cover.len()
        );
    }
    if let Some(out) = flags.options.get("out") {
        let file = std::fs::File::create(out).expect("cannot create output file");
        io::write_dimacs(
            &kernel.kernel_graph(),
            "edge",
            std::io::BufWriter::new(file),
        )
        .expect("write failed");
        eprintln!("wrote the kernel (disjoint component union) to {out}");
    }
}

fn cmd_generate(args: &[String]) {
    let flags = parse_flags(args, &["seed", "out"]);
    let seed: u64 = flags
        .options
        .get("seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let p = &flags.positional;
    let Some(family) = p.first() else {
        eprintln!("generate: missing family");
        std::process::exit(2);
    };
    let get = |i: usize| -> f64 {
        p.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("generate: missing argument {i} for family {family}");
                std::process::exit(2);
            })
            .parse()
            .expect("numeric argument")
    };
    let g = generate_family(family, seed, &get);
    match flags.options.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).expect("cannot create output file");
            io::write_dimacs(&g, "edge", std::io::BufWriter::new(file)).expect("write failed");
            eprintln!(
                "wrote |V|={}, |E|={} to {path}",
                g.num_vertices(),
                g.num_edges()
            );
        }
        None => {
            io::write_dimacs(&g, "edge", std::io::stdout().lock()).expect("write failed");
        }
    }
}

fn cmd_analyze(args: &[String]) {
    let flags = parse_flags(args, &["format"]);
    let Some(path) = flags.positional.first() else {
        eprintln!("analyze: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let stats = analysis::degree_stats(&g);
    let (_, components) = ops::connected_components(&g);
    println!("vertices:        {}", g.num_vertices());
    println!("edges:           {}", g.num_edges());
    println!("|E|/|V|:         {:.3}", analysis::edge_vertex_ratio(&g));
    println!("degree class:    {}", analysis::degree_class(&g));
    println!(
        "degrees:         min {} / mean {:.2} / max {} / stddev {:.2}",
        stats.min, stats.mean, stats.max, stats.std_dev
    );
    println!("components:      {components}");
    println!("triangles:       {}", analysis::triangle_count(&g));
    let core = kcore::core_decomposition(&g);
    let two_core = core.core_number.iter().filter(|&&c| c >= 2).count();
    println!(
        "degeneracy:      {} ({} of {} vertices survive the reduction-resistant 2-core)",
        core.degeneracy,
        two_core,
        g.num_vertices()
    );
    match matching::bipartition(&g) {
        Some(_) => {
            let cover = matching::konig_cover(&g).expect("bipartite");
            println!("bipartite:       yes — exact MVC by Kőnig: {}", cover.len());
        }
        None => {
            let lb = matching::greedy_maximal_matching(&g).len();
            let (ub, _) = parvc::core::greedy::greedy_mvc(&g);
            println!("bipartite:       no — MVC within [{lb}, {ub}] (matching LB, greedy UB)");
        }
    }
}

fn cmd_demo() {
    let g = gen::paper_example();
    println!(
        "the paper's Figure 2 graph ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(4))
        .build();
    let r = solver.solve_mvc(&g);
    println!("minimum vertex cover: {} = {:?}", r.size, r.cover);
}
