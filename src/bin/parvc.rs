//! `parvc` — command-line driver for the vertex-cover suite.
//!
//! Run `parvc help` for the full flag reference (the same text this
//! binary renders into `docs/cli.md` with `parvc help --markdown`).
//!
//! ```text
//! parvc solve   [--policy seq|stack|hybrid|steal|batch|compsteal]
//!               [--threads <n>] [--exec serial|pooled[:threads]]
//!               [--k <k>] [--deadline <s>]
//!               [--extensions] [--component-branching[=<min-live>]]
//!               [--split-bound lp|matching] [--split-backend uf|bfs]
//!               [--prep] [--prep-rules d012,crown,highdeg,split]
//!               [--weighted] [--seed greedy|approx]
//!               [--format dimacs|edgelist] <instance>
//! parvc resolve --edits <script-file|gen:<ops>[:<frac>][@seed]>
//!               [--policy ...] [--threads <n>] [--exec ...]
//!               [--deadline <s>] [--prep] [--weighted]
//!               [--format dimacs|edgelist] <instance>
//! parvc approx  [--weighted] [--exec serial|pooled[:threads]]
//!               [--format dimacs|edgelist] <instance>
//! parvc prep    [--rules d012,crown,highdeg,split] [--weighted]
//!               [--out <file>] [--format dimacs|edgelist] <instance>
//! parvc generate <family> <args...> [--seed <s>]
//!               [--weights uniform[:max]|unit|degree] [--out <file>]
//! parvc analyze [--format dimacs|edgelist] <instance>
//! parvc demo
//! parvc help    [--markdown]
//! ```
//!
//! `<instance>` is either a real instance **file** (DIMACS `.dimacs` /
//! `.clq` / `.col`, or a whitespace edge list — downloaded benchmarks
//! drop straight in) or a generator **spec**
//! `family:arg1:arg2[...][@seed][:w=<weights>]`, e.g. `gnp:200:0.05@7`,
//! `ba:150000:1`, `components:120000:6000:0.3`,
//! `gnp:200:0.05@7:w=uniform` (vertex-weighted).
//!
//! Families for `generate` and specs: `phat n class`, `gnp n p`,
//! `ba n m`, `ws n k beta`, `geometric n radius`,
//! `pace n communities`, `components n parts p`,
//! `bipartite left right p`, `grid w h`.

use std::io::BufReader;
use std::time::Duration;

use parvc::core::split::{SplitBackend, SplitBound, SplitParams};
use parvc::graph::{analysis, gen, io, kcore, matching, ops};
use parvc::prelude::*;
use parvc::prep::{preprocess, PrepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    if args.iter().any(|a| a == "--help") {
        match cmd.and_then(find_command) {
            Some(c) => print!("{}", c.render_text()),
            None => print!("{}", help_text()),
        }
        return;
    }
    match cmd {
        Some("solve") => cmd_solve(&args[1..]),
        Some("resolve") => cmd_resolve(&args[1..]),
        Some("approx") => cmd_approx(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("prep") => cmd_prep(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("help") => {
            if args[1..].iter().any(|a| a == "--markdown") {
                print!("{}", help_markdown());
            } else {
                print!("{}", help_text());
            }
        }
        _ => {
            eprint!("{}", help_text());
            std::process::exit(2);
        }
    }
}

/// One flag's reference entry.
struct FlagHelp {
    /// The flag with its value placeholder, e.g. `--deadline <secs>`.
    flag: &'static str,
    /// One-line description.
    desc: &'static str,
}

/// One subcommand's reference entry — the single source the terminal
/// help AND `docs/cli.md` are rendered from, so they cannot drift.
struct CmdHelp {
    name: &'static str,
    usage: &'static str,
    summary: &'static str,
    flags: &'static [FlagHelp],
    example: &'static str,
}

const COMMANDS: &[CmdHelp] = &[
    CmdHelp {
        name: "solve",
        usage: "parvc solve [options] <instance>",
        summary: "Solve minimum vertex cover (or, with --k, parameterized \
                  vertex cover) on a file or generator-spec instance.",
        flags: &[
            FlagHelp {
                flag: "--policy <seq|stack|hybrid|steal|batch|compsteal>",
                desc: "Scheduling policy driving the branch-and-reduce engine \
                       (default hybrid; --algorithm is an alias). `batch` \
                       donates sub-trees to the worklist in amortized batches; \
                       `compsteal` donates whole components of disconnected \
                       residuals to the steal pool and implies \
                       --component-branching.",
            },
            FlagHelp {
                flag: "--threads <n>",
                desc: "Cap on resident thread blocks, one OS thread each \
                       (--blocks is an alias).",
            },
            FlagHelp {
                flag: "--exec <serial|pooled[:threads]>",
                desc: "How each block's intra-block flat passes execute: inline \
                       on the block's own thread (default) or chunked across a \
                       shared worker pool (`pooled:<n>` pins the pool size; \
                       plain `pooled` sizes it from available parallelism). \
                       Purely a wall-clock knob — results, tree shape, and \
                       model-cycle counters are identical under either.",
            },
            FlagHelp {
                flag: "--k <k>",
                desc: "Solve PVC: find any cover of size <= k instead of the minimum \
                       (incompatible with --weighted).",
            },
            FlagHelp {
                flag: "--weighted",
                desc: "Minimize the cover's total vertex weight (weighted MVC) instead \
                       of its size, using the instance's weight channel (DIMACS n-lines \
                       or a spec's :w= suffix; unweighted inputs count every vertex \
                       as weight 1). Works under every policy; prep runs only \
                       weight-sound rules.",
            },
            FlagHelp {
                flag: "--seed <greedy|approx>",
                desc: "Initial incumbent: the reduction-driven greedy sweep \
                       (default) or the provably 2x-bounded approximate tier — \
                       round-compressed maximal matching, or the primal-dual \
                       cover under --weighted — which keeps whichever of the \
                       bounded and greedy covers is better, so it never starts \
                       the search from a worse bound.",
            },
            FlagHelp {
                flag: "--deadline <secs>",
                desc: "Wall-clock budget; on expiry MVC reports best-so-far, \
                       PVC reports 'unknown'.",
            },
            FlagHelp {
                flag: "--component-branching[=<min-live>]",
                desc: "Re-split the search when reductions disconnect the \
                       residual graph; optional value = live-vertex count \
                       below which the connectivity check is skipped \
                       (default 8).",
            },
            FlagHelp {
                flag: "--split-bound <lp|matching>",
                desc: "Lower bound budgeting the per-component sub-searches of \
                       a split: the LP/Nemhauser-Trotter relaxation (default; \
                       weighted solves fall back to the weight-sound matching \
                       bound) or a greedy maximal matching. Implies \
                       --component-branching.",
            },
            FlagHelp {
                flag: "--split-backend <uf|bfs>",
                desc: "Connectivity backend for the split check: the \
                       incremental union-find tracker (default) or the \
                       from-scratch BFS baseline it is benchmarked against. \
                       Implies --component-branching.",
            },
            FlagHelp {
                flag: "--extensions",
                desc: "Enable the beyond-paper reduction/pruning extensions \
                       (domination rule, matching lower bound).",
            },
            FlagHelp {
                flag: "--prep",
                desc: "Run the parvc-prep kernelization + component \
                       decomposition before the search.",
            },
            FlagHelp {
                flag: "--prep-rules <d012,crown,highdeg,split>",
                desc: "Comma-separated prep stages to enable (implies --prep; \
                       default: all stages).",
            },
            FlagHelp {
                flag: "--trace-out <file>",
                desc: "Record structured telemetry and write a Chrome trace-event \
                       JSON timeline (open in Perfetto or chrome://tracing): \
                       wall-clock spans per block/worker plus a synthetic \
                       model-cycle track converted from the per-block span logs.",
            },
            FlagHelp {
                flag: "--metrics-out <file>",
                desc: "Write the flat metrics snapshot (counters, gauges, \
                       log2-bucket histograms) as JSON; an aligned text table \
                       of the same snapshot goes to stderr. Implies telemetry \
                       recording like --trace-out.",
            },
            FlagHelp {
                flag: "--timeline[=<width>]",
                desc: "Render the per-block model-cycle activity timeline to \
                       stderr after the solve (optional value = columns, \
                       default 100).",
            },
            FlagHelp {
                flag: "--progress[=<secs>]",
                desc: "Print a heartbeat to stderr while solving — best-so-far \
                       bound, tree nodes, nodes/sec — every <secs> seconds \
                       (default 5). Clock checks ride the deadline machinery's \
                       stride, so the hot loop stays unchanged.",
            },
            FlagHelp {
                flag: "--format <dimacs|edgelist>",
                desc: "Instance file format (default: inferred from the extension).",
            },
        ],
        example: "parvc solve components:120000:6000:0.3 --policy steal --prep",
    },
    CmdHelp {
        name: "resolve",
        usage: "parvc resolve --edits <script|spec> [options] <instance>",
        summary: "Solve an instance, apply a batch of edge/vertex insert+delete \
                  edits, and incrementally re-solve: components the batch never \
                  touches keep their cached optima, and only the dirty region is \
                  re-searched under warm bounds seeded from the previous result.",
        flags: &[
            FlagHelp {
                flag: "--edits <file|gen:<ops>[:<frac>][@seed]>",
                desc: "The edit batch (required): a script file (one op per \
                       line — `+e u v`, `-e u v`, `+v weight`, `-v vertex`, \
                       `#` comments) or a seeded generator spec — \
                       `gen:16` for 16 ops at the default 0.5 insert \
                       fraction, `gen:16:0.8@7` to skew toward inserts \
                       with seed 7.",
            },
            FlagHelp {
                flag: "--policy <seq|stack|hybrid|steal|batch|compsteal>",
                desc: "Scheduling policy for the dirty-region re-solve (default \
                       hybrid) — any policy works; the reuse logic is \
                       policy-independent.",
            },
            FlagHelp {
                flag: "--threads <n>",
                desc: "Cap on resident thread blocks, one OS thread each \
                       (--blocks is an alias).",
            },
            FlagHelp {
                flag: "--exec <serial|pooled[:threads]>",
                desc: "Intra-block executor for both the initial solve and the \
                       re-solve (see `parvc solve --exec`).",
            },
            FlagHelp {
                flag: "--deadline <secs>",
                desc: "Wall-clock budget per solve; a timed-out result is not \
                       exact, so the following resolve falls back to a full \
                       re-solve instead of reusing its components.",
            },
            FlagHelp {
                flag: "--weighted",
                desc: "Minimize cover weight instead of size; warm bounds run \
                       in weight units.",
            },
            FlagHelp {
                flag: "--prep",
                desc: "Kernelize the dirty region before re-searching it (the \
                       warm upper bound still caps the result).",
            },
            FlagHelp {
                flag: "--prep-rules <d012,crown,highdeg,split>",
                desc: "Comma-separated prep stages to enable (implies --prep; \
                       default: all stages).",
            },
            FlagHelp {
                flag: "--trace-out <file>",
                desc: "Record telemetry across solve + resolve and write the \
                       re-solve's Chrome trace-event JSON (includes the \
                       `resolve` span category: patch, sub-solve, total).",
            },
            FlagHelp {
                flag: "--metrics-out <file>",
                desc: "Write the re-solve's flat metrics snapshot as JSON \
                       (includes the resolve.* reuse counters); the aligned \
                       text table goes to stderr.",
            },
            FlagHelp {
                flag: "--format <dimacs|edgelist>",
                desc: "Instance file format (default: inferred from the extension).",
            },
        ],
        example: "parvc resolve components:1200:60:0.3 --edits gen:12:0.5@7 --policy steal --prep",
    },
    CmdHelp {
        name: "approx",
        usage: "parvc approx [options] <instance>",
        summary: "Run the approximate tier alone: a cover provably within \
                  twice the optimum plus a matching/dual lower-bound \
                  certificate, in near-linear time — the answer for \
                  instances too large to solve exactly.",
        flags: &[
            FlagHelp {
                flag: "--weighted",
                desc: "Bound cover weight instead of size: the Bar-Yehuda–Even \
                       primal-dual pass, whose dual is a certified weighted \
                       lower bound. Default: round-compressed maximal matching \
                       endpoints with the matching size as the certificate.",
            },
            FlagHelp {
                flag: "--exec <serial|pooled[:threads]>",
                desc: "Executor for the per-round matching passes (see `parvc \
                       solve --exec`); rounds and the reported cover are \
                       identical under either.",
            },
            FlagHelp {
                flag: "--format <dimacs|edgelist>",
                desc: "Instance file format (default: inferred from the extension).",
            },
        ],
        example: "parvc approx ba:150000:2@7 --exec pooled",
    },
    CmdHelp {
        name: "serve",
        usage: "parvc serve [options]",
        summary: "Run the solver as a long-running service: newline-delimited \
                  requests (LOAD / SOLVE / RESOLVE / STATS / EVICT) over TCP, \
                  multiplexed across a bounded worker pool, backed by a \
                  content-keyed LRU result cache and per-instance incremental \
                  re-solve sessions. Past the admission high-water mark, SOLVE \
                  traffic is shed to certified 2-approximate answers instead \
                  of queueing. Protocol reference: docs/serve.md; operator's \
                  guide: docs/operations.md.",
        flags: &[
            FlagHelp {
                flag: "--listen <host:port>",
                desc: "Bind address for the TCP front end (default \
                       127.0.0.1:7070).",
            },
            FlagHelp {
                flag: "--workers <n>",
                desc: "Connections serviced concurrently — the worker-pool \
                       bound (default 4).",
            },
            FlagHelp {
                flag: "--high-water <n>",
                desc: "In-flight exact solves beyond which SOLVE requests are \
                       shed to the 2-approximation certificate (default 4; \
                       0 sheds everything — cache hits are still served).",
            },
            FlagHelp {
                flag: "--deadline <secs>",
                desc: "Default wall-clock budget per exact solve; a request's \
                       own --deadline overrides it.",
            },
            FlagHelp {
                flag: "--cache-capacity <n>",
                desc: "Result-cache capacity in entries, LRU past it \
                       (default 128).",
            },
            FlagHelp {
                flag: "--cache-file <path>",
                desc: "Persist the result cache to this JSON file: loaded at \
                       startup, rewritten on every insert or eviction, so a \
                       restarted server answers yesterday's traffic from disk.",
            },
            FlagHelp {
                flag: "--policy <seq|stack|hybrid|steal|batch|compsteal>",
                desc: "Scheduling policy for exact solves (default hybrid; \
                       see `parvc solve --policy`).",
            },
            FlagHelp {
                flag: "--exec <serial|pooled[:threads]>",
                desc: "Intra-block executor for exact solves (see `parvc \
                       solve --exec`).",
            },
            FlagHelp {
                flag: "--no-prep",
                desc: "Skip kernelization + component decomposition in front \
                       of exact solves (on by default when serving).",
            },
            FlagHelp {
                flag: "--script <file>",
                desc: "Offline mode: replay request lines from <file> (`-` \
                       for stdin) against an in-process server, print one \
                       response line per request to stdout, and exit — no \
                       socket is opened.",
            },
        ],
        example: "parvc serve --listen 127.0.0.1:7070 --cache-file parvc-cache.json",
    },
    CmdHelp {
        name: "prep",
        usage: "parvc prep [options] <instance>",
        summary: "Run the kernelization pipeline alone and report per-rule \
                  eliminations, kernel size, and component structure.",
        flags: &[
            FlagHelp {
                flag: "--rules <d012,crown,highdeg,split>",
                desc: "Pipeline stages to enable (default: all).",
            },
            FlagHelp {
                flag: "--weighted",
                desc: "Preserve the weighted optimum: degree-1/2 shortcuts gain weight \
                       gates, and weight-unsound stages (crown, highdeg) are skipped \
                       with a note in the report.",
            },
            FlagHelp {
                flag: "--out <file>",
                desc: "Write the kernel (disjoint union of components) as DIMACS \
                       (weighted kernels keep their n-lines).",
            },
            FlagHelp {
                flag: "--format <dimacs|edgelist>",
                desc: "Instance file format (default: inferred from the extension).",
            },
        ],
        example: "parvc prep components:120000:6000:0.3 --out kernel.dimacs",
    },
    CmdHelp {
        name: "generate",
        usage: "parvc generate <family> <args...> [options]",
        summary: "Generate a benchmark instance and write it as DIMACS \
                  (families: phat n class; gnp n p; ba n m; ws n k beta; \
                  geometric n radius; pace n communities; components n parts p; \
                  bipartite left right p; grid w h).",
        flags: &[
            FlagHelp {
                flag: "--seed <s>",
                desc: "Generator seed (default 42).",
            },
            FlagHelp {
                flag: "--weights <uniform[:max]|unit|degree>",
                desc: "Attach a vertex-weight channel (written as DIMACS n-lines): \
                       uniform random in 1..=max (default max 10, seeded like the \
                       graph), all-1, or degree+1.",
            },
            FlagHelp {
                flag: "--out <file>",
                desc: "Output path (default: stdout).",
            },
        ],
        example: "parvc generate ba 150000 1 --seed 7 --out ba.dimacs",
    },
    CmdHelp {
        name: "analyze",
        usage: "parvc analyze [options] <instance>",
        summary: "Print structural statistics: degrees, components, triangles, \
                  degeneracy, bipartiteness, and MVC bounds.",
        flags: &[FlagHelp {
            flag: "--format <dimacs|edgelist>",
            desc: "Instance file format (default: inferred from the extension).",
        }],
        example: "parvc analyze ws:350:4:0.15@6",
    },
    CmdHelp {
        name: "demo",
        usage: "parvc demo",
        summary: "Solve the paper's Figure 2 example graph end to end.",
        flags: &[],
        example: "parvc demo",
    },
    CmdHelp {
        name: "help",
        usage: "parvc help [--markdown]",
        summary: "Print this reference (--markdown renders docs/cli.md).",
        flags: &[FlagHelp {
            flag: "--markdown",
            desc: "Emit the reference as Markdown instead of terminal text.",
        }],
        example: "parvc help --markdown > docs/cli.md",
    },
];

fn find_command(name: &str) -> Option<&'static CmdHelp> {
    COMMANDS.iter().find(|c| c.name == name)
}

impl CmdHelp {
    fn render_text(&self) -> String {
        let mut out = format!("{}\n  {}\n", self.usage, self.summary);
        for f in self.flags {
            out.push_str(&format!("    {:<40} {}\n", f.flag, f.desc));
        }
        out.push_str(&format!("  example: {}\n", self.example));
        out
    }
}

/// The terminal help screen (`parvc help`, `--help`, bad usage).
fn help_text() -> String {
    let mut out = String::from(
        "parvc — parallel vertex cover suite \
         (branch-and-reduce on a simulated GPU)\n\n\
         An <instance> is a file (DIMACS .dimacs/.clq/.col or an edge list) \
         or a generator\nspec `family:arg1:arg2[...][@seed][:w=<weights>]`, \
         e.g. gnp:200:0.05@7,\ncomponents:120000:6000:0.3, or the \
         vertex-weighted gnp:200:0.05@7:w=uniform.\n\n",
    );
    for c in COMMANDS {
        out.push_str(&c.render_text());
        out.push('\n');
    }
    out
}

/// The Markdown reference — `docs/cli.md` is this output, verbatim
/// (pinned by a test, regenerate with `parvc help --markdown`).
fn help_markdown() -> String {
    let mut out = String::from(
        "# `parvc` CLI reference\n\n\
         Generated by `cargo run --release --bin parvc -- help --markdown`; \
         do not edit by hand.\n\n\
         An `<instance>` argument is either a **file** (DIMACS \
         `.dimacs`/`.clq`/`.col`, or a whitespace edge list) or a generator \
         **spec** `family:arg1:arg2[...][@seed][:w=<weights>]`, e.g. \
         `gnp:200:0.05@7`, `components:120000:6000:0.3`, or the \
         vertex-weighted `gnp:200:0.05@7:w=uniform`.\n",
    );
    for c in COMMANDS {
        out.push_str(&format!("\n## `{}`\n\n{}\n\n", c.usage, c.summary));
        if !c.flags.is_empty() {
            out.push_str("| flag | description |\n|---|---|\n");
            for f in c.flags {
                out.push_str(&format!("| `{}` | {} |\n", f.flag, f.desc));
            }
            out.push('\n');
        }
        out.push_str(&format!("```sh\n{}\n```\n", c.example));
    }
    out
}

#[derive(Debug, Default, PartialEq, Eq)]
struct Flags {
    positional: Vec<String>,
    options: std::collections::BTreeMap<String, String>,
    switches: std::collections::BTreeSet<String>,
}

/// Parses `args` into positionals, `--flag value` options (for names
/// in `value_flags`), bare `--flag` switches (for names in
/// `switch_flags` or `opt_value_flags`), and `--flag=value` inline
/// options — the latter accepted only for `value_flags` and
/// `opt_value_flags` (switches that take an *optional* inline value,
/// like `--component-branching[=N]`). Unknown flags, unknown
/// `--flag=value` forms, and a numeric argument right after an
/// optional-value switch (the space-separated form the `=` syntax
/// exists to disambiguate) are all rejected rather than silently
/// ignored. Returns the usage error as `Err` so the parser is
/// property-testable; the subcommands exit(2) on it.
fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    opt_value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // `--flag=value` form: inline value wins over lookahead.
            if let Some((name, value)) = name.split_once('=') {
                if !value_flags.contains(&name) && !opt_value_flags.contains(&name) {
                    return Err(format!("--{name} does not take an =value"));
                }
                flags.options.insert(name.to_string(), value.to_string());
                continue;
            }
            if value_flags.contains(&name) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--{name} requires a value"))?
                    .clone();
                flags.options.insert(name.to_string(), v);
            } else if opt_value_flags.contains(&name) {
                // Bare switch form — but a numeric argument right
                // after it is almost certainly a value the user meant
                // to attach; demand the unambiguous `=` form instead
                // of silently treating it as the instance path.
                if let Some(next) = it.peek() {
                    if next.parse::<f64>().is_ok() {
                        return Err(format!("--{name} takes its value as --{name}={next}"));
                    }
                }
                flags.switches.insert(name.to_string());
            } else if switch_flags.contains(&name) {
                flags.switches.insert(name.to_string());
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            flags.positional.push(a.clone());
        }
    }
    Ok(flags)
}

/// [`parse_flags`] with the CLI's exit-on-usage-error behaviour.
fn parse_flags_or_exit(
    args: &[String],
    value_flags: &[&str],
    opt_value_flags: &[&str],
    switch_flags: &[&str],
) -> Flags {
    parse_flags(args, value_flags, opt_value_flags, switch_flags).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Builds the graph a positional `<instance>` argument names: a
/// generator spec (`family:args[@seed]`) when the first `:`-segment is
/// a known family, otherwise a file in `--format` (or inferred from
/// the extension).
fn load_instance(spec: &str, format: Option<&str>) -> CsrGraph {
    match parse_gen_spec(spec) {
        Some(g) => g,
        None => load_graph(spec, format),
    }
}

/// Parses `family:arg1:arg2[...][@seed][:w=<weights>]` into a
/// generated graph, or `None` if the leading segment is not a
/// generator family — a file path may legitimately contain `:` or
/// `@`, so nothing is rejected before the family name matches.
///
/// The optional `:w=` suffix attaches a vertex-weight channel
/// (`uniform[:max]` for random weights in `1..=max` with max
/// defaulting to 10, `unit` for all-1, `degree` for `d(v)+1`), turning
/// the instance into a weighted MVC input, e.g.
/// `gnp:200:0.05@7:w=uniform`.
fn parse_gen_spec(spec: &str) -> Option<CsrGraph> {
    gen::spec::parse(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Attaches the weight channel a `w=` spec or `--weights` flag names:
/// `uniform[:max]` (random in `1..=max`, default max 10, seeded like
/// the generator), `unit` (all-1), or `degree` (`d(v)+1`).
fn attach_weights(g: CsrGraph, spec: &str, seed: u64) -> CsrGraph {
    gen::spec::attach_weights(g, spec, seed).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// The shared family dispatch used by `generate` and the spec syntax.
fn generate_family(family: &str, seed: u64, args: &[f64]) -> CsrGraph {
    gen::spec::generate(family, seed, args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn load_graph(path: &str, format: Option<&str>) -> CsrGraph {
    let format = format.map(str::to_string).unwrap_or_else(|| {
        if path.ends_with(".dimacs") || path.ends_with(".clq") || path.ends_with(".col") {
            "dimacs".into()
        } else {
            "edgelist".into()
        }
    });
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let reader = BufReader::new(file);
    let result = match format.as_str() {
        "dimacs" => io::parse_dimacs(reader),
        "edgelist" => io::parse_edge_list(reader, None),
        other => {
            eprintln!("unknown format '{other}' (dimacs|edgelist)");
            std::process::exit(2);
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

/// Parses a `d012,crown,highdeg,split` stage list into a [`PrepConfig`]
/// (absent flag = every stage on).
fn parse_prep_rules(list: Option<&String>) -> PrepConfig {
    let Some(list) = list else {
        return PrepConfig::default();
    };
    let mut cfg = PrepConfig {
        low_degree: false,
        crown: false,
        high_degree: false,
        split_components: false,
        ..PrepConfig::default()
    };
    for rule in list.split(',').filter(|r| !r.is_empty()) {
        match rule {
            "d012" => cfg.low_degree = true,
            "crown" => cfg.crown = true,
            "highdeg" => cfg.high_degree = true,
            "split" => cfg.split_components = true,
            other => {
                eprintln!("unknown prep rule '{other}' (d012|crown|highdeg|split)");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn cmd_solve(args: &[String]) {
    let flags = parse_flags_or_exit(
        args,
        &[
            "policy",
            "algorithm",
            "k",
            "deadline",
            "format",
            "blocks",
            "threads",
            "exec",
            "prep-rules",
            "split-bound",
            "split-backend",
            "seed",
            "trace-out",
            "metrics-out",
        ],
        &["component-branching", "timeline", "progress"],
        &["extensions", "prep", "weighted"],
    );
    let Some(path) = flags.positional.first() else {
        eprintln!("solve: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    // --policy names the engine's SchedulePolicy; --algorithm is the
    // historical alias.
    let policy = flags
        .options
        .get("policy")
        .or_else(|| flags.options.get("algorithm"));
    let algorithm = match policy.map(String::as_str) {
        None | Some("hybrid") => Algorithm::Hybrid,
        Some("seq") | Some("sequential") => Algorithm::Sequential,
        Some("stack") | Some("stackonly") => Algorithm::StackOnly { start_depth: 8 },
        Some("steal") | Some("worksteal") | Some("workstealing") => Algorithm::WorkStealing,
        Some("batch") | Some("batched") => Algorithm::Batched,
        Some("compsteal") | Some("componentsteal") => Algorithm::ComponentSteal,
        Some(other) => {
            eprintln!("unknown policy '{other}' (seq|stack|hybrid|steal|batch|compsteal)");
            std::process::exit(2);
        }
    };
    let mut builder = Solver::builder().algorithm(algorithm);
    if let Some(d) = flags.options.get("deadline") {
        builder = builder.deadline(Some(Duration::from_secs_f64(
            d.parse().expect("--deadline takes seconds"),
        )));
    }
    // --threads caps the resident thread blocks (one OS thread each);
    // --blocks is the historical alias.
    if let Some(b) = flags
        .options
        .get("threads")
        .or_else(|| flags.options.get("blocks"))
    {
        builder = builder.grid_limit(Some(b.parse().expect("--threads takes a count")));
    }
    if let Some(e) = flags.options.get("exec") {
        let spec = ExecutorSpec::parse(e).unwrap_or_else(|err| {
            eprintln!("--exec: {err}");
            std::process::exit(2);
        });
        builder = builder.executor(spec);
    }
    if flags.switches.contains("extensions") {
        builder = builder.extensions(parvc::core::Extensions::ALL);
    }
    if let Some(s) = flags.options.get("seed") {
        let strategy = parvc::core::SeedStrategy::parse(s).unwrap_or_else(|err| {
            eprintln!("--seed: {err}");
            std::process::exit(2);
        });
        builder = builder.seed(strategy);
    }
    // `--component-branching` (default trigger) or
    // `--component-branching=<min-live>`; `--split-bound` and
    // `--split-backend` refine the parameters and imply the switch.
    let mut split_params: Option<SplitParams> =
        if let Some(v) = flags.options.get("component-branching") {
            let min_live: u32 = v.parse().unwrap_or_else(|_| {
                eprintln!("--component-branching takes a live-vertex count, got '{v}'");
                std::process::exit(2);
            });
            Some(SplitParams::with_min_live(min_live))
        } else if flags.switches.contains("component-branching") {
            Some(SplitParams::default())
        } else {
            None
        };
    if let Some(b) = flags.options.get("split-bound") {
        let bound = match b.as_str() {
            "lp" => SplitBound::Lp,
            "matching" => SplitBound::Matching,
            other => {
                eprintln!("unknown split bound '{other}' (lp|matching)");
                std::process::exit(2);
            }
        };
        split_params.get_or_insert_with(SplitParams::default).bound = bound;
    }
    if let Some(b) = flags.options.get("split-backend") {
        let backend = match b.as_str() {
            "uf" | "unionfind" | "union-find" => SplitBackend::UnionFind,
            "bfs" => SplitBackend::Bfs,
            other => {
                eprintln!("unknown split backend '{other}' (uf|bfs)");
                std::process::exit(2);
            }
        };
        split_params
            .get_or_insert_with(SplitParams::default)
            .backend = backend;
    }
    if let Some(params) = split_params {
        builder = builder.component_branching_params(params);
    }
    if flags.switches.contains("prep") || flags.options.contains_key("prep-rules") {
        builder = builder.preprocess(parse_prep_rules(flags.options.get("prep-rules")));
    }
    let weighted = flags.switches.contains("weighted");
    if weighted {
        builder = builder.weighted();
    }
    // Observability: --trace-out / --metrics-out turn on the recording
    // sink (zero overhead otherwise), --timeline needs the model-cycle
    // span logs, --progress attaches the heartbeat.
    let trace_out = flags.options.get("trace-out").cloned();
    let metrics_out = flags.options.get("metrics-out").cloned();
    if trace_out.is_some() || metrics_out.is_some() {
        builder = builder.telemetry(parvc::core::TelemetryConfig::default());
    }
    let timeline: Option<usize> = if let Some(w) = flags.options.get("timeline") {
        Some(w.parse().unwrap_or_else(|_| {
            eprintln!("--timeline takes a column count, got '{w}'");
            std::process::exit(2);
        }))
    } else if flags.switches.contains("timeline") {
        Some(100)
    } else {
        None
    };
    if timeline.is_some() {
        builder = builder.record_trace(true);
    }
    if let Some(p) = flags.options.get("progress") {
        let secs: f64 = p.parse().unwrap_or_else(|_| {
            eprintln!("--progress takes seconds, got '{p}'");
            std::process::exit(2);
        });
        builder = builder.progress(Duration::from_secs_f64(secs));
    } else if flags.switches.contains("progress") {
        builder = builder.progress(Duration::from_secs(5));
    }
    let solver = builder.build();

    eprintln!(
        "instance: |V|={}, |E|={}{}",
        g.num_vertices(),
        g.num_edges(),
        if g.is_weighted() {
            ", vertex-weighted"
        } else if weighted {
            ", unit weights"
        } else {
            ""
        }
    );
    match flags.options.get("k") {
        Some(k) => {
            if weighted {
                eprintln!("--weighted applies to MVC; PVC (--k) is a cardinality question");
                std::process::exit(2);
            }
            let k: u32 = k.parse().expect("--k takes an integer");
            let r = solver.solve_pvc(&g, k);
            match &r.cover {
                Some(cover) => {
                    assert!(is_vertex_cover(&g, cover));
                    println!("yes: cover of size {} <= {k}", cover.len());
                    println!("{:?}", cover);
                }
                None if r.stats.timed_out => println!("unknown: budget exhausted"),
                None => println!("no: no vertex cover of size <= {k} exists"),
            }
            eprintln!(
                "{} tree nodes, {:.3}s",
                r.stats.tree_nodes,
                r.stats.seconds()
            );
            emit_observability(&r.stats, trace_out.as_ref(), metrics_out.as_ref(), timeline);
        }
        None => {
            let r = solver.solve_mvc(&g);
            assert!(is_vertex_cover(&g, &r.cover));
            match (weighted, r.stats.timed_out) {
                (true, false) => {
                    println!(
                        "minimum weight vertex cover: weight {} ({} vertices)",
                        r.weight, r.size
                    );
                }
                (true, true) => {
                    println!(
                        "best cover found (NOT proven minimum): weight {} ({} vertices)",
                        r.weight, r.size
                    );
                }
                (false, false) => println!("minimum vertex cover: {}", r.size),
                (false, true) => {
                    println!("best cover found (NOT proven minimum): {}", r.size)
                }
            }
            println!("{:?}", r.cover);
            eprintln!(
                "{} tree nodes, {:.3}s (greedy bound was {})",
                r.stats.tree_nodes,
                r.stats.seconds(),
                r.stats.greedy_size
            );
            if let Some(prep) = &r.stats.prep {
                eprintln!(
                    "prep: {:.1}% of vertices eliminated, {} forced, kernel |V|={} in {} components",
                    prep.elimination() * 100.0,
                    prep.forced,
                    prep.kernel_vertices,
                    prep.components
                );
            }
            let splits = r.stats.report.split_totals();
            if splits.checks > 0 {
                eprintln!(
                    "in-search splits: {} taken of {} checks, {} components donated to sub-searches",
                    splits.taken, splits.checks, splits.components
                );
            }
            emit_observability(&r.stats, trace_out.as_ref(), metrics_out.as_ref(), timeline);
        }
    }
}

/// Writes the post-solve observability outputs `cmd_solve`'s flags
/// requested: the Chrome trace and flat metrics snapshot drained from
/// `stats.telemetry`, plus the per-block model-cycle activity timeline.
fn emit_observability(
    stats: &parvc::core::SolveStats,
    trace_out: Option<&String>,
    metrics_out: Option<&String>,
    timeline: Option<usize>,
) {
    let write = |path: &String, contents: String| {
        std::fs::write(path, contents).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    };
    if let Some(snap) = &stats.telemetry {
        if let Some(path) = trace_out {
            write(path, snap.chrome_trace());
            eprintln!(
                "wrote Chrome trace ({} spans) to {path} — open in Perfetto \
                 or chrome://tracing",
                snap.spans.len()
            );
        }
        if let Some(path) = metrics_out {
            write(path, snap.metrics_json());
            eprint!("{}", snap.metrics_table());
            eprintln!("wrote metrics snapshot to {path}");
        }
    }
    if let Some(width) = timeline {
        eprint!(
            "{}",
            parvc::simgpu::trace::render_launch(&stats.report.blocks, width)
        );
    }
}

/// Parses the `--edits` value: a `gen:<ops>[:<insert_frac>][@seed]`
/// generator spec (seeded against the loaded instance) or a script
/// file in the `EditScript` text format.
fn load_edits(spec: &str, g: &CsrGraph) -> parvc::graph::EditScript {
    if let Some(body) = spec.strip_prefix("gen:") {
        let (body, seed) = match body.split_once('@') {
            Some((b, s)) => (
                b,
                s.parse().unwrap_or_else(|_| {
                    eprintln!("bad seed '{s}' in edit spec '{spec}'");
                    std::process::exit(2);
                }),
            ),
            None => (body, 42u64),
        };
        let mut parts = body.split(':');
        let ops: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("edit spec '{spec}': expected gen:<ops>[:<insert_frac>][@seed]");
                std::process::exit(2);
            });
        let frac: f64 = match parts.next() {
            Some(t) => t.parse().unwrap_or_else(|_| {
                eprintln!("bad insert fraction '{t}' in edit spec '{spec}'");
                std::process::exit(2);
            }),
            None => 0.5,
        };
        return gen::edit_script(g, ops, frac, seed);
    }
    let text = std::fs::read_to_string(spec).unwrap_or_else(|e| {
        eprintln!("cannot read edit script {spec}: {e}");
        std::process::exit(1);
    });
    parvc::graph::EditScript::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse edit script {spec}: {e}");
        std::process::exit(1);
    })
}

fn cmd_resolve(args: &[String]) {
    let flags = parse_flags_or_exit(
        args,
        &[
            "edits",
            "policy",
            "algorithm",
            "deadline",
            "format",
            "blocks",
            "threads",
            "exec",
            "prep-rules",
            "trace-out",
            "metrics-out",
        ],
        &[],
        &["prep", "weighted"],
    );
    let Some(path) = flags.positional.first() else {
        eprintln!("resolve: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let Some(edit_spec) = flags.options.get("edits") else {
        eprintln!("resolve: --edits <script-file|gen:<ops>[:<frac>][@seed]> is required");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let edits = load_edits(edit_spec, &g);

    let policy = flags
        .options
        .get("policy")
        .or_else(|| flags.options.get("algorithm"));
    let algorithm = match policy.map(String::as_str) {
        None | Some("hybrid") => Algorithm::Hybrid,
        Some("seq") | Some("sequential") => Algorithm::Sequential,
        Some("stack") | Some("stackonly") => Algorithm::StackOnly { start_depth: 8 },
        Some("steal") | Some("worksteal") | Some("workstealing") => Algorithm::WorkStealing,
        Some("batch") | Some("batched") => Algorithm::Batched,
        Some("compsteal") | Some("componentsteal") => Algorithm::ComponentSteal,
        Some(other) => {
            eprintln!("unknown policy '{other}' (seq|stack|hybrid|steal|batch|compsteal)");
            std::process::exit(2);
        }
    };
    let mut builder = Solver::builder().algorithm(algorithm);
    if let Some(d) = flags.options.get("deadline") {
        builder = builder.deadline(Some(Duration::from_secs_f64(
            d.parse().expect("--deadline takes seconds"),
        )));
    }
    if let Some(b) = flags
        .options
        .get("threads")
        .or_else(|| flags.options.get("blocks"))
    {
        builder = builder.grid_limit(Some(b.parse().expect("--threads takes a count")));
    }
    if let Some(e) = flags.options.get("exec") {
        let spec = ExecutorSpec::parse(e).unwrap_or_else(|err| {
            eprintln!("--exec: {err}");
            std::process::exit(2);
        });
        builder = builder.executor(spec);
    }
    if flags.switches.contains("prep") || flags.options.contains_key("prep-rules") {
        builder = builder.preprocess(parse_prep_rules(flags.options.get("prep-rules")));
    }
    let weighted = flags.switches.contains("weighted");
    if weighted {
        builder = builder.weighted();
    }
    let trace_out = flags.options.get("trace-out").cloned();
    let metrics_out = flags.options.get("metrics-out").cloned();
    if trace_out.is_some() || metrics_out.is_some() {
        builder = builder.telemetry(parvc::core::TelemetryConfig::default());
    }
    let solver = builder.build();

    eprintln!(
        "instance: |V|={}, |E|={}{}",
        g.num_vertices(),
        g.num_edges(),
        if g.is_weighted() {
            ", vertex-weighted"
        } else {
            ""
        }
    );
    let initial = solver.solve_mvc(&g);
    assert!(is_vertex_cover(&g, &initial.cover));
    if weighted {
        println!(
            "initial optimum: weight {} ({} vertices), {} tree nodes",
            initial.weight, initial.size, initial.stats.tree_nodes
        );
    } else {
        println!(
            "initial optimum: {}, {} tree nodes",
            initial.size, initial.stats.tree_nodes
        );
    }
    let summary = edits.summary(&g);
    eprintln!(
        "edit batch: {} ops (+e {}, -e {}, +v {}, -v {})",
        edits.len(),
        summary.edge_inserts,
        summary.edge_deletes,
        summary.vertex_inserts,
        summary.vertex_deletes
    );
    let r = solver.resolve(&g, &initial, &edits).unwrap_or_else(|e| {
        eprintln!("resolve: edit script does not apply: {e}");
        std::process::exit(1);
    });
    assert!(is_vertex_cover(&r.graph, &r.result.cover));
    match (weighted, r.result.stats.timed_out) {
        (true, false) => println!(
            "resolved optimum: weight {} ({} vertices)",
            r.result.weight, r.result.size
        ),
        (true, true) => println!(
            "best resolved cover (NOT proven minimum): weight {} ({} vertices)",
            r.result.weight, r.result.size
        ),
        (false, false) => println!("resolved optimum: {}", r.result.size),
        (false, true) => println!(
            "best resolved cover (NOT proven minimum): {}",
            r.result.size
        ),
    }
    println!("{:?}", r.result.cover);
    let s = &r.stats;
    eprintln!(
        "components: {} total, {} reused, {} invalidated, {} re-solved",
        s.components_total, s.components_reused, s.components_invalidated, s.components_resolved
    );
    eprintln!(
        "warm bounds: {} ({} re-solve tree nodes vs {} initially); \
         union-find label builds: {}",
        if s.warm_skips > 0 {
            "met — search skipped"
        } else if s.warm_bound_hits > 0 {
            "seed was already optimal"
        } else {
            "search improved on the seed"
        },
        s.resolve_tree_nodes,
        initial.stats.tree_nodes,
        s.uf_rebuilds
    );
    emit_observability(
        &r.result.stats,
        trace_out.as_ref(),
        metrics_out.as_ref(),
        None,
    );
}

fn cmd_approx(args: &[String]) {
    let flags = parse_flags_or_exit(args, &["exec", "format"], &[], &["weighted"]);
    let Some(path) = flags.positional.first() else {
        eprintln!("approx: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let exec = match flags.options.get("exec") {
        Some(e) => ExecutorSpec::parse(e)
            .unwrap_or_else(|err| {
                eprintln!("--exec: {err}");
                std::process::exit(2);
            })
            .build(),
        None => ExecutorSpec::Serial.build(),
    };
    let weighted = flags.switches.contains("weighted");
    eprintln!(
        "instance: |V|={}, |E|={}{}",
        g.num_vertices(),
        g.num_edges(),
        if g.is_weighted() {
            ", vertex-weighted"
        } else if weighted {
            ", unit weights"
        } else {
            ""
        }
    );
    let mut counters = parvc::simgpu::counters::BlockCounters::new(0);
    let start = std::time::Instant::now();
    let a = parvc::core::approx::approx_cover(&g, weighted, &*exec, &mut counters);
    let elapsed = start.elapsed();
    assert!(is_vertex_cover(&g, &a.cover));
    if weighted {
        println!(
            "2-approximate cover: weight {} ({} vertices)",
            a.cost,
            a.cover.len()
        );
        println!(
            "primal-dual certificate: optimum weight in [{}, {}]",
            a.lower_bound, a.cost
        );
    } else {
        println!("2-approximate cover: {} vertices", a.cost);
        println!(
            "matching certificate: optimum size in [{}, {}]",
            a.lower_bound, a.cost
        );
    }
    println!("{:?}", a.cover);
    eprintln!(
        "{} matching round(s){}, {:.3}s",
        a.rounds,
        if a.compressed {
            " (low-degree tail compressed serially)"
        } else {
            ""
        },
        elapsed.as_secs_f64()
    );
}

fn cmd_serve(args: &[String]) {
    let flags = parse_flags_or_exit(
        args,
        &[
            "listen",
            "workers",
            "high-water",
            "deadline",
            "cache-capacity",
            "cache-file",
            "policy",
            "exec",
            "script",
        ],
        &[],
        &["no-prep"],
    );
    let algorithm = match flags.options.get("policy").map(String::as_str) {
        None | Some("hybrid") => Algorithm::Hybrid,
        Some("seq") | Some("sequential") => Algorithm::Sequential,
        Some("stack") | Some("stackonly") => Algorithm::StackOnly { start_depth: 8 },
        Some("steal") | Some("worksteal") | Some("workstealing") => Algorithm::WorkStealing,
        Some("batch") | Some("batched") => Algorithm::Batched,
        Some("compsteal") | Some("componentsteal") => Algorithm::ComponentSteal,
        Some(other) => {
            eprintln!("unknown policy '{other}' (seq|stack|hybrid|steal|batch|compsteal)");
            std::process::exit(2);
        }
    };
    let executor = match flags.options.get("exec") {
        Some(spec) => ExecutorSpec::parse(spec).unwrap_or_else(|e| {
            eprintln!("--exec: {e}");
            std::process::exit(2);
        }),
        None => ExecutorSpec::Serial,
    };
    let numeric = |name: &str, default: usize| -> usize {
        flags.options.get(name).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} takes a non-negative integer");
                std::process::exit(2);
            })
        })
    };
    let cfg = parvc::serve::ServeConfig {
        algorithm,
        executor,
        prep: !flags.switches.contains("no-prep"),
        grid_limit: None,
        high_water: numeric("high-water", 4),
        default_deadline: flags
            .options
            .get("deadline")
            .map(|d| Duration::from_secs_f64(d.parse().expect("--deadline takes seconds"))),
        cache_capacity: numeric("cache-capacity", 128),
        cache_path: flags.options.get("cache-file").map(Into::into),
        telemetry: false,
    };
    let server = parvc::serve::Server::new(cfg);

    // Offline mode: replay a request script and exit.
    if let Some(script) = flags.options.get("script") {
        let text = if script == "-" {
            use std::io::Read;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("cannot read stdin: {e}");
                    std::process::exit(1);
                });
            buf
        } else {
            std::fs::read_to_string(script).unwrap_or_else(|e| {
                eprintln!("cannot read {script}: {e}");
                std::process::exit(1);
            })
        };
        for line in text.lines() {
            if let Some(response) = server.handle(line) {
                println!("{response}");
            }
        }
        return;
    }

    let listen = flags
        .options
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7070");
    let listener = std::net::TcpListener::bind(listen).unwrap_or_else(|e| {
        eprintln!("cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    let workers = numeric("workers", 4) as u32;
    eprintln!(
        "parvc serve: listening on {listen} ({workers} workers, high-water {}, cache {} entries)",
        server.config().high_water,
        server.config().cache_capacity,
    );
    let stop = std::sync::atomic::AtomicBool::new(false);
    if let Err(e) = parvc::serve::serve_listener(&server, &listener, workers, &stop) {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

fn cmd_prep(args: &[String]) {
    let flags = parse_flags_or_exit(args, &["format", "out", "rules"], &[], &["weighted"]);
    let Some(path) = flags.positional.first() else {
        eprintln!("prep: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let mut cfg = parse_prep_rules(flags.options.get("rules"));
    cfg.weighted = flags.switches.contains("weighted");
    let start = std::time::Instant::now();
    let kernel = preprocess(&g, &cfg);
    let elapsed = start.elapsed();
    let s = &kernel.stats;

    println!(
        "original: |V|={} |E|={}",
        s.original_vertices, s.original_edges
    );
    println!(
        "{:<16} {:>10} {:>10} {:>7}",
        "rule", "covered", "excluded", "passes"
    );
    for r in &s.rules {
        match r.note {
            Some(note) => println!(
                "{:<16} {:>10} {:>10} {:>7}  [{note}]",
                r.name, "-", "-", "-"
            ),
            None => println!(
                "{:<16} {:>10} {:>10} {:>7}",
                r.name, r.covered, r.excluded, r.passes
            ),
        }
    }
    println!(
        "kernel:   |V|={} |E|={} in {} components (largest {})",
        s.kernel_vertices, s.kernel_edges, s.components, s.largest_component
    );
    println!(
        "eliminated {:.1}% of vertices ({} forced into the cover, {} avoidable) \
         in {} rounds, {:.3}s",
        s.elimination() * 100.0,
        s.forced,
        s.original_vertices - s.kernel_vertices - s.forced,
        s.rounds,
        elapsed.as_secs_f64()
    );
    if kernel.is_fully_reduced() {
        let cover = kernel.lift(&[]);
        assert!(is_vertex_cover(&g, &cover));
        if cfg.weighted {
            println!(
                "fully reduced: preprocessing alone proves the minimum weight vertex cover \
                 is {} ({} vertices)",
                g.cover_weight(&cover),
                cover.len()
            );
        } else {
            println!(
                "fully reduced: preprocessing alone proves the minimum vertex cover is {}",
                cover.len()
            );
        }
    }
    if let Some(out) = flags.options.get("out") {
        let file = std::fs::File::create(out).expect("cannot create output file");
        io::write_dimacs(
            &kernel.kernel_graph(),
            "edge",
            std::io::BufWriter::new(file),
        )
        .expect("write failed");
        eprintln!("wrote the kernel (disjoint component union) to {out}");
    }
}

fn cmd_generate(args: &[String]) {
    let flags = parse_flags_or_exit(args, &["seed", "out", "weights"], &[], &[]);
    let seed: u64 = flags
        .options
        .get("seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let p = &flags.positional;
    let Some(family) = p.first() else {
        eprintln!("generate: missing family");
        std::process::exit(2);
    };
    let fam_args: Vec<f64> = p[1..]
        .iter()
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("generate: bad numeric argument '{t}' for family {family}");
                std::process::exit(2);
            })
        })
        .collect();
    let mut g = generate_family(family, seed, &fam_args);
    if let Some(w) = flags.options.get("weights") {
        g = attach_weights(g, w, seed);
    }
    match flags.options.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).expect("cannot create output file");
            io::write_dimacs(&g, "edge", std::io::BufWriter::new(file)).expect("write failed");
            eprintln!(
                "wrote |V|={}, |E|={} to {path}",
                g.num_vertices(),
                g.num_edges()
            );
        }
        None => {
            io::write_dimacs(&g, "edge", std::io::stdout().lock()).expect("write failed");
        }
    }
}

fn cmd_analyze(args: &[String]) {
    let flags = parse_flags_or_exit(args, &["format"], &[], &[]);
    let Some(path) = flags.positional.first() else {
        eprintln!("analyze: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let stats = analysis::degree_stats(&g);
    let (_, components) = ops::connected_components(&g);
    println!("vertices:        {}", g.num_vertices());
    println!("edges:           {}", g.num_edges());
    println!("|E|/|V|:         {:.3}", analysis::edge_vertex_ratio(&g));
    println!("degree class:    {}", analysis::degree_class(&g));
    println!(
        "degrees:         min {} / mean {:.2} / max {} / stddev {:.2}",
        stats.min, stats.mean, stats.max, stats.std_dev
    );
    println!("components:      {components}");
    println!("triangles:       {}", analysis::triangle_count(&g));
    let core = kcore::core_decomposition(&g);
    let two_core = core.core_number.iter().filter(|&&c| c >= 2).count();
    println!(
        "degeneracy:      {} ({} of {} vertices survive the reduction-resistant 2-core)",
        core.degeneracy,
        two_core,
        g.num_vertices()
    );
    match matching::bipartition(&g) {
        Some(_) => {
            let cover = matching::konig_cover(&g).expect("bipartite");
            println!("bipartite:       yes — exact MVC by Kőnig: {}", cover.len());
        }
        None => {
            let lb = matching::greedy_maximal_matching(&g).len();
            let (ub, _) = parvc::core::greedy::greedy_mvc(&g);
            println!("bipartite:       no — MVC within [{lb}, {ub}] (matching LB, greedy UB)");
        }
    }
}

fn cmd_demo() {
    let g = gen::paper_example();
    println!(
        "the paper's Figure 2 graph ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(4))
        .build();
    let r = solver.solve_mvc(&g);
    println!("minimum vertex cover: {} = {:?}", r.size, r.cover);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The `solve` subcommand's flag tables — the richest surface
    /// (value flags, an optional-value flag, and switches including
    /// the new `--weighted`), shared by the fuzz properties below.
    const SOLVE_VALUE: &[&str] = &[
        "policy",
        "algorithm",
        "k",
        "deadline",
        "format",
        "blocks",
        "threads",
        "exec",
        "prep-rules",
        "split-bound",
        "split-backend",
        "seed",
        "trace-out",
        "metrics-out",
    ];
    const SOLVE_OPT: &[&str] = &["component-branching", "timeline", "progress"];
    const SOLVE_SWITCH: &[&str] = &["extensions", "prep", "weighted"];

    fn solve_flags(args: &[String]) -> Result<Flags, String> {
        parse_flags(args, SOLVE_VALUE, SOLVE_OPT, SOLVE_SWITCH)
    }

    const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.";

    /// A 1–8 character word over `charset` (the shim has no regex
    /// string strategies).
    fn arb_word(charset: &'static [u8]) -> impl Strategy<Value = String> {
        proptest::collection::vec(0usize..charset.len(), 1..9)
            .prop_map(move |ix| ix.into_iter().map(|i| charset[i] as char).collect())
    }

    /// An arbitrary argv token: known flags in all forms, unknown
    /// flags, `=`-values, positionals, and junk.
    fn arb_token() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("--policy".to_string()),
            Just("--weighted".to_string()),
            Just("--prep".to_string()),
            Just("--component-branching".to_string()),
            Just("--component-branching=4".to_string()),
            Just("--k=3".to_string()),
            Just("--k".to_string()),
            Just("--deadline=0.5".to_string()),
            Just("--weighted=yes".to_string()),
            Just("--bogus".to_string()),
            Just("--prep=on".to_string()),
            Just("steal".to_string()),
            Just("gnp:20:0.2@7".to_string()),
            Just("12".to_string()),
            Just("0.5".to_string()),
            Just("graph.dimacs".to_string()),
            Just("--".to_string()),
            Just(String::new()),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Total: any argv either parses or reports a usage error —
        /// no panic, and accepted output is structurally consistent
        /// with the flag tables.
        #[test]
        fn parse_flags_is_total_and_consistent(
            args in proptest::collection::vec(arb_token(), 0..8)
        ) {
            match solve_flags(&args) {
                Err(e) => prop_assert!(!e.is_empty(), "empty usage error"),
                Ok(f) => {
                    for key in f.options.keys() {
                        prop_assert!(
                            SOLVE_VALUE.contains(&key.as_str())
                                || SOLVE_OPT.contains(&key.as_str()),
                            "option {key} not in the flag tables"
                        );
                    }
                    for s in &f.switches {
                        prop_assert!(
                            SOLVE_SWITCH.contains(&s.as_str())
                                || SOLVE_OPT.contains(&s.as_str()),
                            "switch {s} not in the flag tables"
                        );
                    }
                    for p in &f.positional {
                        prop_assert!(!p.starts_with("--") || p == "--");
                    }
                    // Nothing is invented: every positional appeared in
                    // the input verbatim.
                    for p in &f.positional {
                        prop_assert!(args.contains(p));
                    }
                }
            }
        }

        /// `--flag=value` round-trips into `options` for every value
        /// flag and optional-value flag, regardless of surrounding
        /// noise positionals.
        #[test]
        fn inline_values_land_in_options(
            idx in 0usize..9,
            value in arb_word(ALNUM),
            prefix in proptest::collection::vec(Just("x".to_string()), 0..3),
        ) {
            let all: Vec<&str> = SOLVE_VALUE
                .iter()
                .chain(SOLVE_OPT.iter())
                .copied()
                .collect();
            let name = all[idx % all.len()];
            let mut args = prefix.clone();
            args.push(format!("--{name}={value}"));
            let f = solve_flags(&args).expect("inline value form must parse");
            prop_assert_eq!(f.options.get(name), Some(&value));
            prop_assert_eq!(f.positional.len(), prefix.len());
        }

        /// Unknown flags are always rejected, in both bare and
        /// `=value` forms.
        #[test]
        fn unknown_flags_are_rejected(name in arb_word(LOWER), value in arb_word(ALNUM)) {
            let known = SOLVE_VALUE.contains(&name.as_str())
                || SOLVE_OPT.contains(&name.as_str())
                || SOLVE_SWITCH.contains(&name.as_str());
            if !known {
                prop_assert!(solve_flags(&[format!("--{name}")]).is_err());
                prop_assert!(solve_flags(&[format!("--{name}={value}")]).is_err());
            }
        }

        /// A value flag as the last token always errors (missing
        /// value), and a switch taking `=value` always errors.
        #[test]
        fn malformed_forms_error(idx in 0usize..8, sw in 0usize..3) {
            let name = SOLVE_VALUE[idx % SOLVE_VALUE.len()];
            prop_assert!(solve_flags(&[format!("--{name}")]).is_err());
            let switch = SOLVE_SWITCH[sw % SOLVE_SWITCH.len()];
            prop_assert!(
                solve_flags(&[format!("--{switch}=1")]).is_err(),
                "--{switch} must not take an =value"
            );
        }
    }

    #[test]
    fn weighted_interactions_parse_as_documented() {
        // --weighted composes with the rest of the solve surface.
        let args: Vec<String> = ["--weighted", "--policy", "steal", "--prep", "gnp:20:0.2@7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = solve_flags(&args).unwrap();
        assert!(f.switches.contains("weighted"));
        assert!(f.switches.contains("prep"));
        assert_eq!(f.options.get("policy"), Some(&"steal".to_string()));
        assert_eq!(f.positional, vec!["gnp:20:0.2@7".to_string()]);

        // --weighted is a bare switch: the =value form is a usage error.
        assert!(solve_flags(&["--weighted=1".to_string()]).is_err());

        // An optional-value switch still demands the `=` form for a
        // numeric follower, even with --weighted in front.
        let err = solve_flags(&[
            "--weighted".to_string(),
            "--component-branching".to_string(),
            "4".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("component-branching=4"), "got: {err}");
    }

    #[test]
    fn weighted_gen_specs_attach_the_channel() {
        let g = parse_gen_spec("gnp:20:0.2@7:w=uniform").expect("known family");
        assert!(g.is_weighted());
        assert_eq!(g.num_vertices(), 20);
        assert!((1..=10).contains(&g.weight(0)));
        // Same core spec without the channel: identical structure.
        let plain = parse_gen_spec("gnp:20:0.2@7").unwrap();
        assert_eq!(plain, g.clone().without_weights());

        let caps = parse_gen_spec("gnp:20:0.2@7:w=uniform:3").unwrap();
        assert!(caps
            .weights()
            .unwrap()
            .iter()
            .all(|&w| (1..=3).contains(&w)));

        let unit = parse_gen_spec("grid:3:4:w=unit").unwrap();
        assert_eq!(unit.weights(), Some(&[1u64; 12][..]));

        let deg = parse_gen_spec("grid:2:2:w=degree").unwrap();
        assert_eq!(deg.weight(0), 3); // corner: degree 2 + 1

        // Unknown families still fall through to file handling.
        assert!(parse_gen_spec("notafamily:1:2:w=uniform").is_none());
    }

    /// `,` and `:` are interchangeable between a spec's numeric
    /// arguments.
    #[test]
    fn comma_separated_specs_match_colon_form() {
        let colon = parse_gen_spec("gnp:20:0.2@7").unwrap();
        let comma = parse_gen_spec("gnp:20,0.2@7").unwrap();
        assert_eq!(colon, comma);
    }

    /// `docs/cli.md` is the committed output of `parvc help --markdown`.
    /// If this fails, regenerate it:
    /// `cargo run --release --bin parvc -- help --markdown > docs/cli.md`.
    #[test]
    fn cli_reference_doc_is_current() {
        let committed = include_str!("../../docs/cli.md");
        assert_eq!(
            committed,
            help_markdown(),
            "docs/cli.md is stale — regenerate with \
             `cargo run --release --bin parvc -- help --markdown > docs/cli.md`"
        );
    }

    /// Every documented subcommand exists and every subcommand is
    /// documented (no drift between the dispatcher and the reference).
    #[test]
    fn every_subcommand_is_documented() {
        let documented: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
        assert_eq!(
            documented,
            vec![
                "solve", "resolve", "approx", "serve", "prep", "generate", "analyze", "demo",
                "help"
            ]
        );
        for c in COMMANDS {
            assert!(c.usage.starts_with("parvc "), "{}: bad usage line", c.name);
            assert!(!c.summary.is_empty());
            assert!(c.example.starts_with("parvc"), "{}: bad example", c.name);
            for f in c.flags {
                assert!(f.flag.starts_with("--"), "{}: bad flag {}", c.name, f.flag);
                assert!(!f.desc.is_empty(), "{}: {} undocumented", c.name, f.flag);
            }
        }
    }
}
