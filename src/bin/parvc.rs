//! `parvc` — command-line driver for the vertex-cover suite.
//!
//! ```text
//! parvc solve   [--policy seq|stack|hybrid|steal] [--threads <n>]
//!               [--k <k>] [--deadline <s>] [--extensions]
//!               [--format dimacs|edgelist] <file>
//! parvc generate <family> <args...> [--seed <s>] [--out <file>]
//! parvc analyze [--format dimacs|edgelist] <file>
//! parvc demo
//! ```
//!
//! `--policy` selects the scheduling policy the branch-and-reduce
//! engine runs (`--algorithm` is accepted as an alias); `--threads`
//! caps the number of thread blocks (`--blocks` is an alias).
//!
//! Families for `generate`: `phat n class`, `gnp n p`, `ba n m`,
//! `ws n k beta`, `geometric n radius`, `pace n communities`,
//! `components n parts p`, `bipartite left right p`, `grid w h`.

use std::io::BufReader;
use std::time::Duration;

use parvc::graph::{analysis, gen, io, kcore, matching, ops};
use parvc::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!(
                "usage: parvc <solve|generate|analyze|demo> [options]\n\
                 see the crate docs (src/bin/parvc.rs) for details"
            );
            std::process::exit(2);
        }
    }
}

struct Flags {
    positional: Vec<String>,
    options: std::collections::BTreeMap<String, String>,
    switches: std::collections::BTreeSet<String>,
}

fn parse_flags(args: &[String], value_flags: &[&str]) -> Flags {
    let mut flags = Flags {
        positional: Vec::new(),
        options: Default::default(),
        switches: Default::default(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if value_flags.contains(&name) {
                let v = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--{name} requires a value");
                        std::process::exit(2);
                    })
                    .clone();
                flags.options.insert(name.to_string(), v);
            } else {
                flags.switches.insert(name.to_string());
            }
        } else {
            flags.positional.push(a.clone());
        }
    }
    flags
}

fn load_graph(path: &str, format: Option<&str>) -> CsrGraph {
    let format = format.map(str::to_string).unwrap_or_else(|| {
        if path.ends_with(".dimacs") || path.ends_with(".clq") || path.ends_with(".col") {
            "dimacs".into()
        } else {
            "edgelist".into()
        }
    });
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let reader = BufReader::new(file);
    let result = match format.as_str() {
        "dimacs" => io::parse_dimacs(reader),
        "edgelist" => io::parse_edge_list(reader, None),
        other => {
            eprintln!("unknown format '{other}' (dimacs|edgelist)");
            std::process::exit(2);
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn cmd_solve(args: &[String]) {
    let flags = parse_flags(
        args,
        &[
            "policy",
            "algorithm",
            "k",
            "deadline",
            "format",
            "blocks",
            "threads",
        ],
    );
    let Some(path) = flags.positional.first() else {
        eprintln!("solve: missing input file");
        std::process::exit(2);
    };
    let g = load_graph(path, flags.options.get("format").map(String::as_str));
    // --policy names the engine's SchedulePolicy; --algorithm is the
    // historical alias.
    let policy = flags
        .options
        .get("policy")
        .or_else(|| flags.options.get("algorithm"));
    let algorithm = match policy.map(String::as_str) {
        None | Some("hybrid") => Algorithm::Hybrid,
        Some("seq") | Some("sequential") => Algorithm::Sequential,
        Some("stack") | Some("stackonly") => Algorithm::StackOnly { start_depth: 8 },
        Some("steal") | Some("worksteal") | Some("workstealing") => Algorithm::WorkStealing,
        Some(other) => {
            eprintln!("unknown policy '{other}' (seq|stack|hybrid|steal)");
            std::process::exit(2);
        }
    };
    let mut builder = Solver::builder().algorithm(algorithm);
    if let Some(d) = flags.options.get("deadline") {
        builder = builder.deadline(Some(Duration::from_secs_f64(
            d.parse().expect("--deadline takes seconds"),
        )));
    }
    // --threads caps the resident thread blocks (one OS thread each);
    // --blocks is the historical alias.
    if let Some(b) = flags
        .options
        .get("threads")
        .or_else(|| flags.options.get("blocks"))
    {
        builder = builder.grid_limit(Some(b.parse().expect("--threads takes a count")));
    }
    if flags.switches.contains("extensions") {
        builder = builder.extensions(parvc::core::Extensions::ALL);
    }
    let solver = builder.build();

    eprintln!("instance: |V|={}, |E|={}", g.num_vertices(), g.num_edges());
    match flags.options.get("k") {
        Some(k) => {
            let k: u32 = k.parse().expect("--k takes an integer");
            let r = solver.solve_pvc(&g, k);
            match &r.cover {
                Some(cover) => {
                    assert!(is_vertex_cover(&g, cover));
                    println!("yes: cover of size {} <= {k}", cover.len());
                    println!("{:?}", cover);
                }
                None if r.stats.timed_out => println!("unknown: budget exhausted"),
                None => println!("no: no vertex cover of size <= {k} exists"),
            }
            eprintln!(
                "{} tree nodes, {:.3}s",
                r.stats.tree_nodes,
                r.stats.seconds()
            );
        }
        None => {
            let r = solver.solve_mvc(&g);
            assert!(is_vertex_cover(&g, &r.cover));
            if r.stats.timed_out {
                println!("best cover found (NOT proven minimum): {}", r.size);
            } else {
                println!("minimum vertex cover: {}", r.size);
            }
            println!("{:?}", r.cover);
            eprintln!(
                "{} tree nodes, {:.3}s (greedy bound was {})",
                r.stats.tree_nodes,
                r.stats.seconds(),
                r.stats.greedy_size
            );
        }
    }
}

fn cmd_generate(args: &[String]) {
    let flags = parse_flags(args, &["seed", "out"]);
    let seed: u64 = flags
        .options
        .get("seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let p = &flags.positional;
    let get = |i: usize| -> f64 {
        p.get(i)
            .unwrap_or_else(|| {
                eprintln!("generate: missing argument {i} for family {:?}", p.first());
                std::process::exit(2);
            })
            .parse()
            .expect("numeric argument")
    };
    let g = match p.first().map(String::as_str) {
        Some("phat") => gen::p_hat_complement(get(1) as u32, get(2) as u8, seed),
        Some("gnp") => gen::gnp(get(1) as u32, get(2), seed),
        Some("ba") => gen::barabasi_albert(get(1) as u32, get(2) as u32, seed),
        Some("ws") => gen::watts_strogatz(get(1) as u32, get(2) as u32, get(3), seed),
        Some("geometric") => gen::random_geometric(get(1) as u32, get(2), seed),
        Some("pace") => gen::pace_like(get(1) as u32, get(2) as u32, seed),
        Some("components") => gen::sparse_components(get(1) as u32, get(2) as u32, get(3), seed),
        Some("bipartite") => gen::bipartite_gnp(get(1) as u32, get(2) as u32, get(3), seed),
        Some("grid") => gen::grid2d(get(1) as u32, get(2) as u32),
        other => {
            eprintln!("unknown family {other:?}");
            std::process::exit(2);
        }
    };
    match flags.options.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).expect("cannot create output file");
            io::write_dimacs(&g, "edge", std::io::BufWriter::new(file)).expect("write failed");
            eprintln!(
                "wrote |V|={}, |E|={} to {path}",
                g.num_vertices(),
                g.num_edges()
            );
        }
        None => {
            io::write_dimacs(&g, "edge", std::io::stdout().lock()).expect("write failed");
        }
    }
}

fn cmd_analyze(args: &[String]) {
    let flags = parse_flags(args, &["format"]);
    let Some(path) = flags.positional.first() else {
        eprintln!("analyze: missing input file");
        std::process::exit(2);
    };
    let g = load_graph(path, flags.options.get("format").map(String::as_str));
    let stats = analysis::degree_stats(&g);
    let (_, components) = ops::connected_components(&g);
    println!("vertices:        {}", g.num_vertices());
    println!("edges:           {}", g.num_edges());
    println!("|E|/|V|:         {:.3}", analysis::edge_vertex_ratio(&g));
    println!("degree class:    {}", analysis::degree_class(&g));
    println!(
        "degrees:         min {} / mean {:.2} / max {} / stddev {:.2}",
        stats.min, stats.mean, stats.max, stats.std_dev
    );
    println!("components:      {components}");
    println!("triangles:       {}", analysis::triangle_count(&g));
    let core = kcore::core_decomposition(&g);
    let two_core = core.core_number.iter().filter(|&&c| c >= 2).count();
    println!(
        "degeneracy:      {} ({} of {} vertices survive the reduction-resistant 2-core)",
        core.degeneracy,
        two_core,
        g.num_vertices()
    );
    match matching::bipartition(&g) {
        Some(_) => {
            let cover = matching::konig_cover(&g).expect("bipartite");
            println!("bipartite:       yes — exact MVC by Kőnig: {}", cover.len());
        }
        None => {
            let lb = matching::greedy_maximal_matching(&g).len();
            let (ub, _) = parvc::core::greedy::greedy_mvc(&g);
            println!("bipartite:       no — MVC within [{lb}, {ub}] (matching LB, greedy UB)");
        }
    }
}

fn cmd_demo() {
    let g = gen::paper_example();
    println!(
        "the paper's Figure 2 graph ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(4))
        .build();
    let r = solver.solve_mvc(&g);
    println!("minimum vertex cover: {} = {:?}", r.size, r.cover);
}
