//! `parvc` — command-line driver for the vertex-cover suite.
//!
//! Run `parvc help` for the full flag reference (the same text this
//! binary renders into `docs/cli.md` with `parvc help --markdown`).
//!
//! ```text
//! parvc solve   [--policy seq|stack|hybrid|steal|compsteal]
//!               [--threads <n>] [--k <k>] [--deadline <s>]
//!               [--extensions] [--component-branching[=<min-live>]]
//!               [--prep] [--prep-rules d012,crown,highdeg,split]
//!               [--format dimacs|edgelist] <instance>
//! parvc prep    [--rules d012,crown,highdeg,split] [--out <file>]
//!               [--format dimacs|edgelist] <instance>
//! parvc generate <family> <args...> [--seed <s>] [--out <file>]
//! parvc analyze [--format dimacs|edgelist] <instance>
//! parvc demo
//! parvc help    [--markdown]
//! ```
//!
//! `<instance>` is either a real instance **file** (DIMACS `.dimacs` /
//! `.clq` / `.col`, or a whitespace edge list — downloaded benchmarks
//! drop straight in) or a generator **spec**
//! `family:arg1:arg2[...][@seed]`, e.g. `gnp:200:0.05@7`,
//! `ba:150000:1`, `components:120000:6000:0.3`.
//!
//! Families for `generate` and specs: `phat n class`, `gnp n p`,
//! `ba n m`, `ws n k beta`, `geometric n radius`,
//! `pace n communities`, `components n parts p`,
//! `bipartite left right p`, `grid w h`.

use std::io::BufReader;
use std::time::Duration;

use parvc::core::split::SplitParams;
use parvc::graph::{analysis, gen, io, kcore, matching, ops};
use parvc::prelude::*;
use parvc::prep::{preprocess, PrepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    if args.iter().any(|a| a == "--help") {
        match cmd.and_then(find_command) {
            Some(c) => print!("{}", c.render_text()),
            None => print!("{}", help_text()),
        }
        return;
    }
    match cmd {
        Some("solve") => cmd_solve(&args[1..]),
        Some("prep") => cmd_prep(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("help") => {
            if args[1..].iter().any(|a| a == "--markdown") {
                print!("{}", help_markdown());
            } else {
                print!("{}", help_text());
            }
        }
        _ => {
            eprint!("{}", help_text());
            std::process::exit(2);
        }
    }
}

/// One flag's reference entry.
struct FlagHelp {
    /// The flag with its value placeholder, e.g. `--deadline <secs>`.
    flag: &'static str,
    /// One-line description.
    desc: &'static str,
}

/// One subcommand's reference entry — the single source the terminal
/// help AND `docs/cli.md` are rendered from, so they cannot drift.
struct CmdHelp {
    name: &'static str,
    usage: &'static str,
    summary: &'static str,
    flags: &'static [FlagHelp],
    example: &'static str,
}

const COMMANDS: &[CmdHelp] = &[
    CmdHelp {
        name: "solve",
        usage: "parvc solve [options] <instance>",
        summary: "Solve minimum vertex cover (or, with --k, parameterized \
                  vertex cover) on a file or generator-spec instance.",
        flags: &[
            FlagHelp {
                flag: "--policy <seq|stack|hybrid|steal|compsteal>",
                desc: "Scheduling policy driving the branch-and-reduce engine \
                       (default hybrid; --algorithm is an alias). `compsteal` \
                       donates whole components of disconnected residuals to \
                       the steal pool and implies --component-branching.",
            },
            FlagHelp {
                flag: "--threads <n>",
                desc: "Cap on resident thread blocks, one OS thread each \
                       (--blocks is an alias).",
            },
            FlagHelp {
                flag: "--k <k>",
                desc: "Solve PVC: find any cover of size <= k instead of the minimum.",
            },
            FlagHelp {
                flag: "--deadline <secs>",
                desc: "Wall-clock budget; on expiry MVC reports best-so-far, \
                       PVC reports 'unknown'.",
            },
            FlagHelp {
                flag: "--component-branching[=<min-live>]",
                desc: "Re-split the search when reductions disconnect the \
                       residual graph; optional value = live-vertex count \
                       below which the connectivity check is skipped \
                       (default 8).",
            },
            FlagHelp {
                flag: "--extensions",
                desc: "Enable the beyond-paper reduction/pruning extensions \
                       (domination rule, matching lower bound).",
            },
            FlagHelp {
                flag: "--prep",
                desc: "Run the parvc-prep kernelization + component \
                       decomposition before the search.",
            },
            FlagHelp {
                flag: "--prep-rules <d012,crown,highdeg,split>",
                desc: "Comma-separated prep stages to enable (implies --prep; \
                       default: all stages).",
            },
            FlagHelp {
                flag: "--format <dimacs|edgelist>",
                desc: "Instance file format (default: inferred from the extension).",
            },
        ],
        example: "parvc solve components:120000:6000:0.3 --policy steal --prep",
    },
    CmdHelp {
        name: "prep",
        usage: "parvc prep [options] <instance>",
        summary: "Run the kernelization pipeline alone and report per-rule \
                  eliminations, kernel size, and component structure.",
        flags: &[
            FlagHelp {
                flag: "--rules <d012,crown,highdeg,split>",
                desc: "Pipeline stages to enable (default: all).",
            },
            FlagHelp {
                flag: "--out <file>",
                desc: "Write the kernel (disjoint union of components) as DIMACS.",
            },
            FlagHelp {
                flag: "--format <dimacs|edgelist>",
                desc: "Instance file format (default: inferred from the extension).",
            },
        ],
        example: "parvc prep components:120000:6000:0.3 --out kernel.dimacs",
    },
    CmdHelp {
        name: "generate",
        usage: "parvc generate <family> <args...> [options]",
        summary: "Generate a benchmark instance and write it as DIMACS \
                  (families: phat n class; gnp n p; ba n m; ws n k beta; \
                  geometric n radius; pace n communities; components n parts p; \
                  bipartite left right p; grid w h).",
        flags: &[
            FlagHelp {
                flag: "--seed <s>",
                desc: "Generator seed (default 42).",
            },
            FlagHelp {
                flag: "--out <file>",
                desc: "Output path (default: stdout).",
            },
        ],
        example: "parvc generate ba 150000 1 --seed 7 --out ba.dimacs",
    },
    CmdHelp {
        name: "analyze",
        usage: "parvc analyze [options] <instance>",
        summary: "Print structural statistics: degrees, components, triangles, \
                  degeneracy, bipartiteness, and MVC bounds.",
        flags: &[FlagHelp {
            flag: "--format <dimacs|edgelist>",
            desc: "Instance file format (default: inferred from the extension).",
        }],
        example: "parvc analyze ws:350:4:0.15@6",
    },
    CmdHelp {
        name: "demo",
        usage: "parvc demo",
        summary: "Solve the paper's Figure 2 example graph end to end.",
        flags: &[],
        example: "parvc demo",
    },
    CmdHelp {
        name: "help",
        usage: "parvc help [--markdown]",
        summary: "Print this reference (--markdown renders docs/cli.md).",
        flags: &[FlagHelp {
            flag: "--markdown",
            desc: "Emit the reference as Markdown instead of terminal text.",
        }],
        example: "parvc help --markdown > docs/cli.md",
    },
];

fn find_command(name: &str) -> Option<&'static CmdHelp> {
    COMMANDS.iter().find(|c| c.name == name)
}

impl CmdHelp {
    fn render_text(&self) -> String {
        let mut out = format!("{}\n  {}\n", self.usage, self.summary);
        for f in self.flags {
            out.push_str(&format!("    {:<40} {}\n", f.flag, f.desc));
        }
        out.push_str(&format!("  example: {}\n", self.example));
        out
    }
}

/// The terminal help screen (`parvc help`, `--help`, bad usage).
fn help_text() -> String {
    let mut out = String::from(
        "parvc — parallel vertex cover suite \
         (branch-and-reduce on a simulated GPU)\n\n\
         An <instance> is a file (DIMACS .dimacs/.clq/.col or an edge list) \
         or a generator\nspec `family:arg1:arg2[...][@seed]`, \
         e.g. gnp:200:0.05@7 or components:120000:6000:0.3.\n\n",
    );
    for c in COMMANDS {
        out.push_str(&c.render_text());
        out.push('\n');
    }
    out
}

/// The Markdown reference — `docs/cli.md` is this output, verbatim
/// (pinned by a test, regenerate with `parvc help --markdown`).
fn help_markdown() -> String {
    let mut out = String::from(
        "# `parvc` CLI reference\n\n\
         Generated by `cargo run --release --bin parvc -- help --markdown`; \
         do not edit by hand.\n\n\
         An `<instance>` argument is either a **file** (DIMACS \
         `.dimacs`/`.clq`/`.col`, or a whitespace edge list) or a generator \
         **spec** `family:arg1:arg2[...][@seed]`, e.g. `gnp:200:0.05@7` or \
         `components:120000:6000:0.3`.\n",
    );
    for c in COMMANDS {
        out.push_str(&format!("\n## `{}`\n\n{}\n\n", c.usage, c.summary));
        if !c.flags.is_empty() {
            out.push_str("| flag | description |\n|---|---|\n");
            for f in c.flags {
                out.push_str(&format!("| `{}` | {} |\n", f.flag, f.desc));
            }
            out.push('\n');
        }
        out.push_str(&format!("```sh\n{}\n```\n", c.example));
    }
    out
}

struct Flags {
    positional: Vec<String>,
    options: std::collections::BTreeMap<String, String>,
    switches: std::collections::BTreeSet<String>,
}

/// Parses `args` into positionals, `--flag value` options (for names
/// in `value_flags`), bare `--flag` switches (for names in
/// `switch_flags` or `opt_value_flags`), and `--flag=value` inline
/// options — the latter accepted only for `value_flags` and
/// `opt_value_flags` (switches that take an *optional* inline value,
/// like `--component-branching[=N]`). Unknown flags, unknown
/// `--flag=value` forms, and a numeric argument right after an
/// optional-value switch (the space-separated form the `=` syntax
/// exists to disambiguate) are all rejected rather than silently
/// ignored.
fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    opt_value_flags: &[&str],
    switch_flags: &[&str],
) -> Flags {
    let mut flags = Flags {
        positional: Vec::new(),
        options: Default::default(),
        switches: Default::default(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // `--flag=value` form: inline value wins over lookahead.
            if let Some((name, value)) = name.split_once('=') {
                if !value_flags.contains(&name) && !opt_value_flags.contains(&name) {
                    eprintln!("--{name} does not take an =value");
                    std::process::exit(2);
                }
                flags.options.insert(name.to_string(), value.to_string());
                continue;
            }
            if value_flags.contains(&name) {
                let v = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--{name} requires a value");
                        std::process::exit(2);
                    })
                    .clone();
                flags.options.insert(name.to_string(), v);
            } else if opt_value_flags.contains(&name) {
                // Bare switch form — but a numeric argument right
                // after it is almost certainly a value the user meant
                // to attach; demand the unambiguous `=` form instead
                // of silently treating it as the instance path.
                if let Some(next) = it.peek() {
                    if next.parse::<f64>().is_ok() {
                        eprintln!("--{name} takes its value as --{name}={next}");
                        std::process::exit(2);
                    }
                }
                flags.switches.insert(name.to_string());
            } else if switch_flags.contains(&name) {
                flags.switches.insert(name.to_string());
            } else {
                eprintln!("unknown flag --{name}");
                std::process::exit(2);
            }
        } else {
            flags.positional.push(a.clone());
        }
    }
    flags
}

/// Builds the graph a positional `<instance>` argument names: a
/// generator spec (`family:args[@seed]`) when the first `:`-segment is
/// a known family, otherwise a file in `--format` (or inferred from
/// the extension).
fn load_instance(spec: &str, format: Option<&str>) -> CsrGraph {
    match parse_gen_spec(spec) {
        Some(g) => g,
        None => load_graph(spec, format),
    }
}

/// Parses `family:arg1:arg2[...][@seed]` into a generated graph, or
/// `None` if the leading segment is not a generator family — a file
/// path may legitimately contain `:` or `@`, so nothing is rejected
/// before the family name matches.
fn parse_gen_spec(spec: &str) -> Option<CsrGraph> {
    const FAMILIES: [&str; 9] = [
        "phat",
        "gnp",
        "ba",
        "ws",
        "geometric",
        "pace",
        "components",
        "bipartite",
        "grid",
    ];
    let (family, rest) = spec.split_once(':')?;
    if !FAMILIES.contains(&family) {
        return None;
    }
    let (body, seed) = match rest.split_once('@') {
        Some((body, s)) => (
            body,
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad seed '{s}' in spec '{spec}'");
                std::process::exit(2);
            }),
        ),
        None => (rest, 42u64),
    };
    let parts = body.split(':');
    let args: Vec<f64> = parts
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric argument '{t}' in spec '{spec}'");
                std::process::exit(2);
            })
        })
        .collect();
    let arg = |i: usize| -> f64 {
        *args.get(i).unwrap_or_else(|| {
            eprintln!("spec '{spec}': family {family} needs more arguments");
            std::process::exit(2);
        })
    };
    Some(generate_family(family, seed, &arg))
}

/// The shared family dispatch used by `generate` and the spec syntax.
/// `arg(i)` yields the i-th numeric argument after the family name.
fn generate_family(family: &str, seed: u64, arg: &dyn Fn(usize) -> f64) -> CsrGraph {
    match family {
        "phat" => gen::p_hat_complement(arg(0) as u32, arg(1) as u8, seed),
        "gnp" => gen::gnp(arg(0) as u32, arg(1), seed),
        "ba" => gen::barabasi_albert(arg(0) as u32, arg(1) as u32, seed),
        "ws" => gen::watts_strogatz(arg(0) as u32, arg(1) as u32, arg(2), seed),
        "geometric" => gen::random_geometric(arg(0) as u32, arg(1), seed),
        "pace" => gen::pace_like(arg(0) as u32, arg(1) as u32, seed),
        "components" => gen::sparse_components(arg(0) as u32, arg(1) as u32, arg(2), seed),
        "bipartite" => gen::bipartite_gnp(arg(0) as u32, arg(1) as u32, arg(2), seed),
        "grid" => gen::grid2d(arg(0) as u32, arg(1) as u32),
        other => {
            eprintln!("unknown family '{other}'");
            std::process::exit(2);
        }
    }
}

fn load_graph(path: &str, format: Option<&str>) -> CsrGraph {
    let format = format.map(str::to_string).unwrap_or_else(|| {
        if path.ends_with(".dimacs") || path.ends_with(".clq") || path.ends_with(".col") {
            "dimacs".into()
        } else {
            "edgelist".into()
        }
    });
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let reader = BufReader::new(file);
    let result = match format.as_str() {
        "dimacs" => io::parse_dimacs(reader),
        "edgelist" => io::parse_edge_list(reader, None),
        other => {
            eprintln!("unknown format '{other}' (dimacs|edgelist)");
            std::process::exit(2);
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

/// Parses a `d012,crown,highdeg,split` stage list into a [`PrepConfig`]
/// (absent flag = every stage on).
fn parse_prep_rules(list: Option<&String>) -> PrepConfig {
    let Some(list) = list else {
        return PrepConfig::default();
    };
    let mut cfg = PrepConfig {
        low_degree: false,
        crown: false,
        high_degree: false,
        split_components: false,
        ..PrepConfig::default()
    };
    for rule in list.split(',').filter(|r| !r.is_empty()) {
        match rule {
            "d012" => cfg.low_degree = true,
            "crown" => cfg.crown = true,
            "highdeg" => cfg.high_degree = true,
            "split" => cfg.split_components = true,
            other => {
                eprintln!("unknown prep rule '{other}' (d012|crown|highdeg|split)");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn cmd_solve(args: &[String]) {
    let flags = parse_flags(
        args,
        &[
            "policy",
            "algorithm",
            "k",
            "deadline",
            "format",
            "blocks",
            "threads",
            "prep-rules",
        ],
        &["component-branching"],
        &["extensions", "prep"],
    );
    let Some(path) = flags.positional.first() else {
        eprintln!("solve: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    // --policy names the engine's SchedulePolicy; --algorithm is the
    // historical alias.
    let policy = flags
        .options
        .get("policy")
        .or_else(|| flags.options.get("algorithm"));
    let algorithm = match policy.map(String::as_str) {
        None | Some("hybrid") => Algorithm::Hybrid,
        Some("seq") | Some("sequential") => Algorithm::Sequential,
        Some("stack") | Some("stackonly") => Algorithm::StackOnly { start_depth: 8 },
        Some("steal") | Some("worksteal") | Some("workstealing") => Algorithm::WorkStealing,
        Some("compsteal") | Some("componentsteal") => Algorithm::ComponentSteal,
        Some(other) => {
            eprintln!("unknown policy '{other}' (seq|stack|hybrid|steal|compsteal)");
            std::process::exit(2);
        }
    };
    let mut builder = Solver::builder().algorithm(algorithm);
    if let Some(d) = flags.options.get("deadline") {
        builder = builder.deadline(Some(Duration::from_secs_f64(
            d.parse().expect("--deadline takes seconds"),
        )));
    }
    // --threads caps the resident thread blocks (one OS thread each);
    // --blocks is the historical alias.
    if let Some(b) = flags
        .options
        .get("threads")
        .or_else(|| flags.options.get("blocks"))
    {
        builder = builder.grid_limit(Some(b.parse().expect("--threads takes a count")));
    }
    if flags.switches.contains("extensions") {
        builder = builder.extensions(parvc::core::Extensions::ALL);
    }
    // `--component-branching` (default trigger) or
    // `--component-branching=<min-live>`.
    if let Some(v) = flags.options.get("component-branching") {
        let min_live: u32 = v.parse().unwrap_or_else(|_| {
            eprintln!("--component-branching takes a live-vertex count, got '{v}'");
            std::process::exit(2);
        });
        builder = builder.component_branching_params(SplitParams::with_min_live(min_live));
    } else if flags.switches.contains("component-branching") {
        builder = builder.component_branching(true);
    }
    if flags.switches.contains("prep") || flags.options.contains_key("prep-rules") {
        builder = builder.preprocess(parse_prep_rules(flags.options.get("prep-rules")));
    }
    let solver = builder.build();

    eprintln!("instance: |V|={}, |E|={}", g.num_vertices(), g.num_edges());
    match flags.options.get("k") {
        Some(k) => {
            let k: u32 = k.parse().expect("--k takes an integer");
            let r = solver.solve_pvc(&g, k);
            match &r.cover {
                Some(cover) => {
                    assert!(is_vertex_cover(&g, cover));
                    println!("yes: cover of size {} <= {k}", cover.len());
                    println!("{:?}", cover);
                }
                None if r.stats.timed_out => println!("unknown: budget exhausted"),
                None => println!("no: no vertex cover of size <= {k} exists"),
            }
            eprintln!(
                "{} tree nodes, {:.3}s",
                r.stats.tree_nodes,
                r.stats.seconds()
            );
        }
        None => {
            let r = solver.solve_mvc(&g);
            assert!(is_vertex_cover(&g, &r.cover));
            if r.stats.timed_out {
                println!("best cover found (NOT proven minimum): {}", r.size);
            } else {
                println!("minimum vertex cover: {}", r.size);
            }
            println!("{:?}", r.cover);
            eprintln!(
                "{} tree nodes, {:.3}s (greedy bound was {})",
                r.stats.tree_nodes,
                r.stats.seconds(),
                r.stats.greedy_size
            );
            if let Some(prep) = &r.stats.prep {
                eprintln!(
                    "prep: {:.1}% of vertices eliminated, {} forced, kernel |V|={} in {} components",
                    prep.elimination() * 100.0,
                    prep.forced,
                    prep.kernel_vertices,
                    prep.components
                );
            }
            let splits = r.stats.report.split_totals();
            if splits.checks > 0 {
                eprintln!(
                    "in-search splits: {} taken of {} checks, {} components donated to sub-searches",
                    splits.taken, splits.checks, splits.components
                );
            }
        }
    }
}

fn cmd_prep(args: &[String]) {
    let flags = parse_flags(args, &["format", "out", "rules"], &[], &[]);
    let Some(path) = flags.positional.first() else {
        eprintln!("prep: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let cfg = parse_prep_rules(flags.options.get("rules"));
    let start = std::time::Instant::now();
    let kernel = preprocess(&g, &cfg);
    let elapsed = start.elapsed();
    let s = &kernel.stats;

    println!(
        "original: |V|={} |E|={}",
        s.original_vertices, s.original_edges
    );
    println!(
        "{:<16} {:>10} {:>10} {:>7}",
        "rule", "covered", "excluded", "passes"
    );
    for r in &s.rules {
        println!(
            "{:<16} {:>10} {:>10} {:>7}",
            r.name, r.covered, r.excluded, r.passes
        );
    }
    println!(
        "kernel:   |V|={} |E|={} in {} components (largest {})",
        s.kernel_vertices, s.kernel_edges, s.components, s.largest_component
    );
    println!(
        "eliminated {:.1}% of vertices ({} forced into the cover, {} avoidable) \
         in {} rounds, {:.3}s",
        s.elimination() * 100.0,
        s.forced,
        s.original_vertices - s.kernel_vertices - s.forced,
        s.rounds,
        elapsed.as_secs_f64()
    );
    if kernel.is_fully_reduced() {
        let cover = kernel.lift(&[]);
        assert!(is_vertex_cover(&g, &cover));
        println!(
            "fully reduced: preprocessing alone proves the minimum vertex cover is {}",
            cover.len()
        );
    }
    if let Some(out) = flags.options.get("out") {
        let file = std::fs::File::create(out).expect("cannot create output file");
        io::write_dimacs(
            &kernel.kernel_graph(),
            "edge",
            std::io::BufWriter::new(file),
        )
        .expect("write failed");
        eprintln!("wrote the kernel (disjoint component union) to {out}");
    }
}

fn cmd_generate(args: &[String]) {
    let flags = parse_flags(args, &["seed", "out"], &[], &[]);
    let seed: u64 = flags
        .options
        .get("seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let p = &flags.positional;
    let Some(family) = p.first() else {
        eprintln!("generate: missing family");
        std::process::exit(2);
    };
    let get = |i: usize| -> f64 {
        p.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("generate: missing argument {i} for family {family}");
                std::process::exit(2);
            })
            .parse()
            .expect("numeric argument")
    };
    let g = generate_family(family, seed, &get);
    match flags.options.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).expect("cannot create output file");
            io::write_dimacs(&g, "edge", std::io::BufWriter::new(file)).expect("write failed");
            eprintln!(
                "wrote |V|={}, |E|={} to {path}",
                g.num_vertices(),
                g.num_edges()
            );
        }
        None => {
            io::write_dimacs(&g, "edge", std::io::stdout().lock()).expect("write failed");
        }
    }
}

fn cmd_analyze(args: &[String]) {
    let flags = parse_flags(args, &["format"], &[], &[]);
    let Some(path) = flags.positional.first() else {
        eprintln!("analyze: missing instance (file or generator spec)");
        std::process::exit(2);
    };
    let g = load_instance(path, flags.options.get("format").map(String::as_str));
    let stats = analysis::degree_stats(&g);
    let (_, components) = ops::connected_components(&g);
    println!("vertices:        {}", g.num_vertices());
    println!("edges:           {}", g.num_edges());
    println!("|E|/|V|:         {:.3}", analysis::edge_vertex_ratio(&g));
    println!("degree class:    {}", analysis::degree_class(&g));
    println!(
        "degrees:         min {} / mean {:.2} / max {} / stddev {:.2}",
        stats.min, stats.mean, stats.max, stats.std_dev
    );
    println!("components:      {components}");
    println!("triangles:       {}", analysis::triangle_count(&g));
    let core = kcore::core_decomposition(&g);
    let two_core = core.core_number.iter().filter(|&&c| c >= 2).count();
    println!(
        "degeneracy:      {} ({} of {} vertices survive the reduction-resistant 2-core)",
        core.degeneracy,
        two_core,
        g.num_vertices()
    );
    match matching::bipartition(&g) {
        Some(_) => {
            let cover = matching::konig_cover(&g).expect("bipartite");
            println!("bipartite:       yes — exact MVC by Kőnig: {}", cover.len());
        }
        None => {
            let lb = matching::greedy_maximal_matching(&g).len();
            let (ub, _) = parvc::core::greedy::greedy_mvc(&g);
            println!("bipartite:       no — MVC within [{lb}, {ub}] (matching LB, greedy UB)");
        }
    }
}

fn cmd_demo() {
    let g = gen::paper_example();
    println!(
        "the paper's Figure 2 graph ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    let solver = Solver::builder()
        .algorithm(Algorithm::Hybrid)
        .grid_limit(Some(4))
        .build();
    let r = solver.solve_mvc(&g);
    println!("minimum vertex cover: {} = {:?}", r.size, r.cover);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `docs/cli.md` is the committed output of `parvc help --markdown`.
    /// If this fails, regenerate it:
    /// `cargo run --release --bin parvc -- help --markdown > docs/cli.md`.
    #[test]
    fn cli_reference_doc_is_current() {
        let committed = include_str!("../../docs/cli.md");
        assert_eq!(
            committed,
            help_markdown(),
            "docs/cli.md is stale — regenerate with \
             `cargo run --release --bin parvc -- help --markdown > docs/cli.md`"
        );
    }

    /// Every documented subcommand exists and every subcommand is
    /// documented (no drift between the dispatcher and the reference).
    #[test]
    fn every_subcommand_is_documented() {
        let documented: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
        assert_eq!(
            documented,
            vec!["solve", "prep", "generate", "analyze", "demo", "help"]
        );
        for c in COMMANDS {
            assert!(c.usage.starts_with("parvc "), "{}: bad usage line", c.name);
            assert!(!c.summary.is_empty());
            assert!(c.example.starts_with("parvc"), "{}: bad example", c.name);
            for f in c.flags {
                assert!(f.flag.starts_with("--"), "{}: bad flag {}", c.name, f.flag);
                assert!(!f.desc.is_empty(), "{}: {} undocumented", c.name, f.flag);
            }
        }
    }
}
