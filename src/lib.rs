//! # parvc — Parallel Vertex Cover on a simulated GPU
//!
//! Reproduction of *"Parallel Vertex Cover Algorithms on GPUs"*
//! (Yamout, Barada, Jaljuli, Mouawad, El Hajj — IPDPS 2022).
//!
//! This meta-crate re-exports the workspace crates under one roof:
//!
//! * [`graph`] — static CSR graphs, generators, and IO ([`parvc_graph`]).
//! * [`worklist`] — the Broker Work Distributor global worklist,
//!   per-block local stacks, and work-stealing deques
//!   ([`parvc_worklist`]).
//! * [`simgpu`] — the GPU execution model: device specs, occupancy,
//!   cycle cost model, per-activity counters ([`parvc_simgpu`]).
//! * [`core`] — the shared branch-and-reduce engine and its scheduling
//!   policies (Sequential, StackOnly, Hybrid, WorkStealing) for MVC
//!   and PVC ([`parvc_core`]; see [`parvc_core::engine`] for the
//!   `SchedulePolicy` seam new schemes plug into).
//! * [`prep`] — one-shot kernelization (degree rules, crown/LP,
//!   high-degree) and connected-component decomposition in front of
//!   every policy ([`parvc_prep`]; enable with
//!   [`SolverBuilder::preprocess`](parvc_core::SolverBuilder::preprocess)).
//! * [`serve`] — the solver as a long-running service: the `parvc
//!   serve` line protocol, content-keyed result cache, and admission
//!   control ([`parvc_serve`]; protocol reference in `docs/serve.md`).
//!
//! ## Quickstart
//!
//! ```
//! use parvc::prelude::*;
//!
//! // A 5-cycle needs 3 vertices to cover all 5 edges.
//! let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
//! let solver = Solver::builder().algorithm(Algorithm::Hybrid).build();
//! let result = solver.solve_mvc(&g);
//! assert_eq!(result.size, 3);
//! assert!(is_vertex_cover(&g, &result.cover));
//! ```
//!
//! Start with `README.md` for the user-facing tour and
//! `ARCHITECTURE.md` for the cross-crate contracts.

pub use parvc_core as core;
pub use parvc_graph as graph;
pub use parvc_obs as obs;
pub use parvc_prep as prep;
pub use parvc_serve as serve;
pub use parvc_simgpu as simgpu;
pub use parvc_worklist as worklist;

/// Convenience re-exports covering the common entry points.
pub mod prelude {
    pub use parvc_core::{
        is_vertex_cover, Algorithm, ExecutorSpec, MvcResult, PrepConfig, PvcResult, Solver,
        SolverBuilder,
    };
    pub use parvc_graph::{CsrGraph, GraphBuilder};
    pub use parvc_simgpu::DeviceSpec;
}
