//! Micro-benchmarks for the three reduction rules on graphs that
//! exercise each rule specifically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parvc_core::bound::SearchBound;
use parvc_core::ops::Kernel;
use parvc_core::{BlockScratch, TreeNode};
use parvc_graph::gen;
use parvc_simgpu::counters::BlockCounters;
use parvc_simgpu::{CostModel, KernelVariant};

fn bench_reduce(c: &mut Criterion) {
    let cost = CostModel::default();
    let cases = [
        // Long paths: pure degree-one work.
        ("path_2000", gen::path(2000)),
        // Triangle-rich geometric graph: degree-two-triangle work.
        ("geometric_500", gen::random_geometric(500, 0.06, 3)),
        // Dense complement with a tight bound: high-degree work.
        ("p_hat_comp_200", gen::p_hat_complement(200, 2, 3)),
        // Power-law: mixed rules.
        ("ba_1000_3", gen::barabasi_albert(1000, 3, 3)),
    ];
    let mut g = c.benchmark_group("reduce_fixpoint");
    for (name, graph) in &cases {
        let greedy = parvc_core::greedy::greedy_mvc(graph).0;
        g.bench_with_input(BenchmarkId::from_parameter(name), graph, |b, graph| {
            let kernel = Kernel {
                block_size: 128,
                variant: KernelVariant::SharedMem,
                ..Kernel::sequential(graph, &cost)
            };
            let mut scratch = BlockScratch::new();
            b.iter(|| {
                let mut node = TreeNode::root(graph);
                let mut counters = BlockCounters::new(0);
                std::hint::black_box(kernel.reduce(
                    &mut node,
                    SearchBound::Mvc { best: greedy },
                    &mut scratch,
                    &mut counters,
                ));
            });
        });
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_approximation");
    g.sample_size(20);
    for (name, graph) in [
        ("p_hat_comp_150", gen::p_hat_complement(150, 2, 5)),
        ("ba_2000_4", gen::barabasi_albert(2000, 4, 5)),
        ("ws_1000", gen::watts_strogatz(1000, 4, 0.2, 5)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| std::hint::black_box(parvc_core::greedy::greedy_mvc(graph)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduce, bench_greedy);
criterion_main!(benches);
