//! Micro-benchmarks for the degree-array operations: node creation,
//! cloning (the stack/worklist copy), vertex and neighborhood removal,
//! and the find-max reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parvc_core::ops::Kernel;
use parvc_core::TreeNode;
use parvc_graph::gen;
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::{CostModel, KernelVariant};

fn bench_node_lifecycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_node");
    for n in [300u32, 1000, 10_000] {
        let graph = gen::gnp(n, (4.0 / n as f64).min(1.0), 9);
        g.bench_with_input(BenchmarkId::new("root", n), &graph, |b, graph| {
            b.iter(|| std::hint::black_box(TreeNode::root(graph)));
        });
        let node = TreeNode::root(&graph);
        g.bench_with_input(BenchmarkId::new("clone", n), &node, |b, node| {
            b.iter(|| std::hint::black_box(node.clone()));
        });
    }
    g.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let cost = CostModel::default();
    let graph = gen::p_hat_complement(300, 2, 11);
    let kernel = Kernel {
        block_size: 128,
        variant: KernelVariant::SharedMem,
        ..Kernel::sequential(&graph, &cost)
    };
    let root = TreeNode::root(&graph);

    let mut g = c.benchmark_group("graph_ops_phat300");
    g.bench_function("find_max_degree", |b| {
        let mut counters = BlockCounters::new(0);
        b.iter(|| std::hint::black_box(kernel.find_max_degree(&root, &mut counters)));
    });
    g.bench_function("remove_vertex", |b| {
        let mut counters = BlockCounters::new(0);
        b.iter_batched(
            || root.clone(),
            |mut node| {
                kernel.remove_vertex(&mut node, 0, Activity::RemoveMaxVertex, &mut counters);
                std::hint::black_box(node)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("remove_neighbors_of_max", |b| {
        let mut counters = BlockCounters::new(0);
        let vmax = kernel.find_max_degree(&root, &mut counters).unwrap();
        b.iter_batched(
            || root.clone(),
            |mut node| {
                kernel.remove_neighbors(&mut node, vmax, Activity::RemoveNeighbors, &mut counters);
                std::hint::black_box(node)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_node_lifecycle, bench_graph_ops);
criterion_main!(benches);
