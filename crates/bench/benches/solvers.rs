//! End-to-end solver benchmarks on small instances of each family —
//! the criterion-tracked regression companion to the table harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parvc_core::{Algorithm, Solver};
use parvc_graph::gen;
use parvc_simgpu::DeviceSpec;

fn solver(algorithm: Algorithm) -> Solver {
    Solver::builder()
        .algorithm(algorithm)
        .device(DeviceSpec::scaled(4))
        .grid_limit(Some(8))
        .build()
}

fn bench_mvc(c: &mut Criterion) {
    let cases = [
        ("p_hat_comp_100_2", gen::p_hat_complement(100, 2, 21)),
        ("ba_120_8", gen::barabasi_albert(120, 8, 21)),
        ("ws_200", gen::watts_strogatz(200, 4, 0.1, 21)),
    ];
    let mut g = c.benchmark_group("solve_mvc");
    g.sample_size(10);
    for (name, graph) in &cases {
        for (label, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("stackonly", Algorithm::StackOnly { start_depth: 6 }),
            ("hybrid", Algorithm::Hybrid),
        ] {
            g.bench_with_input(BenchmarkId::new(*name, label), graph, |b, graph| {
                let s = solver(algorithm);
                b.iter(|| std::hint::black_box(s.solve_mvc(graph).size));
            });
        }
    }
    g.finish();
}

fn bench_pvc(c: &mut Criterion) {
    let graph = gen::p_hat_complement(100, 2, 21);
    let min = solver(Algorithm::Sequential).solve_mvc(&graph).size;
    let mut g = c.benchmark_group("solve_pvc_phat100");
    g.sample_size(10);
    for (label, k) in [
        ("k_min_minus_1", min - 1),
        ("k_min", min),
        ("k_min_plus_1", min + 1),
    ] {
        for (alg_label, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("hybrid", Algorithm::Hybrid),
        ] {
            g.bench_with_input(BenchmarkId::new(label, alg_label), &graph, |b, graph| {
                let s = solver(algorithm);
                b.iter(|| std::hint::black_box(s.solve_pvc(graph, k).found()));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_mvc, bench_pvc);
criterion_main!(benches);
