//! Micro-benchmarks for the Broker Work Distributor: uncontended
//! latency, MPMC throughput under contention, and the termination
//! protocol's overhead.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parvc_worklist::{BrokerQueue, LocalStack, PopOutcome, Worklist};

fn bench_uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker_uncontended");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop", |b| {
        let q = BrokerQueue::with_capacity(1024);
        b.iter(|| {
            q.try_push(std::hint::black_box(42u64)).unwrap();
            std::hint::black_box(q.try_pop().unwrap());
        });
    });
    g.bench_function("stack_push_pop", |b| {
        let mut s = LocalStack::with_depth_bound(1024);
        b.iter(|| {
            s.push(std::hint::black_box(42u64)).unwrap();
            std::hint::black_box(s.pop().unwrap());
        });
    });
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker_mpmc");
    g.sample_size(10);
    for &threads in &[2u32, 4] {
        g.throughput(Throughput::Elements(20_000));
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let q = Arc::new(BrokerQueue::with_capacity(256));
                        let per_thread = 20_000 / threads as u64;
                        let start = Instant::now();
                        std::thread::scope(|s| {
                            for _ in 0..threads {
                                let q = Arc::clone(&q);
                                s.spawn(move || {
                                    for i in 0..per_thread {
                                        let mut item = i;
                                        loop {
                                            match q.try_push(item) {
                                                Ok(()) => break,
                                                Err(back) => {
                                                    item = back;
                                                    let _ = q.try_pop();
                                                }
                                            }
                                        }
                                        let _ = q.try_pop();
                                    }
                                });
                            }
                        });
                        total += start.elapsed();
                    }
                    total
                });
            },
        );
    }
    g.finish();
}

fn bench_termination(c: &mut Criterion) {
    c.bench_function("worklist_drain_tree_2workers", |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let wl = Arc::new(Worklist::<u32>::with_capacity(512));
                wl.seed(12); // binary tree of depth 12
                let start = Instant::now();
                std::thread::scope(|s| {
                    for _ in 0..2 {
                        let wl = Arc::clone(&wl);
                        s.spawn(move || {
                            let mut h = wl.handle();
                            let mut local = Vec::new();
                            loop {
                                let node = match local.pop() {
                                    Some(n) => n,
                                    None => match h.pop() {
                                        PopOutcome::Item(n) => n,
                                        PopOutcome::Done => break,
                                    },
                                };
                                if node > 0 {
                                    if h.len_hint() < 64 {
                                        if let Err(back) = h.add(node - 1) {
                                            local.push(back);
                                        }
                                    } else {
                                        local.push(node - 1);
                                    }
                                    local.push(node - 1);
                                }
                            }
                        });
                    }
                });
                total += start.elapsed();
            }
            total
        });
    });
}

criterion_group!(
    benches,
    bench_uncontended,
    bench_contended,
    bench_termination
);
criterion_main!(benches);
