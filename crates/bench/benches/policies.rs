//! Head-to-head of the four scheduling policies on a fixed instance
//! set — the criterion companion to the `SchedulePolicy` engine: one
//! group per instance family, one benchmark per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parvc_core::{Algorithm, Solver};
use parvc_graph::{gen, CsrGraph};
use parvc_simgpu::DeviceSpec;

fn policies() -> [(&'static str, Algorithm); 4] {
    [
        ("seq", Algorithm::Sequential),
        ("stack", Algorithm::StackOnly { start_depth: 6 }),
        ("hybrid", Algorithm::Hybrid),
        ("steal", Algorithm::WorkStealing),
    ]
}

fn instances() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("p_hat_comp_80_2", gen::p_hat_complement(80, 2, 31)),
        ("ba_100_6", gen::barabasi_albert(100, 6, 31)),
        ("grid_9x9", gen::grid2d(9, 9)),
        ("components_120", gen::sparse_components(120, 10, 0.35, 31)),
    ]
}

fn bench_policies_mvc(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_mvc");
    g.sample_size(10);
    for (name, graph) in &instances() {
        for (label, algorithm) in policies() {
            g.bench_with_input(BenchmarkId::new(*name, label), graph, |b, graph| {
                let solver = Solver::builder()
                    .algorithm(algorithm)
                    .device(DeviceSpec::scaled(4))
                    .grid_limit(Some(8))
                    .build();
                b.iter(|| std::hint::black_box(solver.solve_mvc(graph).size));
            });
        }
    }
    g.finish();
}

fn bench_policies_pvc_feasible(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_pvc_min");
    g.sample_size(10);
    for (name, graph) in &instances() {
        let min = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(graph)
            .size;
        for (label, algorithm) in policies() {
            g.bench_with_input(BenchmarkId::new(*name, label), graph, |b, graph| {
                let solver = Solver::builder()
                    .algorithm(algorithm)
                    .device(DeviceSpec::scaled(4))
                    .grid_limit(Some(8))
                    .build();
                b.iter(|| std::hint::black_box(solver.solve_pvc(graph, min).found()));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_policies_mvc, bench_policies_pvc_feasible);
criterion_main!(benches);
