//! # parvc-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation (§V):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — execution times, 3 implementations × 4 problem instances |
//! | `table2` | Table II — aggregate geometric-mean speedups by degree class |
//! | `table3` | Table III — PVC k=min on the p_hat suite vs prior work |
//! | `fig5` | Figure 5 — per-SM load distribution, StackOnly vs Hybrid, plus the WorkStealing per-victim steal-locality table |
//! | `fig6` | Figure 6 — breakdown of Hybrid kernel time by activity |
//! | `sensitivity` | §V-A in-text robustness numbers (block size, depth, worklist) |
//! | `ablation` | hybrid vs its two degenerate extremes (pure stacks / pure worklist) |
//! | `massive` | `Scale::Massive` — kernelization + component decomposition vs the unpreprocessed baseline on ≥100k-vertex sparse instances |
//! | `components` | in-search component branching (arXiv 2512.18334): split-on vs split-off tree-node counts, union-find vs BFS split-check cost, WorkStealing vs ComponentSteal |
//! | `smoke` | the CI perf-regression gate: a downsized deterministic `components` slice, JSON report + baseline comparison (`bench/baselines/components.json`) |
//! | `all` | everything above (except `massive` and `components`) in sequence |
//!
//! Run e.g. `cargo run -p parvc-bench --release --bin table1 -- --scale small --deadline 5`.
//!
//! Part of the `parvc` workspace — see `ARCHITECTURE.md` at the
//! repository root and `README.md` for a results tour.

#![warn(missing_docs)]

pub mod cli;
pub mod format;
pub mod json;
pub mod reports;
pub mod runner;
pub mod suite;
