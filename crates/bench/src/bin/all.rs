//! Runs every table and figure in sequence — the full evaluation.

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    let grid = reports::run_grid(&args);
    reports::table1(&args, &grid);
    reports::table2(&grid);
    reports::table3(&args);
    reports::fig5(&args);
    reports::steal_locality(&args);
    reports::fig6(&args);
    reports::sensitivity(&args);
    reports::ablation(&args);
    reports::extensions_ablation(&args);
    reports::weighted_report(&args);
}
