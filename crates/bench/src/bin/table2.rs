//! Regenerates the paper's **Table II** (aggregate geomean speedups).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    let grid = reports::run_grid(&args);
    reports::table2(&grid);
}
