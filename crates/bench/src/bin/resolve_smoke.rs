//! `resolve-smoke` — the CI gate for incremental re-solve.
//!
//! Runs a downsized, **deterministic** dynamic-graph slice: every
//! policy (one block, fixed seeds) solves each instance, applies a
//! seeded `gen::edit_script` batch through `Solver::resolve`, and is
//! checked against a from-scratch solve of the edited graph. The JSON
//! report records the initial and re-solve tree-node counts plus the
//! reuse accounting, and is compared against the checked-in baseline
//! `bench/baselines/resolve.json`:
//!
//! * more tree nodes than the baseline on any instance (initial or
//!   re-solve) fails the gate (exit 1);
//! * a changed optimum or changed reuse accounting fails immediately
//!   (correctness / invalidation bugs, not perf regressions);
//! * improvements print a note — refresh by re-running with
//!   `--json bench/baselines/resolve.json` and committing.
//!
//! ```text
//! cargo run --release -p parvc-bench --bin resolve_smoke -- \
//!     --json resolve-report.json --baseline bench/baselines/resolve.json
//! ```

use parvc_bench::json::{obj, parse, Value};
use parvc_core::{Algorithm, ExecutorSpec, Solver, SplitParams};
use parvc_graph::{gen, CsrGraph, EditScript};

/// Component-structured instances (where reuse pays) plus one
/// single-component graph (where resolve degenerates to a full
/// re-solve — gating that path too). Each carries a seeded edit
/// script: deterministic ops, ~half inserts so scripts both merge and
/// split components.
fn corpus() -> Vec<(&'static str, CsrGraph, EditScript)> {
    let mk = |name, g: CsrGraph, ops, seed| {
        let edits = gen::edit_script(&g, ops, 0.5, seed);
        (name, g, edits)
    };
    vec![
        mk(
            "components",
            gen::sparse_components(120, 12, 0.5, 3),
            12,
            0xd1,
        ),
        mk(
            "components_wide",
            gen::sparse_components(96, 8, 0.42, 11),
            10,
            0xd2,
        ),
        mk("grid", gen::grid2d(6, 6), 8, 0xd3),
        mk("gnp_sparse", gen::gnp(34, 0.12, 5), 8, 0xd4),
    ]
}

/// Every scheduling policy, pinned to one block so parallel policies
/// run deterministically.
fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("seq", Algorithm::Sequential),
        ("stack", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("steal", Algorithm::WorkStealing),
        ("batch", Algorithm::Batched),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

fn solver(algorithm: Algorithm, exec: ExecutorSpec) -> Solver {
    Solver::builder()
        .algorithm(algorithm)
        .grid_limit(Some(1))
        .component_branching_params(SplitParams::with_min_live(4))
        .executor(exec)
        .build()
}

fn main() {
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut exec = ExecutorSpec::Serial;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
        };
        match flag.as_str() {
            "--json" => json_out = Some(value("path")),
            "--baseline" => baseline = Some(value("path")),
            "--exec" => {
                exec = ExecutorSpec::parse(&value("serial|pooled[:threads]"))
                    .unwrap_or_else(|e| panic!("--exec: {e}"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --json <report path>  --baseline <baseline path>  \
                     --exec serial|pooled[:threads]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }

    let mut instances: Vec<Value> = Vec::new();
    for (name, g, edits) in corpus() {
        eprintln!(
            "[resolve-smoke] {name} ({} vertices, {} edit ops)...",
            g.num_vertices(),
            edits.len()
        );
        let mut rows: Vec<Value> = Vec::new();
        let mut size: Option<u32> = None;
        for (policy, algorithm) in policies() {
            let s = solver(algorithm, exec);
            let initial = s.solve_mvc(&g);
            let r = s
                .resolve(&g, &initial, &edits)
                .unwrap_or_else(|e| panic!("{name}/{policy}: script must apply: {e}"));
            let scratch = s.solve_mvc(&r.graph);
            assert!(
                parvc_core::is_vertex_cover(&r.graph, &r.result.cover),
                "{name}/{policy}: resolve returned a non-cover"
            );
            assert_eq!(
                r.result.size, scratch.size,
                "{name}/{policy}: incremental and from-scratch optima disagree"
            );
            match size {
                None => size = Some(r.result.size),
                Some(s) => assert_eq!(
                    r.result.size, s,
                    "{name}: policy {policy} disagrees on the resolved size"
                ),
            }
            rows.push(obj(vec![
                ("policy", Value::Str(policy.into())),
                ("initial_tree_nodes", Value::Num(initial.stats.tree_nodes)),
                ("resolve_tree_nodes", Value::Num(r.stats.resolve_tree_nodes)),
                (
                    "components_reused",
                    Value::Num(u64::from(r.stats.components_reused)),
                ),
                (
                    "components_invalidated",
                    Value::Num(u64::from(r.stats.components_invalidated)),
                ),
                ("warm_skips", Value::Num(u64::from(r.stats.warm_skips))),
            ]));
        }
        instances.push(obj(vec![
            ("name", Value::Str(name.into())),
            ("size", Value::Num(u64::from(size.expect("solved")))),
            ("policies", Value::Arr(rows)),
        ]));
    }
    let report = obj(vec![
        ("schema", Value::Num(1)),
        ("bench", Value::Str("resolve-smoke".into())),
        ("instances", Value::Arr(instances)),
    ]);
    let text = report.to_pretty();
    print!("{text}");
    if let Some(path) = &json_out {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[resolve-smoke] report written to {path}");
    }
    if let Some(path) = &baseline {
        let base_text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let base = parse(&base_text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        let regressions = compare(&base, &report);
        if regressions > 0 {
            eprintln!("[resolve-smoke] FAILED: {regressions} regression(s) against {path}");
            std::process::exit(1);
        }
        eprintln!("[resolve-smoke] ok: no regressions against {path}");
    }
}

/// Compares `current` against `base`. Tree-node counts gate as perf
/// (more = regression, fewer = improvement note); the optimum and the
/// reuse accounting gate as correctness (any change fails).
fn compare(base: &Value, current: &Value) -> u32 {
    let field = |v: &Value, key: &str| -> u64 {
        v.get(key)
            .and_then(Value::num)
            .unwrap_or_else(|| panic!("report row missing numeric field '{key}'"))
    };
    let find_instance = |doc: &Value, name: &str| -> Option<Value> {
        doc.get("instances")?
            .arr()?
            .iter()
            .find(|i| i.get("name").and_then(Value::str) == Some(name))
            .cloned()
    };
    let mut regressions = 0u32;
    for base_inst in base
        .get("instances")
        .and_then(Value::arr)
        .expect("baseline has instances")
    {
        let name = base_inst
            .get("name")
            .and_then(Value::str)
            .expect("baseline instance has a name");
        let Some(cur_inst) = find_instance(current, name) else {
            eprintln!("[resolve-smoke] REGRESSION {name}: instance missing from the report");
            regressions += 1;
            continue;
        };
        if field(base_inst, "size") != field(&cur_inst, "size") {
            eprintln!(
                "[resolve-smoke] REGRESSION {name}: resolved size changed {} -> {} (correctness!)",
                field(base_inst, "size"),
                field(&cur_inst, "size")
            );
            regressions += 1;
            continue;
        }
        for base_row in base_inst
            .get("policies")
            .and_then(Value::arr)
            .expect("baseline instance has policies")
        {
            let policy = base_row
                .get("policy")
                .and_then(Value::str)
                .expect("baseline row has a policy");
            let Some(cur_row) = cur_inst
                .get("policies")
                .and_then(Value::arr)
                .and_then(|rows| {
                    rows.iter()
                        .find(|r| r.get("policy").and_then(Value::str) == Some(policy))
                })
            else {
                eprintln!("[resolve-smoke] REGRESSION {name}/{policy}: policy missing");
                regressions += 1;
                continue;
            };
            for key in ["components_reused", "components_invalidated", "warm_skips"] {
                let (was, now) = (field(base_row, key), field(cur_row, key));
                if was != now {
                    eprintln!(
                        "[resolve-smoke] REGRESSION {name}/{policy}: {key} changed \
                         {was} -> {now} (invalidation accounting!)"
                    );
                    regressions += 1;
                }
            }
            for key in ["initial_tree_nodes", "resolve_tree_nodes"] {
                let (was, now) = (field(base_row, key), field(cur_row, key));
                if now > was {
                    eprintln!("[resolve-smoke] REGRESSION {name}/{policy}: {key} {was} -> {now}");
                    regressions += 1;
                } else if now < was {
                    eprintln!(
                        "[resolve-smoke] improvement {name}/{policy}: {key} {was} -> {now} \
                         (refresh the baseline to lock it in)"
                    );
                }
            }
        }
    }
    regressions
}
