//! `approx-smoke` — the CI gate for the approximate seeding tier.
//!
//! Runs a downsized, **deterministic** weighted slice: every policy
//! (one block, fixed seeds) solves each instance twice — once seeded
//! by the greedy heuristics, once by the bounded 2-approximation tier
//! (primal-dual cover + dual-strengthened split budgets) — and the two
//! optima must agree. The JSON report records tree-node counts per
//! seed and is compared against the checked-in baseline
//! `bench/baselines/approx.json`:
//!
//! * a changed optimum fails immediately (correctness, not perf);
//! * more tree nodes than the baseline on any cell fails the gate
//!   (exit 1);
//! * the approx seed must never visit more tree nodes than the greedy
//!   seed on the same cell, and must strictly improve somewhere —
//!   that is the bound actually paying for itself, asserted inline;
//! * improvements print a note — refresh by re-running with
//!   `--json bench/baselines/approx.json` and committing.
//!
//! ```text
//! cargo run --release -p parvc-bench --bin approx_smoke -- \
//!     --json approx-report.json --baseline bench/baselines/approx.json
//! ```

use parvc_bench::json::{obj, parse, Value};
use parvc_core::{Algorithm, ExecutorSpec, SeedStrategy, Solver, SplitParams};
use parvc_graph::{gen, CsrGraph};

/// Component-structured weighted instances. Degree-correlated weights
/// (hubs expensive) are where the primal-dual dual pulls ahead of the
/// pure matching bound, so split budgets tighten; uniform weights gate
/// the no-worse direction.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "components_deg",
            gen::with_degree_weights(gen::sparse_components(120, 12, 0.5, 3)),
        ),
        (
            "components_uni",
            gen::with_uniform_weights(gen::sparse_components(96, 8, 0.42, 23), 9, 3),
        ),
        (
            "ba_deg",
            gen::with_degree_weights(gen::barabasi_albert(60, 2, 3)),
        ),
        (
            "grid_uni",
            gen::with_uniform_weights(gen::grid2d(6, 6), 5, 0xa2),
        ),
        ("gnp_deg", gen::with_degree_weights(gen::gnp(36, 0.15, 16))),
        (
            "gnp_uni",
            gen::with_uniform_weights(gen::gnp(40, 0.1, 26), 20, 26 ^ 0x77),
        ),
    ]
}

/// Every scheduling policy, pinned to one block so parallel policies
/// run deterministically.
fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("seq", Algorithm::Sequential),
        ("stack", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("steal", Algorithm::WorkStealing),
        ("batch", Algorithm::Batched),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

fn solver(algorithm: Algorithm, seed: SeedStrategy, exec: ExecutorSpec) -> Solver {
    Solver::builder()
        .algorithm(algorithm)
        .weighted()
        .seed(seed)
        .grid_limit(Some(1))
        .component_branching_params(SplitParams::with_min_live(4))
        .executor(exec)
        .build()
}

fn main() {
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut exec = ExecutorSpec::Serial;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
        };
        match flag.as_str() {
            "--json" => json_out = Some(value("path")),
            "--baseline" => baseline = Some(value("path")),
            "--exec" => {
                exec = ExecutorSpec::parse(&value("serial|pooled[:threads]"))
                    .unwrap_or_else(|e| panic!("--exec: {e}"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --json <report path>  --baseline <baseline path>  \
                     --exec serial|pooled[:threads]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }

    let mut instances: Vec<Value> = Vec::new();
    let mut strict_improvements = 0u32;
    for (name, g) in corpus() {
        eprintln!(
            "[approx-smoke] {name} ({} vertices, {} edges)...",
            g.num_vertices(),
            g.num_edges()
        );
        let mut rows: Vec<Value> = Vec::new();
        let mut weight: Option<u64> = None;
        for (policy, algorithm) in policies() {
            let greedy = solver(algorithm, SeedStrategy::Greedy, exec).solve_mvc(&g);
            let approx = solver(algorithm, SeedStrategy::Approx, exec).solve_mvc(&g);
            assert!(
                parvc_core::is_vertex_cover(&g, &approx.cover),
                "{name}/{policy}: approx-seeded solve returned a non-cover"
            );
            assert_eq!(
                greedy.weight, approx.weight,
                "{name}/{policy}: seeds disagree on the optimum weight"
            );
            match weight {
                None => weight = Some(approx.weight),
                Some(w) => assert_eq!(
                    approx.weight, w,
                    "{name}: policy {policy} disagrees on the optimum weight"
                ),
            }
            let (gn, an) = (greedy.stats.tree_nodes, approx.stats.tree_nodes);
            assert!(
                an <= gn,
                "{name}/{policy}: approx seed visited more tree nodes \
                 ({an}) than the greedy seed ({gn})"
            );
            if an < gn {
                strict_improvements += 1;
            }
            rows.push(obj(vec![
                ("policy", Value::Str(policy.into())),
                ("greedy_tree_nodes", Value::Num(gn)),
                ("approx_tree_nodes", Value::Num(an)),
            ]));
        }
        instances.push(obj(vec![
            ("name", Value::Str(name.into())),
            ("weight", Value::Num(weight.expect("solved"))),
            ("policies", Value::Arr(rows)),
        ]));
    }
    assert!(
        strict_improvements > 0,
        "the approx seed never strictly beat the greedy seed anywhere — \
         the bounded tier is not pulling its weight on this corpus"
    );
    eprintln!("[approx-smoke] approx seed strictly improved {strict_improvements} cell(s)");
    let report = obj(vec![
        ("schema", Value::Num(1)),
        ("bench", Value::Str("approx-smoke".into())),
        ("instances", Value::Arr(instances)),
    ]);
    let text = report.to_pretty();
    print!("{text}");
    if let Some(path) = &json_out {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[approx-smoke] report written to {path}");
    }
    if let Some(path) = &baseline {
        let base_text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let base = parse(&base_text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        let regressions = compare(&base, &report);
        if regressions > 0 {
            eprintln!("[approx-smoke] FAILED: {regressions} regression(s) against {path}");
            std::process::exit(1);
        }
        eprintln!("[approx-smoke] ok: no regressions against {path}");
    }
}

/// Compares `current` against `base`. Tree-node counts gate as perf
/// (more = regression, fewer = improvement note); the optimum weight
/// gates as correctness (any change fails).
fn compare(base: &Value, current: &Value) -> u32 {
    let field = |v: &Value, key: &str| -> u64 {
        v.get(key)
            .and_then(Value::num)
            .unwrap_or_else(|| panic!("report row missing numeric field '{key}'"))
    };
    let find_instance = |doc: &Value, name: &str| -> Option<Value> {
        doc.get("instances")?
            .arr()?
            .iter()
            .find(|i| i.get("name").and_then(Value::str) == Some(name))
            .cloned()
    };
    let mut regressions = 0u32;
    for base_inst in base
        .get("instances")
        .and_then(Value::arr)
        .expect("baseline has instances")
    {
        let name = base_inst
            .get("name")
            .and_then(Value::str)
            .expect("baseline instance has a name");
        let Some(cur_inst) = find_instance(current, name) else {
            eprintln!("[approx-smoke] REGRESSION {name}: instance missing from the report");
            regressions += 1;
            continue;
        };
        if field(base_inst, "weight") != field(&cur_inst, "weight") {
            eprintln!(
                "[approx-smoke] REGRESSION {name}: optimum weight changed {} -> {} (correctness!)",
                field(base_inst, "weight"),
                field(&cur_inst, "weight")
            );
            regressions += 1;
            continue;
        }
        for base_row in base_inst
            .get("policies")
            .and_then(Value::arr)
            .expect("baseline instance has policies")
        {
            let policy = base_row
                .get("policy")
                .and_then(Value::str)
                .expect("baseline row has a policy");
            let Some(cur_row) = cur_inst
                .get("policies")
                .and_then(Value::arr)
                .and_then(|rows| {
                    rows.iter()
                        .find(|r| r.get("policy").and_then(Value::str) == Some(policy))
                })
            else {
                eprintln!("[approx-smoke] REGRESSION {name}/{policy}: policy missing");
                regressions += 1;
                continue;
            };
            for key in ["greedy_tree_nodes", "approx_tree_nodes"] {
                let (was, now) = (field(base_row, key), field(cur_row, key));
                if now > was {
                    eprintln!("[approx-smoke] REGRESSION {name}/{policy}: {key} {was} -> {now}");
                    regressions += 1;
                } else if now < was {
                    eprintln!(
                        "[approx-smoke] improvement {name}/{policy}: {key} {was} -> {now} \
                         (refresh the baseline to lock it in)"
                    );
                }
            }
        }
    }
    regressions
}
