//! Maintenance tool: probe the hardness of every suite instance.
//!
//! Prints per-instance exact MVC size and solve time per implementation
//! so the Small scale can be kept within a sane total budget.

use parvc_bench::cli::BenchArgs;
use parvc_bench::format::{fmt_seconds, Table};
use parvc_bench::runner::{make_solver, Impl};
use parvc_bench::suite::suite;

fn main() {
    let args = BenchArgs::parse();
    let mut table = Table::new(vec![
        "graph",
        "|V|",
        "|E|",
        "|E|/|V|",
        "class",
        "greedy",
        "min",
        "seq MVC",
        "hyb MVC",
        "nodes(hyb)",
    ]);
    for inst in suite(args.scale) {
        let hybrid = make_solver(Impl::Hybrid, &args, Some(args.deadline));
        let hy = hybrid.solve_mvc(&inst.graph);
        let seq = make_solver(Impl::Sequential, &args, Some(args.deadline));
        let sq = seq.solve_mvc(&inst.graph);
        table.row(vec![
            inst.name.clone(),
            inst.graph.num_vertices().to_string(),
            inst.graph.num_edges().to_string(),
            format!("{:.2}", inst.ratio()),
            inst.class.to_string(),
            hy.stats.greedy_size.to_string(),
            if hy.stats.timed_out {
                format!(">{}", hy.size)
            } else {
                hy.size.to_string()
            },
            fmt_seconds(sq.stats.seconds(), sq.stats.timed_out),
            fmt_seconds(hy.stats.seconds(), hy.stats.timed_out),
            hy.stats.tree_nodes.to_string(),
        ]);
    }
    table.print();
}
