//! Regenerates the paper's **Figure 6** (Hybrid MVC time breakdown).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::fig6(&args);
}
