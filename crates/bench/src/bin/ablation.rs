//! Ablation of the Hybrid donation policy: never-donate vs hybrid vs
//! always-donate, quantifying the §IV-A trade-off.

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::ablation(&args);
    reports::extensions_ablation(&args);
}
