//! Maintenance tool: sweep generator parameters to locate instances in
//! the hardness bands the paper's Table I exhibits (trivial / medium /
//! hybrid-only / infeasible).

use parvc_bench::cli::BenchArgs;
use parvc_bench::format::{fmt_seconds, Table};
use parvc_bench::runner::{make_solver, Impl};
use parvc_graph::{gen, CsrGraph};

fn main() {
    let args = BenchArgs::parse();
    let candidates: Vec<(String, CsrGraph)> = vec![
        (
            "phat_100_3".into(),
            gen::p_hat_complement(100, 3, 0x9a1 + 1003),
        ),
        ("ba_130_12".into(), gen::barabasi_albert(130, 12, 2)),
        ("ba_150_12".into(), gen::barabasi_albert(150, 12, 2)),
        ("ba_160_14".into(), gen::barabasi_albert(160, 14, 2)),
        ("ba_120_11".into(), gen::barabasi_albert(120, 11, 2)),
        ("pace_160_7".into(), gen::pace_like(160, 7, 4)),
        ("pace_170_7".into(), gen::pace_like(170, 7, 4)),
        ("pace_180_7".into(), gen::pace_like(180, 7, 4)),
        ("pace_190_8".into(), gen::pace_like(190, 8, 4)),
        (
            "comp_260_22".into(),
            gen::sparse_components(260, 22, 0.32, 7),
        ),
        (
            "comp_280_20".into(),
            gen::sparse_components(280, 20, 0.30, 7),
        ),
        ("ws_250_4_.1".into(), gen::watts_strogatz(250, 4, 0.1, 6)),
        ("ws_350_4_.15".into(), gen::watts_strogatz(350, 4, 0.15, 6)),
    ];

    let mut table = Table::new(vec![
        "candidate",
        "|V|",
        "|E|/|V|",
        "seq",
        "stack",
        "hyb",
        "nodes(hyb)",
        "min(long)",
    ]);
    for (name, g) in candidates {
        let hy = make_solver(Impl::Hybrid, &args, Some(args.deadline)).solve_mvc(&g);
        let sq = make_solver(Impl::Sequential, &args, Some(args.deadline)).solve_mvc(&g);
        let so = make_solver(Impl::StackOnly, &args, Some(args.deadline)).solve_mvc(&g);
        let long = make_solver(Impl::Hybrid, &args, Some(args.min_budget)).solve_mvc(&g);
        table.row(vec![
            name,
            g.num_vertices().to_string(),
            format!("{:.2}", g.num_edges() as f64 / g.num_vertices() as f64),
            fmt_seconds(sq.stats.seconds(), sq.stats.timed_out),
            fmt_seconds(so.stats.seconds(), so.stats.timed_out),
            fmt_seconds(hy.stats.seconds(), hy.stats.timed_out),
            hy.stats.tree_nodes.to_string(),
            if long.stats.timed_out {
                format!("≥{} (long)", long.size)
            } else {
                format!(
                    "{} @{}",
                    long.size,
                    fmt_seconds(long.stats.seconds(), false)
                )
            },
        ]);
    }
    table.print();
}
