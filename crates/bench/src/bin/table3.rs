//! Regenerates the paper's **Table III** (PVC k=min on the p_hat
//! suite, with prior work's published numbers quoted for context).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::table3(&args);
}
