//! Regenerates the paper's §V-A in-text sensitivity numbers
//! (block size, StackOnly start depth, Hybrid worklist size/threshold).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::sensitivity(&args);
}
