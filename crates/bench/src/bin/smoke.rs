//! `bench-smoke` — the CI perf-regression gate.
//!
//! Runs a downsized, **deterministic** slice of the `components`
//! benchmark (every policy at one block, no deadline, fixed seeds —
//! identical tree-node counts on every run), emits a JSON report, and
//! compares it against the checked-in baseline
//! `bench/baselines/components.json`:
//!
//! * any policy exploring **more tree nodes** than the baseline on any
//!   instance fails the gate (exit 1);
//! * a changed cover size fails immediately (that is a correctness
//!   bug, not a regression);
//! * improvements print a note — refresh the baseline by re-running
//!   with `--json bench/baselines/components.json` and committing.
//!
//! ```text
//! cargo run --release -p parvc-bench --bin smoke -- \
//!     --json bench-report.json --baseline bench/baselines/components.json
//! ```
//!
//! With `--trace-out`/`--metrics-out` every solve additionally runs
//! with a full recording sink: the Chrome trace of one representative
//! solve and the merged metrics across the whole matrix are written as
//! artifacts, while the baseline compare doubles as the telemetry
//! divergence gate (a sink that changed any tree-node count fails it).

use parvc_bench::json::{obj, parse, Value};
use parvc_core::{
    Algorithm, ExecutorSpec, MvcResult, Solver, SplitParams, TelemetryConfig, TelemetrySnapshot,
};
use parvc_graph::{gen, CsrGraph};

/// The downsized corpus: component-structured instances small enough
/// for exhaustive (no-deadline) solves in seconds, seeded so every run
/// explores the identical tree.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("components", gen::sparse_components(120, 12, 0.5, 3)),
        ("components_wide", gen::sparse_components(96, 8, 0.42, 11)),
        ("grid", gen::grid2d(6, 6)),
        ("ba", gen::barabasi_albert(70, 2, 7)),
        ("gnp_sparse", gen::gnp(34, 0.12, 5)),
        // A dense complement instance with a four-digit tree: gates
        // raw search regressions, not just the split machinery.
        ("phat_dense", gen::p_hat_complement(40, 2, 5)),
    ]
}

/// Every scheduling policy, pinned to one block so parallel policies
/// run deterministically.
fn policies() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("seq", Algorithm::Sequential),
        ("stack", Algorithm::StackOnly { start_depth: 4 }),
        ("hybrid", Algorithm::Hybrid),
        ("steal", Algorithm::WorkStealing),
        ("batch", Algorithm::Batched),
        ("compsteal", Algorithm::ComponentSteal),
    ]
}

fn solve(algorithm: Algorithm, exec: ExecutorSpec, telemetry: bool, g: &CsrGraph) -> MvcResult {
    let mut b = Solver::builder()
        .algorithm(algorithm)
        .grid_limit(Some(1))
        .component_branching_params(SplitParams::with_min_live(4))
        .executor(exec);
    if telemetry {
        b = b.telemetry(TelemetryConfig::default());
    }
    b.build().solve_mvc(g)
}

/// Folds one solve's snapshot into the run-wide aggregate written by
/// `--metrics-out`: counters and histogram populations are summed
/// (they are per-solve totals), gauges keep their maximum (they are
/// per-solve level readings, so the max is the run's high-water mark).
fn merge_snapshot(agg: &mut TelemetrySnapshot, snap: &TelemetrySnapshot) {
    agg.dropped_spans += snap.dropped_spans;
    agg.push_spans(snap.spans.iter().copied());
    for (&k, &v) in &snap.counters {
        *agg.counters.entry(k).or_insert(0) += v;
    }
    for (&k, &v) in &snap.gauges {
        let slot = agg.gauges.entry(k).or_insert(0);
        *slot = (*slot).max(v);
    }
    for (&k, h) in &snap.histograms {
        agg.histograms.entry(k).or_default().merge(h);
    }
}

fn main() {
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    // The executor is a pure wall-clock knob: tree nodes and split
    // counters are executor-invariant, so a pooled run gates against
    // the same serial baseline (CI runs both arms).
    let mut exec = ExecutorSpec::Serial;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
        };
        match flag.as_str() {
            "--json" => json_out = Some(value("path")),
            "--baseline" => baseline = Some(value("path")),
            "--trace-out" => trace_out = Some(value("path")),
            "--metrics-out" => metrics_out = Some(value("path")),
            "--exec" => {
                exec = ExecutorSpec::parse(&value("serial|pooled[:threads]"))
                    .unwrap_or_else(|e| panic!("--exec: {e}"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --json <report path>  --baseline <baseline path>  \
                     --trace-out <chrome trace path>  --metrics-out <metrics path>  \
                     --exec serial|pooled[:threads]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    // Telemetry-on runs still gate against the telemetry-off baseline:
    // the sink must not perturb tree nodes, so any divergence in a
    // telemetry arm fails the same compare() below.
    let telemetry = trace_out.is_some() || metrics_out.is_some();
    let mut agg = TelemetrySnapshot::default();
    let mut trace_doc: Option<String> = None;

    let mut instances: Vec<Value> = Vec::new();
    for (name, g) in corpus() {
        eprintln!("[smoke] {name} ({} vertices)...", g.num_vertices());
        let mut rows: Vec<Value> = Vec::new();
        let mut size: Option<u32> = None;
        for (policy, algorithm) in policies() {
            let r = solve(algorithm, exec, telemetry, &g);
            if let Some(snap) = &r.stats.telemetry {
                merge_snapshot(&mut agg, snap);
                // The trace artifact is one representative solve: the
                // component-steal policy on the components instance
                // exercises the richest span taxonomy.
                if name == "components" && policy == "compsteal" {
                    trace_doc = Some(snap.chrome_trace());
                }
            }
            assert!(
                parvc_core::is_vertex_cover(&g, &r.cover),
                "{name}/{policy}: returned a non-cover"
            );
            match size {
                None => size = Some(r.size),
                Some(s) => assert_eq!(
                    r.size, s,
                    "{name}: policy {policy} disagrees on the cover size"
                ),
            }
            let splits = r.stats.report.split_totals();
            rows.push(obj(vec![
                ("policy", Value::Str(policy.into())),
                ("tree_nodes", Value::Num(r.stats.tree_nodes)),
                ("split_checks", Value::Num(splits.checks)),
                ("splits_taken", Value::Num(splits.taken)),
                ("split_check_work", Value::Num(splits.check_work)),
            ]));
        }
        instances.push(obj(vec![
            ("name", Value::Str(name.into())),
            ("size", Value::Num(u64::from(size.expect("solved")))),
            ("policies", Value::Arr(rows)),
        ]));
    }
    let report = obj(vec![
        ("schema", Value::Num(1)),
        ("bench", Value::Str("components-smoke".into())),
        ("instances", Value::Arr(instances)),
    ]);
    let text = report.to_pretty();
    print!("{text}");
    if let Some(path) = &json_out {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[smoke] report written to {path}");
    }
    if let Some(path) = &trace_out {
        let doc = trace_doc.expect("the components/compsteal solve ran");
        std::fs::write(path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[smoke] chrome trace written to {path}");
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, agg.metrics_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[smoke] merged metrics written to {path}");
    }
    if let Some(path) = &baseline {
        let base_text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let base = parse(&base_text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        let regressions = compare(&base, &report);
        if regressions > 0 {
            eprintln!("[smoke] FAILED: {regressions} regression(s) against {path}");
            std::process::exit(1);
        }
        eprintln!("[smoke] ok: no tree-node regressions against {path}");
    }
}

/// Compares `current` against `base`, printing one line per finding.
/// Returns the number of gate-failing regressions.
fn compare(base: &Value, current: &Value) -> u32 {
    let field = |v: &Value, key: &str| -> u64 {
        v.get(key)
            .and_then(Value::num)
            .unwrap_or_else(|| panic!("report row missing numeric field '{key}'"))
    };
    let find_instance = |doc: &Value, name: &str| -> Option<Value> {
        doc.get("instances")?
            .arr()?
            .iter()
            .find(|i| i.get("name").and_then(Value::str) == Some(name))
            .cloned()
    };
    let mut regressions = 0u32;
    for base_inst in base
        .get("instances")
        .and_then(Value::arr)
        .expect("baseline has instances")
    {
        let name = base_inst
            .get("name")
            .and_then(Value::str)
            .expect("baseline instance has a name");
        let Some(cur_inst) = find_instance(current, name) else {
            eprintln!("[smoke] REGRESSION {name}: instance missing from the current report");
            regressions += 1;
            continue;
        };
        if field(base_inst, "size") != field(&cur_inst, "size") {
            eprintln!(
                "[smoke] REGRESSION {name}: cover size changed {} -> {} (correctness!)",
                field(base_inst, "size"),
                field(&cur_inst, "size")
            );
            regressions += 1;
            continue;
        }
        for base_row in base_inst
            .get("policies")
            .and_then(Value::arr)
            .expect("baseline instance has policies")
        {
            let policy = base_row
                .get("policy")
                .and_then(Value::str)
                .expect("baseline row has a policy");
            let Some(cur_row) = cur_inst
                .get("policies")
                .and_then(Value::arr)
                .and_then(|rows| {
                    rows.iter()
                        .find(|r| r.get("policy").and_then(Value::str) == Some(policy))
                })
            else {
                eprintln!("[smoke] REGRESSION {name}/{policy}: policy missing");
                regressions += 1;
                continue;
            };
            let (was, now) = (field(base_row, "tree_nodes"), field(cur_row, "tree_nodes"));
            if now > was {
                eprintln!("[smoke] REGRESSION {name}/{policy}: tree nodes {was} -> {now}");
                regressions += 1;
            } else if now < was {
                eprintln!(
                    "[smoke] improvement {name}/{policy}: tree nodes {was} -> {now} \
                     (refresh the baseline to lock it in)"
                );
            }
        }
    }
    regressions
}
