//! Regenerates the paper's **Table I** (and prints Table II from the
//! same grid, since the aggregation is free once the grid has run).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    let grid = reports::run_grid(&args);
    reports::table1(&args, &grid);
    reports::table2(&grid);
}
