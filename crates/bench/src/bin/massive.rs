//! Runs the **Scale::Massive** report: kernelization + component
//! decomposition vs the unpreprocessed baseline on ≥100k-vertex sparse
//! instances (`--scale` is ignored; this tier is always massive).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::massive(&args);
}
