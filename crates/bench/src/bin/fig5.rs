//! Regenerates the paper's **Figure 5** (per-SM load distribution).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::fig5(&args);
}
