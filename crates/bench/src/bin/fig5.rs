//! Regenerates the paper's **Figure 5** (per-SM load distribution),
//! plus the steal-locality companion table (per-victim steal traffic
//! of the WorkStealing policy, aggregated onto SMs).

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::fig5(&args);
    reports::steal_locality(&args);
}
