//! Runs the **weighted MVC** report: every scheduling policy on the
//! vertex-weighted corpus (uniform and degree-derived weight
//! channels), prep-off and prep-on, with the cardinality baseline's
//! weight alongside for contrast.

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::weighted_report(&args);
}
