//! Runs the **component branching** report: in-search split-on vs
//! split-off (arXiv 2512.18334) across the gnp/ba/grid/components
//! corpus plus the `massive_components` instance.

use parvc_bench::cli::BenchArgs;
use parvc_bench::reports;

fn main() {
    let args = BenchArgs::parse();
    reports::components_report(&args);
}
