//! Report generators: one function per table/figure of the paper.

use parvc_core::{
    is_vertex_cover, Algorithm, ExecutorSpec, Extensions, PrepConfig, Solver, SplitBackend,
    SplitBound, SplitParams,
};
use parvc_graph::CsrGraph;
use parvc_simgpu::counters::{Activity, SmLoad};
use parvc_simgpu::occupancy::{candidate_block_sizes, LaunchRequest};
use parvc_simgpu::DeviceSpec;

use crate::cli::BenchArgs;
use crate::format::{fmt_seconds, geomean, Table};
use crate::runner::{compute_min, make_solver, run_instance, Impl, InstanceRow, Problem};
use crate::suite::{fig5_pair, phat_suite, suite, Instance, Scale};

/// Runs the full Table I grid once (shared by `table1` and `table2`).
pub fn run_grid(args: &BenchArgs) -> Vec<(Instance, InstanceRow)> {
    suite(args.scale)
        .into_iter()
        .map(|inst| {
            eprintln!("[grid] {} ...", inst.name);
            let row = run_instance(&inst, args);
            (inst, row)
        })
        .collect()
}

/// **Table I** — execution time (seconds) of each implementation for
/// MVC and the three PVC instances across the suite.
pub fn table1(args: &BenchArgs, grid: &[(Instance, InstanceRow)]) {
    println!("\n=== Table I: execution time (seconds) ===");
    println!(
        "scale={:?}  budget={:.1}s/solve  blocks={}  sms={}  StackOnly depth={}",
        args.scale,
        args.deadline.as_secs_f64(),
        args.grid,
        args.sms,
        args.start_depth
    );
    let mut headers = vec![
        "graph".to_string(),
        "|V|".to_string(),
        "|E|".to_string(),
        "|E|/|V|".to_string(),
        "min".to_string(),
    ];
    for p in Problem::ALL {
        for i in Impl::ALL {
            headers.push(format!("{}:{}", short_problem(p), short_impl(i)));
        }
    }
    let mut t = Table::new(headers);
    let mut last_class = None;
    for (inst, row) in grid {
        if last_class != Some(inst.class) {
            t.separator();
            last_class = Some(inst.class);
        }
        let mut cells = vec![
            inst.name.clone(),
            inst.graph.num_vertices().to_string(),
            inst.graph.num_edges().to_string(),
            format!("{:.2}", inst.ratio()),
            row.min.map_or("?".into(), |m| m.to_string()),
        ];
        for pi in 0..Problem::ALL.len() {
            for ii in 0..Impl::ALL.len() {
                let c = &row.cells[pi][ii];
                cells.push(fmt_seconds(c.seconds, c.timed_out));
            }
        }
        t.row(cells);
    }
    t.print();
    println!(
        "(>budget = wall-clock budget hit, the analogue of the paper's \">2 hrs\" cells; \
         min '?' = exact MVC unknown within --min-budget)"
    );
}

/// **Table II** — aggregate geometric-mean speedups by degree class.
pub fn table2(grid: &[(Instance, InstanceRow)]) {
    println!("\n=== Table II: aggregate speedup (geometric mean, wall-clock) ===");
    println!("Timed-out cells are scored at the budget — a lower bound on the true speedup.");
    let mut t = Table::new(vec![
        "category",
        "Hyb/Stack MVC",
        "Hyb/Stack k=min-1",
        "Hyb/Stack k=min",
        "Hyb/Stack k=min+1",
        "Hyb/Seq MVC",
        "Hyb/Seq k=min-1",
        "Hyb/Seq k=min",
        "Hyb/Seq k=min+1",
    ]);
    for split in [
        Some(parvc_graph::analysis::DegreeClass::High),
        Some(parvc_graph::analysis::DegreeClass::Low),
        None,
    ] {
        let rows: Vec<&(Instance, InstanceRow)> = grid
            .iter()
            .filter(|(i, _)| split.is_none() || Some(i.class) == split)
            .collect();
        let mut cells = vec![split.map_or("Overall".to_string(), |c| c.to_string())];
        for base in [Impl::StackOnly, Impl::Sequential] {
            for (pi, _) in Problem::ALL.iter().enumerate() {
                let ratios: Vec<f64> = rows
                    .iter()
                    .map(|(_, r)| {
                        let hybrid = &r.cells[pi][impl_index(Impl::Hybrid)];
                        let baseline = &r.cells[pi][impl_index(base)];
                        (baseline.seconds / hybrid.seconds.max(1e-6)).max(1e-6)
                    })
                    .collect();
                cells.push(format!("{:.2}x", geomean(&ratios)));
            }
        }
        t.row(cells);
    }
    t.print();
}

fn impl_index(i: Impl) -> usize {
    Impl::ALL.iter().position(|&x| x == i).expect("impl in ALL")
}

fn short_problem(p: Problem) -> &'static str {
    match p {
        Problem::Mvc => "MVC",
        Problem::PvcMinMinus1 => "k-1",
        Problem::PvcMin => "k0",
        Problem::PvcMinPlus1 => "k+1",
    }
}

fn short_impl(i: Impl) -> &'static str {
    match i {
        Impl::Sequential => "Seq",
        Impl::StackOnly => "Stk",
        Impl::Hybrid => "Hyb",
        Impl::WorkStealing => "Stl",
        Impl::ComponentSteal => "Cst",
    }
}

/// **Table III** — PVC k=min on the p_hat suite: our three
/// implementations, with the paper's published numbers for context.
pub fn table3(args: &BenchArgs) {
    println!("\n=== Table III: PVC k=min on the p_hat suite (seconds) ===");
    println!(
        "Prior-work column quotes Abu-Khzam et al. [15] as reported by the paper \
         (different hardware and full-size instances — context only)."
    );
    // The paper's Table III numbers for the full-size instances.
    let prior: &[(&str, f64)] = &[
        ("p_hat_300_1", 4.4),
        ("p_hat_300_2", 5.0),
        ("p_hat_300_3", 2.8),
        ("p_hat_500_1", 10.7),
        ("p_hat_500_2", 10.1),
        ("p_hat_500_3", 6.0),
        ("p_hat_700_1", 21.0),
        ("p_hat_700_2", 14.8),
        ("p_hat_1000_1", 48.3),
        ("p_hat_1000_2", 30.8),
    ];
    let mut t = Table::new(vec![
        "graph",
        "Sequential",
        "StackOnly",
        "Hybrid",
        "WorkSteal",
        "paper: Abu-Khzam et al. [15]",
    ]);
    for inst in phat_suite(args.scale) {
        let Some(min) = compute_min(&inst, args) else {
            let mut cells = vec![inst.name.clone()];
            cells.extend(Impl::ALL.iter().map(|_| "?".to_string()));
            cells.push(String::new());
            t.row(cells);
            continue;
        };
        let mut cells = vec![inst.name.clone()];
        for imp in Impl::ALL {
            let solver = make_solver(imp, args, Some(args.deadline));
            let r = solver.solve_pvc(&inst.graph, min);
            cells.push(fmt_seconds(r.stats.seconds(), r.stats.timed_out));
        }
        cells.push(
            prior
                .iter()
                .find(|(n, _)| *n == inst.name)
                .map_or(String::from("-"), |(_, s)| format!("{s:.1}")),
        );
        t.row(cells);
    }
    t.print();
}

/// **Figure 5** — distribution of load (tree nodes visited per SM,
/// normalized to the mean) for StackOnly vs Hybrid on the suite's two
/// degree extremes × the four problem instances.
pub fn fig5(args: &BenchArgs) {
    println!("\n=== Figure 5: per-SM load distribution (normalized to mean) ===");
    println!(
        "blocks={} on {} SMs; load = tree nodes visited per SM / mean",
        args.grid, args.sms
    );
    let (high, low) = fig5_pair(args.scale);
    let mut t = Table::new(vec![
        "graph",
        "problem",
        "impl",
        "min",
        "q25",
        "median",
        "q75",
        "max",
        "imbalance",
    ]);
    for inst in [&high, &low] {
        let Some(min) = compute_min(inst, args) else {
            eprintln!("[fig5] {}: exact MVC unknown, skipping", inst.name);
            continue;
        };
        for p in Problem::ALL {
            for imp in [Impl::StackOnly, Impl::Hybrid] {
                let solver = make_solver(imp, args, Some(args.deadline));
                let report = match p.k(min) {
                    None => solver.solve_mvc(&inst.graph).stats.report,
                    Some(k) => solver.solve_pvc(&inst.graph, k).stats.report,
                };
                let load: &SmLoad = &report.sm_load;
                t.row(vec![
                    inst.name.clone(),
                    p.label().to_string(),
                    imp.label().to_string(),
                    format!("{:.2}", load.min()),
                    format!("{:.2}", load.quantile(0.25)),
                    format!("{:.2}", load.quantile(0.5)),
                    format!("{:.2}", load.quantile(0.75)),
                    format!("{:.2}", load.max()),
                    format!("{:.3}", load.imbalance()),
                ]);
            }
        }
        t.separator();
    }
    t.print();
    println!("(imbalance = coefficient of variation across SMs; 0 = perfectly balanced)");
}

/// **Figure 6** — breakdown of the Hybrid MVC kernel's time across the
/// eleven activities, per graph, with the cross-graph mean.
pub fn fig6(args: &BenchArgs) {
    println!("\n=== Figure 6: breakdown of Hybrid MVC execution time ===");
    let instances = suite(args.scale);
    let mut per_graph: Vec<(String, Vec<(Activity, f64)>)> = Vec::new();
    for inst in &instances {
        let solver = make_solver(Impl::Hybrid, args, Some(args.deadline));
        let r = solver.solve_mvc(&inst.graph);
        per_graph.push((inst.name.clone(), r.stats.report.activity_breakdown()));
    }
    let mut headers = vec!["activity".to_string()];
    headers.extend(per_graph.iter().map(|(n, _)| shorten(n)));
    headers.push("Mean".to_string());
    let mut t = Table::new(headers);
    for (ai, a) in Activity::ALL.iter().enumerate() {
        let mut cells = vec![a.label().to_string()];
        let mut sum = 0.0;
        for (_, shares) in &per_graph {
            let s = shares[ai].1;
            sum += s;
            cells.push(format!("{:.1}%", s * 100.0));
        }
        cells.push(format!(
            "{:.1}%",
            sum / per_graph.len().max(1) as f64 * 100.0
        ));
        t.row(cells);
    }
    // Family subtotals, matching the paper's three groups.
    t.separator();
    for family in [
        parvc_simgpu::counters::ActivityFamily::WorkDistribution,
        parvc_simgpu::counters::ActivityFamily::Reducing,
        parvc_simgpu::counters::ActivityFamily::Branching,
    ] {
        let mut cells = vec![format!("[{}]", family.label())];
        let mut sum = 0.0;
        for (_, shares) in &per_graph {
            let s: f64 = shares
                .iter()
                .filter(|(a, _)| a.family() == family)
                .map(|(_, s)| s)
                .sum();
            sum += s;
            cells.push(format!("{:.1}%", s * 100.0));
        }
        cells.push(format!(
            "{:.1}%",
            sum / per_graph.len().max(1) as f64 * 100.0
        ));
        t.row(cells);
    }
    t.print();
}

/// **Steal locality** — the per-victim steal counters of the
/// WorkStealing policy, aggregated onto SMs as a Figure-5-style
/// locality table: row = thief SM, column = victim SM, cell = steals.
/// A heavy column is an SM whose blocks' sub-trees fed the rest of the
/// device; the same-SM share on the diagonal is the locality the
/// paper's Figure 5 load histogram cannot show.
pub fn steal_locality(args: &BenchArgs) {
    println!("\n=== Steal locality: per-victim steal traffic (WorkStealing) ===");
    println!(
        "blocks={} on {} SMs; cell = steals by a thief on SM (row) from a victim on SM (col)",
        args.grid, args.sms
    );
    let device = DeviceSpec::scaled(args.sms);
    let (high, low) = fig5_pair(args.scale);
    for inst in [&high, &low] {
        let solver = make_solver(Impl::WorkStealing, args, Some(args.deadline));
        let r = solver.solve_mvc(&inst.graph);
        let sms = args.sms as usize;
        let mut matrix = vec![vec![0u64; sms]; sms];
        let mut total = 0u64;
        let mut same_sm = 0u64;
        for b in &r.stats.report.blocks {
            let thief = device.sm_of_block(b.block_id) as usize;
            for (&victim, &count) in &b.steals_by_victim {
                let victim = device.sm_of_block(victim) as usize;
                matrix[thief][victim] += count;
                total += count;
                if thief == victim {
                    same_sm += count;
                }
            }
        }
        let mut headers = vec![format!("{}: thief\\victim", inst.name)];
        headers.extend((0..sms).map(|s| format!("SM{s}")));
        headers.push("total".into());
        let mut t = Table::new(headers);
        for (thief, row) in matrix.iter().enumerate() {
            let mut cells = vec![format!("SM{thief}")];
            cells.extend(row.iter().map(u64::to_string));
            cells.push(row.iter().sum::<u64>().to_string());
            t.row(cells);
        }
        t.separator();
        let mut victims = vec!["[victim total]".to_string()];
        victims.extend((0..sms).map(|v| matrix.iter().map(|r| r[v]).sum::<u64>().to_string()));
        victims.push(total.to_string());
        t.row(victims);
        t.print();
        println!(
            "{}: {} steals, {:.1}% same-SM (locality), load imbalance {:.3}",
            inst.name,
            total,
            if total > 0 {
                same_sm as f64 / total as f64 * 100.0
            } else {
                0.0
            },
            r.stats.report.sm_load.imbalance()
        );
    }
}

/// **Scale::Massive** — the reduction-heavy regime (arXiv 1509.05870):
/// kernelize + decompose + per-component sub-searches vs the
/// unpreprocessed baseline under the same wall-clock budget. The
/// unpreprocessed *parallel* paths cannot even be planned at this
/// scale (per-block state exceeds the simulated device's memory, the
/// §III-C limit), so the baseline is Sequential.
pub fn massive(args: &BenchArgs) {
    println!(
        "\n=== Scale::Massive: kernelized vs unpreprocessed (budget {:.1}s) ===",
        args.deadline.as_secs_f64()
    );
    let mut t = Table::new(vec![
        "graph",
        "|V|",
        "|E|",
        "elim%",
        "comps",
        "largest",
        "prep+steal",
        "proven",
        "exec serial",
        "exec pooled",
        "work (Mcyc)",
        "seq (no prep)",
    ]);
    for inst in suite(Scale::Massive) {
        eprintln!("[massive] {} ...", inst.name);
        let prep_solver = solver_with(Impl::WorkStealing, args, |b| {
            b.preprocess(PrepConfig::default())
        });
        let r = prep_solver.solve_mvc(&inst.graph);
        assert!(
            is_vertex_cover(&inst.graph, &r.cover),
            "{}: kernelized path returned a non-cover",
            inst.name
        );
        let prep = r.stats.prep.as_ref().expect("prep stats present");
        // Executor A/B on the deterministic kernelized Sequential arm:
        // identical flat passes, dispatched inline vs chunked across
        // the shared worker pool. Model-cycle charges are computed from
        // instance quantities only, so the counters must bit-match and
        // the work column is one number, valid for both arms; only
        // wall-clock may differ.
        let exec_arm = |spec: ExecutorSpec| {
            solver_with(Impl::Sequential, args, |b| {
                b.preprocess(PrepConfig::default()).executor(spec)
            })
            .solve_mvc(&inst.graph)
        };
        let es = exec_arm(ExecutorSpec::Serial);
        let ep = exec_arm(ExecutorSpec::Pooled { threads: None });
        if !es.stats.timed_out && !ep.stats.timed_out {
            assert_eq!(
                es.size, ep.size,
                "{}: executor changed the answer",
                inst.name
            );
            assert_eq!(
                (es.stats.tree_nodes, es.stats.device_cycles),
                (ep.stats.tree_nodes, ep.stats.device_cycles),
                "{}: executor leaked into the search counters",
                inst.name
            );
        }
        let base = solver_with(Impl::Sequential, args, |b| b).solve_mvc(&inst.graph);
        t.row(vec![
            inst.name.clone(),
            inst.graph.num_vertices().to_string(),
            inst.graph.num_edges().to_string(),
            format!("{:.1}%", prep.elimination() * 100.0),
            prep.components.to_string(),
            prep.largest_component.to_string(),
            fmt_seconds(r.stats.seconds(), r.stats.timed_out),
            if r.stats.timed_out {
                "no (budget)"
            } else {
                "yes"
            }
            .to_string(),
            fmt_seconds(es.stats.seconds(), es.stats.timed_out),
            fmt_seconds(ep.stats.seconds(), ep.stats.timed_out),
            format!("{:.1}", es.stats.device_cycles as f64 / 1e6),
            fmt_seconds(base.stats.seconds(), base.stats.timed_out),
        ]);
    }
    t.print();
    println!(
        "(proven = cover verified and optimality proven within budget; \
         seq column is expected to hit the budget — that is the point. \
         exec serial/pooled = the kernelized Sequential arm under either \
         intra-block executor: counters bit-match by construction, only \
         wall-clock may differ)"
    );
}

/// **Component branching** — the split-on / split-off comparison of
/// arXiv 2512.18334's in-search component branching across the
/// gnp/ba/grid/components corpus plus the `massive_components`
/// instance (the latter through the prep pipeline, whose kernel
/// components are themselves re-split in-search).
///
/// Four arms per instance: the WorkStealing policy with splitting
/// off, the same policy with splitting on (inline component-sum
/// nodes, the default union-find backend + LP sibling bounds), the
/// same with the PR 3 baseline machinery (from-scratch BFS checks,
/// matching bounds), and the ComponentSteal policy (components donated
/// to the steal pool). All arms must agree on the cover size; the
/// headline columns are tree nodes explored relative to split-off and
/// the split-check cost (`check work` = vertex reads + adjacency
/// entries traversed by the connectivity backend), where union-find
/// must beat the BFS baseline on `massive_components`.
pub fn components_report(args: &BenchArgs) {
    println!(
        "\n=== Component branching: split-on vs split-off (budget {:.1}s/solve) ===",
        args.deadline.as_secs_f64()
    );
    // The massive row reuses the named suite instance so the report
    // never drifts from what `massive`/`Scale::Massive` benchmark.
    let massive_components = crate::suite::massive_suite()
        .into_iter()
        .find(|i| i.name == "massive_components")
        .expect("massive suite defines massive_components")
        .graph;
    let corpus: Vec<(&str, CsrGraph, bool)> = vec![
        ("gnp", parvc_graph::gen::gnp(60, 0.15, 7), false),
        ("ba", parvc_graph::gen::barabasi_albert(80, 2, 7), false),
        ("grid", parvc_graph::gen::grid2d(8, 8), false),
        (
            "components",
            parvc_graph::gen::sparse_components(260, 22, 0.32, 7),
            false,
        ),
        ("massive_components", massive_components, true),
    ];
    let mut t = Table::new(vec![
        "graph",
        "|V|",
        "|E|",
        "arm",
        "size",
        "tree nodes",
        "time(s)",
        "splits",
        "comps",
        "check work",
        "nodes vs off",
    ]);
    for (name, graph, prep) in &corpus {
        eprintln!("[components] {name} ...");
        let arm = |imp: Impl, split: Option<SplitParams>| {
            let solver = solver_with(imp, args, |mut b| {
                b = match split {
                    Some(params) => b.component_branching_params(params),
                    None => b.component_branching(false),
                };
                if *prep {
                    b = b.preprocess(PrepConfig::default());
                }
                b
            });
            solver.solve_mvc(graph)
        };
        // The PR 3 baseline machinery: from-scratch BFS connectivity,
        // matching sibling bounds.
        let bfs_params = SplitParams {
            backend: SplitBackend::Bfs,
            bound: SplitBound::Matching,
            ..SplitParams::default()
        };
        let runs = [
            ("split-off", arm(Impl::WorkStealing, None)),
            (
                "split-on",
                arm(Impl::WorkStealing, Some(SplitParams::default())),
            ),
            ("split-bfs", arm(Impl::WorkStealing, Some(bfs_params))),
            (
                "compsteal",
                arm(Impl::ComponentSteal, Some(SplitParams::default())),
            ),
        ];
        let baseline_nodes = runs[0].1.stats.tree_nodes.max(1);
        for (label, r) in &runs {
            assert!(
                is_vertex_cover(graph, &r.cover),
                "{name}/{label}: returned a non-cover"
            );
            let splits = r.stats.report.split_totals();
            t.row(vec![
                name.to_string(),
                graph.num_vertices().to_string(),
                graph.num_edges().to_string(),
                label.to_string(),
                r.size.to_string(),
                r.stats.tree_nodes.to_string(),
                fmt_seconds(r.stats.seconds(), r.stats.timed_out),
                splits.taken.to_string(),
                splits.components.to_string(),
                splits.check_work.to_string(),
                format!("{:.2}x", r.stats.tree_nodes as f64 / baseline_nodes as f64),
            ]);
        }
        // The agreement / strictly-fewer-nodes properties only hold
        // for completed solves: a timed-out arm reports best-so-far,
        // which the table renders as a >budget cell instead.
        if runs.iter().all(|(_, r)| !r.stats.timed_out) {
            let sizes: Vec<u32> = runs.iter().map(|(_, r)| r.size).collect();
            assert!(
                sizes.windows(2).all(|w| w[0] == w[1]),
                "{name}: arms disagree on the cover size ({sizes:?})"
            );
            // The headline property: splitting explores strictly fewer
            // tree nodes on component-structured instances.
            if name.contains("components") {
                assert!(
                    runs[1].1.stats.tree_nodes < runs[0].1.stats.tree_nodes,
                    "{name}: split-on must explore strictly fewer nodes \
                     ({} >= {})",
                    runs[1].1.stats.tree_nodes,
                    runs[0].1.stats.tree_nodes,
                );
            }
            // The tentpole cost property: the incremental union-find
            // backend does strictly less connectivity work than the
            // from-scratch BFS on the massive component-structured
            // instance.
            if *name == "massive_components" {
                let uf = runs[1].1.stats.report.split_totals();
                let bfs = runs[2].1.stats.report.split_totals();
                assert!(
                    uf.check_work < bfs.check_work,
                    "{name}: union-find must do strictly less split-check work \
                     than the BFS baseline ({} >= {})",
                    uf.check_work,
                    bfs.check_work,
                );
            }
        } else {
            eprintln!("[components] {name}: budget hit — agreement checks skipped");
        }
        t.separator();
    }
    t.print();
    let hist_note: Vec<String> = (0..parvc_simgpu::counters::SplitCounters::HIST_BUCKETS)
        .map(|i| parvc_simgpu::counters::SplitCounters::bucket_label(i).to_string())
        .collect();
    println!(
        "(splits = component-sum nodes taken; comps = sub-searches spawned; \
         check work = vertex reads + adjacency entries traversed by the \
         connectivity backend; size histogram buckets: {})",
        hist_note.join(", ")
    );
}

/// **Weighted MVC** — the vertex-weighted workload across every
/// scheduling policy, on the gnp/ba/grid/components corpus with
/// uniform random weights in `1..=10` plus a degree-weighted
/// preferential-attachment row (hubs expensive — the regime where the
/// weighted optimum diverges hardest from the cardinality one). Each
/// row reports the cardinality baseline's weight next to the weighted
/// optimum, so the table shows what running the *right* objective
/// buys; completed arms are asserted to agree across policies and
/// prep-on/prep-off.
pub fn weighted_report(args: &BenchArgs) {
    println!(
        "\n=== Weighted MVC: every policy, weight units (budget {:.1}s/solve) ===",
        args.deadline.as_secs_f64()
    );
    let corpus: Vec<(&str, CsrGraph)> = vec![
        (
            "gnp:w=uniform",
            parvc_graph::gen::with_uniform_weights(parvc_graph::gen::gnp(60, 0.15, 7), 10, 7),
        ),
        (
            "ba:w=uniform",
            parvc_graph::gen::with_uniform_weights(
                parvc_graph::gen::barabasi_albert(80, 2, 7),
                10,
                7,
            ),
        ),
        (
            "grid:w=uniform",
            parvc_graph::gen::with_uniform_weights(parvc_graph::gen::grid2d(8, 8), 10, 7),
        ),
        (
            "components:w=uniform",
            parvc_graph::gen::with_uniform_weights(
                parvc_graph::gen::sparse_components(260, 22, 0.32, 7),
                10,
                7,
            ),
        ),
        (
            "ba:w=degree",
            parvc_graph::gen::with_degree_weights(parvc_graph::gen::barabasi_albert(70, 2, 9)),
        ),
    ];
    let impls = [
        Impl::Sequential,
        Impl::StackOnly,
        Impl::Hybrid,
        Impl::WorkStealing,
        Impl::ComponentSteal,
    ];
    let mut t = Table::new(vec![
        "graph",
        "|V|",
        "|E|",
        "arm",
        "weight",
        "|S|",
        "card. weight",
        "tree nodes",
        "time(s)",
    ]);
    for (name, graph) in &corpus {
        eprintln!("[weighted] {name} ...");
        // The cardinality baseline: what ignoring the weights costs.
        let baseline = solver_with(Impl::Sequential, args, |b| b).solve_mvc(graph);
        let mut completed: Vec<(String, u64)> = Vec::new();
        for imp in impls {
            for prep in [false, true] {
                let solver = solver_with(imp, args, |mut b| {
                    b = b.weighted();
                    if prep {
                        b = b.preprocess(PrepConfig::default());
                    }
                    b
                });
                let r = solver.solve_mvc(graph);
                assert!(
                    is_vertex_cover(graph, &r.cover),
                    "{name}/{}: returned a non-cover",
                    imp.label()
                );
                assert_eq!(r.weight, graph.cover_weight(&r.cover));
                let arm = format!("{}{}", imp.label(), if prep { "+prep" } else { "" });
                t.row(vec![
                    name.to_string(),
                    graph.num_vertices().to_string(),
                    graph.num_edges().to_string(),
                    arm.clone(),
                    r.weight.to_string(),
                    r.size.to_string(),
                    baseline.weight.to_string(),
                    r.stats.tree_nodes.to_string(),
                    fmt_seconds(r.stats.seconds(), r.stats.timed_out),
                ]);
                if !r.stats.timed_out {
                    completed.push((arm, r.weight));
                }
            }
        }
        if let Some((first_arm, first)) = completed.first().cloned() {
            for (arm, w) in &completed {
                assert_eq!(
                    *w, first,
                    "{name}: {arm} disagrees with {first_arm} on the optimum weight"
                );
            }
            assert!(
                first <= baseline.weight,
                "{name}: the weighted optimum cannot exceed the cardinality cover's weight"
            );
        } else {
            eprintln!("[weighted] {name}: budget hit on every arm — agreement checks skipped");
        }
        t.separator();
    }
    t.print();
    println!(
        "(weight = minimized objective; card. weight = what the size-minimal cover weighs — \
         the gap is the payoff of weight-aware search)"
    );
}

fn shorten(name: &str) -> String {
    name.replace("p_hat_", "ph")
        .replace("_like", "")
        .replace("wiki_link_", "wiki_")
        .replace("vc_exact_", "vce_")
        .replace("power_grid", "pgrid")
        .replace("sister_cities", "sister")
}

/// **§V-A sensitivity** — robustness to sub-optimal block size,
/// StackOnly start depth, and Hybrid worklist size/threshold. Reported
/// as geomean and worst-case slowdown of the worst configuration vs the
/// best, mirroring the paper's in-text numbers.
pub fn sensitivity(args: &BenchArgs) {
    println!("\n=== §V-A sensitivity analysis ===");
    let reps = representative_subset(args);
    println!(
        "subset: {}",
        reps.iter()
            .map(|i| i.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // (a) Block size: affects model device time via ceil(n/B); the
    // metric is simulated device cycles.
    for (label, imp) in [("StackOnly", Impl::StackOnly), ("Hybrid", Impl::Hybrid)] {
        let mut worst_over_best = Vec::new();
        let mut worst_case: f64 = 0.0;
        for inst in &reps {
            let req = LaunchRequest {
                num_vertices: inst.graph.num_vertices(),
                stack_depth: 32,
                worklist_entries: 0,
                force_variant: None,
                force_block_size: None,
            };
            let device = DeviceSpec::scaled(args.sms);
            let mut cycles = Vec::new();
            for bs in candidate_block_sizes(&device, &req) {
                let solver = solver_with(imp, args, |b| b.block_size(bs));
                let r = solver.solve_mvc(&inst.graph);
                if !r.stats.timed_out {
                    cycles.push(r.stats.device_cycles.max(1) as f64);
                }
            }
            if cycles.len() >= 2 {
                let best = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
                let worst = cycles.iter().cloned().fold(0.0, f64::max);
                worst_over_best.push(worst / best);
                worst_case = worst_case.max(worst / best);
            }
        }
        println!(
            "block size ({label}): worst-config slowdown geomean {:.2}x, worst case {:.2}x \
             (paper: {} avg / {} worst)",
            geomean(&worst_over_best),
            worst_case,
            if imp == Impl::StackOnly {
                "1.55x"
            } else {
                "1.39x"
            },
            if imp == Impl::StackOnly {
                "2.40x"
            } else {
                "1.80x"
            },
        );
    }

    // (b) StackOnly start depth (wall time, like the paper).
    {
        let mut ratios = Vec::new();
        let mut worst: f64 = 0.0;
        for inst in &reps {
            let mut times = Vec::new();
            for depth in [4u32, 8, 12] {
                let solver = Solver::builder()
                    .algorithm(Algorithm::StackOnly { start_depth: depth })
                    .device(DeviceSpec::scaled(args.sms))
                    .grid_limit(Some(args.grid))
                    .deadline(Some(args.deadline))
                    .build();
                let r = solver.solve_mvc(&inst.graph);
                if !r.stats.timed_out {
                    times.push(r.stats.seconds().max(1e-4));
                }
            }
            if times.len() >= 2 {
                let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
                let worst_t = times.iter().cloned().fold(0.0, f64::max);
                ratios.push(worst_t / best);
                worst = worst.max(worst_t / best);
            }
        }
        println!(
            "StackOnly start depth {{4,8,12}}: worst-config slowdown geomean {:.2}x, worst case \
             {:.2}x (paper: 1.18x avg / 1.37x worst)",
            geomean(&ratios),
            worst
        );
    }

    // (c) Hybrid worklist capacity × threshold (wall time).
    {
        let mut ratios = Vec::new();
        let mut worst: f64 = 0.0;
        for inst in &reps {
            let mut times = Vec::new();
            for cap in [1usize << 10, 1 << 12, 1 << 14] {
                for frac in [0.25, 0.5, 0.75, 1.0] {
                    let solver = solver_with(Impl::Hybrid, args, |b| {
                        b.worklist_capacity(cap).threshold_frac(frac)
                    });
                    let r = solver.solve_mvc(&inst.graph);
                    if !r.stats.timed_out {
                        times.push(r.stats.seconds().max(1e-4));
                    }
                }
            }
            if times.len() >= 2 {
                let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
                let worst_t = times.iter().cloned().fold(0.0, f64::max);
                ratios.push(worst_t / best);
                worst = worst.max(worst_t / best);
            }
        }
        println!(
            "Hybrid worklist size x threshold: worst-config slowdown geomean {:.2}x, worst case \
             {:.2}x (paper: 1.18x avg / 1.32x worst)",
            geomean(&ratios),
            worst
        );
    }
}

fn solver_with(
    imp: Impl,
    args: &BenchArgs,
    f: impl FnOnce(parvc_core::SolverBuilder) -> parvc_core::SolverBuilder,
) -> Solver {
    let algorithm = match imp {
        Impl::Sequential => Algorithm::Sequential,
        Impl::StackOnly => Algorithm::StackOnly {
            start_depth: args.start_depth,
        },
        Impl::Hybrid => Algorithm::Hybrid,
        Impl::WorkStealing => Algorithm::WorkStealing,
        Impl::ComponentSteal => Algorithm::ComponentSteal,
    };
    f(Solver::builder()
        .algorithm(algorithm)
        .device(DeviceSpec::scaled(args.sms))
        .grid_limit(Some(args.grid))
        .deadline(Some(args.deadline))
        .executor(args.exec))
    .build()
}

/// Medium-hard instances used for sweeps (hard enough to measure,
/// finishing well within the budget).
fn representative_subset(args: &BenchArgs) -> Vec<Instance> {
    let names = [
        "p_hat_150_3",
        "p_hat_200_2",
        "wiki_link_lo_like",
        "sister_cities_like",
    ];
    suite(args.scale)
        .into_iter()
        .filter(|i| names.contains(&i.name.as_str()))
        .collect()
}

/// **Extensions ablation** — the paper-faithful rule set vs the two
/// optional strengthenings (domination rule, matching lower bound):
/// how much smaller does the search tree get, and at what overhead?
pub fn extensions_ablation(args: &BenchArgs) {
    println!("\n=== Ablation: optional extensions beyond the paper's rules ===");
    let reps = representative_subset(args);
    let mut t = Table::new(vec![
        "graph",
        "extensions",
        "time(s)",
        "tree nodes",
        "vs baseline",
    ]);
    for inst in &reps {
        let mut baseline_nodes = 0u64;
        for (label, ext) in [
            ("none (paper-faithful)", Extensions::NONE),
            (
                "+domination",
                Extensions {
                    domination_rule: true,
                    ..Extensions::NONE
                },
            ),
            (
                "+matching LB",
                Extensions {
                    matching_lower_bound: true,
                    ..Extensions::NONE
                },
            ),
            ("+both", Extensions::ALL),
        ] {
            let solver = solver_with(Impl::Hybrid, args, |b| b.extensions(ext));
            let r = solver.solve_mvc(&inst.graph);
            if ext == Extensions::NONE {
                baseline_nodes = r.stats.tree_nodes.max(1);
            }
            t.row(vec![
                inst.name.clone(),
                label.to_string(),
                fmt_seconds(r.stats.seconds(), r.stats.timed_out),
                r.stats.tree_nodes.to_string(),
                format!(
                    "{:.2}x nodes",
                    r.stats.tree_nodes as f64 / baseline_nodes as f64
                ),
            ]);
        }
        t.separator();
    }
    t.print();
}

/// **Ablation** — the Hybrid scheme vs its two degenerate extremes,
/// quantifying §IV-A's trade-off: a pure global worklist explodes and
/// serializes on the queue; pure local stacks starve idle blocks.
pub fn ablation(args: &BenchArgs) {
    println!("\n=== Ablation: donation policy (threshold) extremes ===");
    let reps = representative_subset(args);
    let mut t = Table::new(vec![
        "graph",
        "policy",
        "time(s)",
        "device cycles",
        "tree nodes",
        "donated",
        "bounced",
        "imbalance",
    ]);
    for inst in &reps {
        for (label, frac, cap) in [
            ("never-donate (pure stacks)", 0.0, 1usize << 14),
            ("hybrid (0.25 x 16K)", 0.25, 1 << 14),
            ("hybrid (0.75 x 16K)", 0.75, 1 << 14),
            ("always-donate (pure worklist)", 1.0, 1 << 20),
        ] {
            let solver = solver_with(Impl::Hybrid, args, |b| {
                b.worklist_capacity(cap).threshold_frac(frac)
            });
            let r = solver.solve_mvc(&inst.graph);
            let donated: u64 = r.stats.report.blocks.iter().map(|b| b.nodes_donated).sum();
            let bounced: u64 = r
                .stats
                .report
                .blocks
                .iter()
                .map(|b| b.donations_bounced)
                .sum();
            t.row(vec![
                inst.name.clone(),
                label.to_string(),
                fmt_seconds(r.stats.seconds(), r.stats.timed_out),
                r.stats.device_cycles.to_string(),
                r.stats.tree_nodes.to_string(),
                donated.to_string(),
                bounced.to_string(),
                format!("{:.3}", r.stats.report.sm_load.imbalance()),
            ]);
        }
        t.separator();
    }
    t.print();
}
