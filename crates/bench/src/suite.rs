//! The benchmark instance suite.
//!
//! The paper's graphs (DIMACS p_hat complements, KONECT, SNAP, PACE
//! 2019) are replaced by generated stand-ins that preserve the family
//! trait driving search-tree behaviour: density class and degree spread
//! (see DESIGN.md §4). `Scale::Small` shrinks |V| so the whole suite
//! runs in minutes on a laptop-class host; `Scale::Paper` uses the
//! paper's instance sizes (expect hours, as the paper's Table I did).

use parvc_graph::analysis::{degree_class, DegreeClass};
use parvc_graph::{gen, CsrGraph};

/// Instance scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk instances preserving density class (default).
    Small,
    /// The paper's |V| / densities. Slow by design.
    Paper,
    /// The reduction-heavy regime of arXiv 1509.05870: ≥100k-vertex
    /// sparse instances where per-node search is hopeless and only the
    /// kernelized path (`SolverBuilder::preprocess`) finishes. Used by
    /// the `massive` report; the classic tables are not meaningful at
    /// this scale.
    Massive,
}

/// One benchmark instance.
pub struct Instance {
    /// Stand-in name (mirrors the paper's Table I naming).
    pub name: String,
    /// The paper instance this stands in for.
    pub paper_name: &'static str,
    /// High/low degree category (Table II's split).
    pub class: DegreeClass,
    /// The graph.
    pub graph: CsrGraph,
}

impl Instance {
    fn new(name: &str, paper_name: &'static str, graph: CsrGraph) -> Self {
        Instance {
            name: name.to_string(),
            paper_name,
            class: degree_class(&graph),
            graph,
        }
    }

    /// `|E| / |V|`, as Table I reports.
    pub fn ratio(&self) -> f64 {
        parvc_graph::analysis::edge_vertex_ratio(&self.graph)
    }
}

/// The p_hat-complement sub-suite (Tables I and III, Figure 5's
/// high-degree pick). Sizes by scale; classes 1–3 per size.
pub fn phat_suite(scale: Scale) -> Vec<Instance> {
    let sizes: &[(u32, &[u8])] = match scale {
        Scale::Small => &[(100, &[1, 2, 3]), (150, &[2, 3]), (200, &[2, 3])],
        // Dense p_hat complements have no massive-sparse analogue; the
        // Massive tier reuses the paper sizes so `table3 --scale
        // massive` still means something.
        Scale::Paper | Scale::Massive => &[
            (300, &[1, 2, 3]),
            (500, &[1, 2, 3]),
            (700, &[1, 2]),
            (1000, &[1, 2]),
        ],
    };
    let mut out = Vec::new();
    for &(n, classes) in sizes {
        for &c in classes {
            let seed = 0x9a1 + n as u64 * 10 + c as u64;
            out.push(Instance::new(
                &format!("p_hat_{n}_{c}"),
                phat_paper_name(c),
                gen::p_hat_complement(n, c, seed),
            ));
        }
    }
    out
}

fn phat_paper_name(class: u8) -> &'static str {
    match class {
        1 => "p_hat*-1 (DIMACS, complemented)",
        2 => "p_hat*-2 (DIMACS, complemented)",
        _ => "p_hat*-3 (DIMACS, complemented)",
    }
}

/// The full Table I suite: p_hat complements plus the KONECT / SNAP /
/// PACE stand-ins, high-degree group first (the paper's row order).
pub fn suite(scale: Scale) -> Vec<Instance> {
    if scale == Scale::Massive {
        return massive_suite();
    }
    let mut out = phat_suite(scale);
    match scale {
        Scale::Massive => unreachable!("handled above"),
        Scale::Small => {
            // Parameters and seeds below were tuned with `--bin tune`
            // so each row lands in its paper counterpart's hardness
            // band under the default 5 s budget (see EXPERIMENTS.md).
            out.push(Instance::new(
                "movielens_like",
                "movielens-100k_rating (KONECT)",
                gen::bipartite_gnp(100, 250, 0.15, 8),
            ));
            out.push(Instance::new(
                "wiki_link_lo_like",
                "wikipedia_link_lo (KONECT)",
                gen::barabasi_albert(150, 12, 2),
            ));
            out.push(Instance::new(
                "wiki_link_csb_like",
                "wikipedia_link_csb (KONECT)",
                gen::barabasi_albert(130, 12, 2),
            ));
            out.push(Instance::new(
                "power_grid_like",
                "US power grid (KONECT)",
                gen::watts_strogatz(350, 4, 0.15, 6),
            ));
            out.push(Instance::new(
                "lastfm_like",
                "LastFM Asia (SNAP)",
                gen::barabasi_albert(200, 6, 2),
            ));
            out.push(Instance::new(
                "sister_cities_like",
                "Sister Cities (KONECT)",
                gen::sparse_components(260, 22, 0.32, 7),
            ));
            out.push(Instance::new(
                "vc_exact_023_like",
                "vc-exact_023 (PACE 2019)",
                gen::pace_like(170, 7, 4),
            ));
            out.push(Instance::new(
                "vc_exact_009_like",
                "vc-exact_009 (PACE 2019)",
                gen::pace_like(180, 7, 4),
            ));
        }
        Scale::Paper => {
            out.push(Instance::new(
                "movielens_like",
                "movielens-100k_rating (KONECT)",
                gen::bipartite_gnp(943, 1682, 0.061, 0xbee1),
            ));
            out.push(Instance::new(
                "wiki_link_lo_like",
                "wikipedia_link_lo (KONECT)",
                gen::barabasi_albert(3811, 22, 0xbee2),
            ));
            out.push(Instance::new(
                "wiki_link_csb_like",
                "wikipedia_link_csb (KONECT)",
                gen::barabasi_albert(5561, 34, 0xbee3),
            ));
            out.push(Instance::new(
                "power_grid_like",
                "US power grid (KONECT)",
                gen::power_grid_like(4942, 1652, 0xbee4),
            ));
            out.push(Instance::new(
                "lastfm_like",
                "LastFM Asia (SNAP)",
                gen::barabasi_albert(7624, 4, 0xbee5),
            ));
            out.push(Instance::new(
                "sister_cities_like",
                "Sister Cities (KONECT)",
                gen::sparse_components(14275, 1400, 0.3, 0xbee6),
            ));
            out.push(Instance::new(
                "vc_exact_023_like",
                "vc-exact_023 (PACE 2019)",
                gen::pace_like(27718, 1100, 0xbee7),
            ));
            out.push(Instance::new(
                "vc_exact_009_like",
                "vc-exact_009 (PACE 2019)",
                gen::pace_like(38453, 1500, 0xbee8),
            ));
        }
    }
    out
}

/// The `Scale::Massive` tier: sparse generator instances of ≥100k
/// vertices. `massive_ba_tree` is fully kernelizable (the ≥90%
/// elimination family), `massive_components` shatters into thousands
/// of tiny independent sub-searches, and `massive_power_grid` keeps a
/// cyclic 2-core that stresses partial reduction. All three are far
/// beyond the unpreprocessed per-node search (the greedy seed alone is
/// `O(best · |V|)`), and their per-block state exceeds the simulated
/// device's memory, so only the kernelized path completes.
pub fn massive_suite() -> Vec<Instance> {
    vec![
        Instance::new(
            "massive_ba_tree",
            "preferential-attachment tree (reduction-heavy regime)",
            gen::barabasi_albert(150_000, 1, 0xfee1),
        ),
        Instance::new(
            "massive_power_grid",
            "US power grid (KONECT, scaled 24x)",
            gen::power_grid_like(120_000, 18_000, 0xfee2),
        ),
        Instance::new(
            "massive_components",
            "Sister Cities (KONECT, scaled 8x)",
            gen::sparse_components(120_000, 6_000, 0.3, 0xfee3),
        ),
    ]
}

/// Figure 5's two picks: the highest-average-degree instance and the
/// power-grid stand-in (the paper uses p_hat_1000_1 and US power grid).
pub fn fig5_pair(scale: Scale) -> (Instance, Instance) {
    let mut all = suite(scale);
    let grid_at = all
        .iter()
        .position(|i| i.name.contains("power_grid"))
        .expect("suite contains a power-grid stand-in");
    let low = all.remove(grid_at);
    let high = all
        .into_iter()
        .max_by(|a, b| a.ratio().partial_cmp(&b.ratio()).expect("finite ratios"))
        .expect("suite is non-empty");
    (high, low)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_shape() {
        let s = suite(Scale::Small);
        assert_eq!(s.len(), 15);
        // The paper's split: p_hat + dense KONECT are high-degree, the
        // rest low-degree.
        let high = s.iter().filter(|i| i.class == DegreeClass::High).count();
        assert!(high >= 9, "expected ≥9 high-degree instances, got {high}");
        let low = s.len() - high;
        assert!(low >= 5, "expected ≥5 low-degree instances, got {low}");
        for inst in &s {
            inst.graph.validate().unwrap();
            assert!(inst.graph.num_edges() > 0, "{} has no edges", inst.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite(Scale::Small);
        let b = suite(Scale::Small);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph, "{} not deterministic", x.name);
        }
    }

    #[test]
    fn phat_complement_density_classes_ordered() {
        let s = phat_suite(Scale::Small);
        // Within one size, class 1 is densest after complement.
        let d = |i: &Instance| i.ratio();
        assert!(d(&s[0]) > d(&s[1]));
        assert!(d(&s[1]) > d(&s[2]));
    }

    #[test]
    fn massive_suite_is_large_and_sparse() {
        let s = suite(Scale::Massive);
        assert_eq!(s.len(), 3);
        for inst in &s {
            assert!(
                inst.graph.num_vertices() >= 100_000,
                "{} below the Massive floor",
                inst.name
            );
            assert!(
                inst.ratio() < 4.0,
                "{} too dense for the reduction-heavy regime",
                inst.name
            );
            assert!(inst.graph.num_edges() > 0);
        }
        assert!(s.iter().any(|i| i.name == "massive_ba_tree"));
    }

    #[test]
    fn fig5_pair_extremes() {
        let (high, low) = fig5_pair(Scale::Small);
        assert_eq!(high.class, DegreeClass::High);
        assert_eq!(low.class, DegreeClass::Low);
        assert_eq!(low.name, "power_grid_like");
        assert!(high.ratio() > 10.0 * low.ratio());
    }
}
