//! Plain-text table rendering and aggregate math.

/// Geometric mean of strictly positive values (0.0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Formats a duration in seconds the way the paper's tables do.
pub fn fmt_seconds(secs: f64, timed_out: bool) -> String {
    if timed_out {
        ">budget".to_string()
    } else if secs >= 100.0 {
        format!("{secs:.0}")
    } else if secs >= 1.0 {
        format!("{secs:.2}")
    } else {
        format!("{secs:.3}")
    }
}

/// A column-aligned plain-text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Appends a horizontal separator row.
    pub fn separator(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Renders to a string (first column left-aligned, rest right).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("  {cell:>w$}"));
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                emit(&mut out, row);
            }
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(0.0213, false), "0.021");
        assert_eq!(fmt_seconds(1.657, false), "1.66");
        assert_eq!(fmt_seconds(1018.898, false), "1019");
        assert_eq!(fmt_seconds(5.0, true), ">budget");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].chars().count();
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == width || l.starts_with('-')));
    }

    #[test]
    fn separator_draws_rule() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        t.separator();
        t.row(vec!["2"]);
        assert_eq!(t.render().lines().filter(|l| l.starts_with('-')).count(), 2);
    }
}
