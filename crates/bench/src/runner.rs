//! Shared execution machinery for the table/figure binaries.

use std::time::Duration;

use parvc_core::{Algorithm, MvcResult, PvcResult, Solver};
use parvc_simgpu::DeviceSpec;

use crate::cli::BenchArgs;
use crate::suite::Instance;

/// The four problem instances of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Minimum vertex cover.
    Mvc,
    /// PVC with k = min − 1 (exhaustive, infeasible).
    PvcMinMinus1,
    /// PVC with k = min (feasible, stops at first solution).
    PvcMin,
    /// PVC with k = min + 1 (easier feasible).
    PvcMinPlus1,
}

impl Problem {
    /// All four, in Table I's column order.
    pub const ALL: [Problem; 4] = [
        Problem::Mvc,
        Problem::PvcMinMinus1,
        Problem::PvcMin,
        Problem::PvcMinPlus1,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Problem::Mvc => "MVC",
            Problem::PvcMinMinus1 => "PVC k=min-1",
            Problem::PvcMin => "PVC k=min",
            Problem::PvcMinPlus1 => "PVC k=min+1",
        }
    }

    /// The k for this PVC variant given `min` (None for MVC).
    pub fn k(self, min: u32) -> Option<u32> {
        match self {
            Problem::Mvc => None,
            Problem::PvcMinMinus1 => Some(min.saturating_sub(1)),
            Problem::PvcMin => Some(min),
            Problem::PvcMinPlus1 => Some(min + 1),
        }
    }

    /// Whether this is one of the paper's "difficult instances with
    /// long run-times" (MVC and PVC k=min−1 search exhaustively).
    pub fn is_difficult(self) -> bool {
        matches!(self, Problem::Mvc | Problem::PvcMinMinus1)
    }
}

/// The three code versions of §V-A, plus the engine's work-stealing
/// policy (beyond the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Impl {
    /// Single CPU thread.
    Sequential,
    /// Prior work's fixed-depth sub-tree scheme.
    StackOnly,
    /// The paper's contribution.
    Hybrid,
    /// Per-block work-stealing deques.
    WorkStealing,
    /// Work stealing donating whole components of disconnected
    /// residuals (implies in-search component branching). Not part of
    /// [`Impl::ALL`] — the classic tables keep the paper's column set;
    /// the `components` report compares it against the others.
    ComponentSteal,
}

impl Impl {
    /// The classic table columns: Table I's three code versions, then
    /// the work-stealing extension.
    pub const ALL: [Impl; 4] = [
        Impl::Sequential,
        Impl::StackOnly,
        Impl::Hybrid,
        Impl::WorkStealing,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Impl::Sequential => "Sequential",
            Impl::StackOnly => "StackOnly",
            Impl::Hybrid => "Hybrid",
            Impl::WorkStealing => "WorkSteal",
            Impl::ComponentSteal => "CompSteal",
        }
    }
}

/// One measured cell of Table I.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Whether the per-solve budget expired.
    pub timed_out: bool,
    /// Tree nodes visited.
    pub tree_nodes: u64,
    /// Simulated device cycles (busiest SM).
    pub device_cycles: u64,
}

/// Builds a solver for one implementation under the harness settings.
pub fn make_solver(imp: Impl, args: &BenchArgs, deadline: Option<Duration>) -> Solver {
    let algorithm = match imp {
        Impl::Sequential => Algorithm::Sequential,
        Impl::StackOnly => Algorithm::StackOnly {
            start_depth: args.start_depth,
        },
        Impl::Hybrid => Algorithm::Hybrid,
        Impl::WorkStealing => Algorithm::WorkStealing,
        Impl::ComponentSteal => Algorithm::ComponentSteal,
    };
    Solver::builder()
        .algorithm(algorithm)
        .device(DeviceSpec::scaled(args.sms))
        .grid_limit(Some(args.grid))
        .deadline(deadline)
        .executor(args.exec)
        .build()
}

/// Establishes `min` (the exact MVC size) for an instance, used to set
/// the PVC parameters. Runs Hybrid under the (generous) `--min-budget`;
/// returns `None` if even that times out — the paper's vc-exact rows,
/// where min came from the PACE organizers instead.
pub fn compute_min(inst: &Instance, args: &BenchArgs) -> Option<u32> {
    let solver = make_solver(Impl::Hybrid, args, Some(args.min_budget));
    let r = solver.solve_mvc(&inst.graph);
    (!r.stats.timed_out).then_some(r.size)
}

/// Runs one (instance, problem, implementation) cell.
///
/// `min` must be `Some` for the PVC problems; MVC cells ignore it.
pub fn run_cell(
    inst: &Instance,
    problem: Problem,
    imp: Impl,
    min: Option<u32>,
    args: &BenchArgs,
) -> Cell {
    let solver = make_solver(imp, args, Some(args.deadline));
    match problem.k(min.unwrap_or(0)) {
        None => cell_from_mvc(solver.solve_mvc(&inst.graph)),
        Some(k) => cell_from_pvc(solver.solve_pvc(&inst.graph, k)),
    }
}

fn cell_from_mvc(r: MvcResult) -> Cell {
    Cell {
        seconds: r.stats.seconds(),
        timed_out: r.stats.timed_out,
        tree_nodes: r.stats.tree_nodes,
        device_cycles: r.stats.device_cycles,
    }
}

fn cell_from_pvc(r: PvcResult) -> Cell {
    Cell {
        seconds: r.stats.seconds(),
        timed_out: r.stats.timed_out,
        tree_nodes: r.stats.tree_nodes,
        device_cycles: r.stats.device_cycles,
    }
}

/// All of Table I's measurements for one instance.
pub struct InstanceRow {
    /// The instance.
    pub min: Option<u32>,
    /// `cells[problem][impl]`, indexed by the `ALL` orders.
    pub cells: Vec<Vec<Cell>>,
}

/// Runs the full 4-problem × 3-implementation grid for one instance.
pub fn run_instance(inst: &Instance, args: &BenchArgs) -> InstanceRow {
    let min = compute_min(inst, args);
    let cells = Problem::ALL
        .iter()
        .map(|&p| {
            Impl::ALL
                .iter()
                .map(|&i| {
                    if p != Problem::Mvc && min.is_none() {
                        // No exact min available: PVC variants are
                        // undefined — report the budget as spent.
                        Cell {
                            seconds: args.deadline.as_secs_f64(),
                            timed_out: true,
                            tree_nodes: 0,
                            device_cycles: 0,
                        }
                    } else {
                        run_cell(inst, p, i, min, args)
                    }
                })
                .collect()
        })
        .collect();
    InstanceRow { min, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{suite, Scale};

    fn quick_args() -> BenchArgs {
        BenchArgs {
            deadline: Duration::from_secs(3),
            min_budget: Duration::from_secs(10),
            grid: 4,
            sms: 2,
            start_depth: 4,
            ..BenchArgs::default()
        }
    }

    #[test]
    fn problems_map_k_correctly() {
        assert_eq!(Problem::Mvc.k(7), None);
        assert_eq!(Problem::PvcMinMinus1.k(7), Some(6));
        assert_eq!(Problem::PvcMin.k(7), Some(7));
        assert_eq!(Problem::PvcMinPlus1.k(7), Some(8));
        assert_eq!(Problem::PvcMinMinus1.k(0), Some(0));
    }

    #[test]
    fn one_small_instance_full_grid() {
        let args = quick_args();
        let inst = &suite(Scale::Small)[2]; // p_hat_60_3: lightest p_hat
        let row = run_instance(inst, &args);
        let min = row.min.expect("p_hat_60_3 must solve within budget");
        assert!(min > 0);
        // All three implementations agree on feasibility per problem.
        for (pi, p) in Problem::ALL.iter().enumerate() {
            for cell in &row.cells[pi] {
                assert!(cell.seconds >= 0.0);
                if !p.is_difficult() {
                    assert!(!cell.timed_out, "{} should be easy", p.label());
                }
            }
        }
    }
}
