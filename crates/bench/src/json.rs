//! A minimal JSON reader/writer for the bench-smoke regression gate.
//!
//! The smoke report and its checked-in baseline
//! (`bench/baselines/components.json`) need structured round-tripping
//! without pulling serde into the offline-shimmed workspace, so this
//! module implements exactly the JSON subset the reports use: objects,
//! arrays, strings (escape-free ASCII), unsigned integers, booleans,
//! and null. Parsing is a recursive-descent pass over bytes; writing
//! is pretty-printed with two-space indentation so baselines diff
//! cleanly in review.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value (the subset the bench reports use).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the reports only emit counters).
    Num(u64),
    /// A string without escapes.
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps writing deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object's field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes with two-space pretty-printing and a trailing
    /// newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace and **no**
    /// trailing newline — the response format of the `parvc serve`
    /// line protocol, where one request line is answered by exactly
    /// one response line.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => {
                let _ = write!(out, "\"{s}\"");
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => {
                let _ = write!(out, "\"{s}\"");
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{k}\": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

/// Convenience: an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses a JSON document (the subset above). Returns a descriptive
/// error with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are UTF-8");
            text.parse()
                .map(Value::Num)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, pos)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?
                    .to_string();
                *pos += 1;
                return Ok(s);
            }
            b'\\' => return Err(format!("escape sequences unsupported (byte {pos})")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_report_shape() {
        let v = obj(vec![
            ("schema", Value::Num(1)),
            (
                "instances",
                Value::Arr(vec![obj(vec![
                    ("name", Value::Str("components".into())),
                    (
                        "policies",
                        Value::Arr(vec![obj(vec![
                            ("policy", Value::Str("seq".into())),
                            ("tree_nodes", Value::Num(1234)),
                            ("split_checks", Value::Num(56)),
                            ("splits_taken", Value::Num(7)),
                        ])]),
                    ),
                ])]),
            ),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).expect("own output must parse");
        assert_eq!(back, v);
        assert_eq!(
            back.get("instances").unwrap().arr().unwrap()[0]
                .get("name")
                .unwrap()
                .str(),
            Some("components")
        );
    }

    #[test]
    fn compact_line_round_trips() {
        let v = obj(vec![
            ("ok", Value::Bool(true)),
            ("cover", Value::Arr(vec![Value::Num(0), Value::Num(2)])),
            ("verb", Value::Str("solve".into())),
            ("empty", obj(vec![])),
            ("none", Value::Null),
        ]);
        let line = v.to_line();
        assert!(!line.contains('\n'), "one response = one line");
        assert!(!line.contains("  "), "no pretty padding");
        assert_eq!(parse(&line).unwrap(), v);
        assert_eq!(
            line,
            "{\"cover\":[0,2],\"empty\":{},\"none\":null,\"ok\":true,\"verb\":\"solve\"}"
        );
    }

    #[test]
    fn parses_hand_written_documents() {
        let v = parse("{ \"a\": [1, 2, 3], \"b\": { \"c\": true, \"d\": null } }").unwrap();
        assert_eq!(v.get("a").unwrap().arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("12x").is_err());
    }
}
