//! Minimal CLI argument parsing shared by the bench binaries.

use std::time::Duration;

use parvc_core::ExecutorSpec;

use crate::suite::Scale;

/// Common harness options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Instance scale (`--scale small|paper`).
    pub scale: Scale,
    /// Per-solve wall-clock budget (`--deadline <secs>`); the paper
    /// used 2 hours.
    pub deadline: Duration,
    /// Budget for the one-off exact MVC that establishes `min` for the
    /// PVC instances (`--min-budget <secs>`).
    pub min_budget: Duration,
    /// Thread blocks per launch (`--blocks <n>`).
    pub grid: u32,
    /// Virtual SMs on the simulated device (`--sms <n>`).
    pub sms: u32,
    /// StackOnly sub-tree starting depth (`--depth <n>`).
    pub start_depth: u32,
    /// Intra-block executor for the phase-split flat passes
    /// (`--exec serial|pooled[:threads]`). Purely a wall-clock knob:
    /// results and model-cycle counters are executor-invariant.
    pub exec: ExecutorSpec,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::Small,
            deadline: Duration::from_secs(5),
            min_budget: Duration::from_secs(30),
            grid: 16,
            sms: 8,
            start_depth: 8,
            exec: ExecutorSpec::Serial,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, panicking with usage on bad input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |what: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
            };
            match flag.as_str() {
                "--scale" => {
                    out.scale = match value("small|paper|massive").as_str() {
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        "massive" => Scale::Massive,
                        other => panic!("unknown scale '{other}' (small|paper|massive)"),
                    }
                }
                "--deadline" => {
                    out.deadline = Duration::from_secs_f64(
                        value("seconds").parse().expect("--deadline takes seconds"),
                    )
                }
                "--min-budget" => {
                    out.min_budget = Duration::from_secs_f64(
                        value("seconds")
                            .parse()
                            .expect("--min-budget takes seconds"),
                    )
                }
                "--blocks" => out.grid = value("count").parse().expect("--blocks takes a count"),
                "--sms" => out.sms = value("count").parse().expect("--sms takes a count"),
                "--depth" => {
                    out.start_depth = value("depth").parse().expect("--depth takes a depth")
                }
                "--exec" => {
                    out.exec = ExecutorSpec::parse(&value("serial|pooled[:threads]"))
                        .unwrap_or_else(|e| panic!("--exec: {e}"))
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale small|paper|massive  --deadline <secs>  \
                         --min-budget <secs>  --blocks <n>  --sms <n>  --depth <n>  \
                         --exec serial|pooled[:threads]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> BenchArgs {
        BenchArgs::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.grid, 16);
    }

    #[test]
    fn overrides() {
        let a = parse("--scale paper --deadline 2.5 --blocks 64 --sms 20 --depth 12");
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.deadline, Duration::from_secs_f64(2.5));
        assert_eq!(a.grid, 64);
        assert_eq!(a.sms, 20);
        assert_eq!(a.start_depth, 12);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse("--bogus");
    }
}
