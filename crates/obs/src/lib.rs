//! # parvc-obs — structured solve telemetry
//!
//! The simulator already attributes **model cycles** to activities
//! (`parvc_simgpu::counters`, the paper's Figure 6 instrumentation).
//! This crate adds the *wall-clock, cross-layer* half: spans over real
//! time (prep rule passes, component sub-searches, engine node phases,
//! split detect/extract/solve, executor dispatches) and a metrics
//! registry (counters, gauges, log2-bucketed histograms), recorded
//! through an object-safe [`Sink`] and exported as Chrome trace-event
//! JSON ([`TelemetrySnapshot::chrome_trace`], loadable in Perfetto /
//! `chrome://tracing`) or a flat metrics snapshot
//! ([`TelemetrySnapshot::metrics_json`] /
//! [`TelemetrySnapshot::metrics_table`]).
//!
//! ## The zero-cost-when-disabled rule
//!
//! Instrumented code holds a `&dyn Sink` that defaults to [`NOOP`].
//! Every recording helper checks [`Sink::enabled`] **before** touching
//! a clock, allocating, or locking — with the no-op sink the entire
//! telemetry layer costs one non-inlined bool call per span site.
//! Telemetry must never perturb results or model-cycle counters; the
//! workspace pins that with an off-vs-on bit-match property suite
//! (`tests/telemetry_safety.rs`).
//!
//! ## Units and tracks
//!
//! Wall-clock spans carry microseconds since the recording sink's
//! epoch, on [`Lane::Wall`]. Model-cycle spans (bridged from
//! `BlockCounters` traces by `parvc_simgpu`) reuse the same record
//! type on [`Lane::Model`] with cycle counts in the time fields; the
//! Chrome exporter keeps the two lanes as separate trace processes so
//! the units never mix. `track` is the per-lane thread id: track 0 is
//! the calling (solver) thread, track `b + 1` is block `b`.
//!
//! This crate is dependency-free and serde-free by design: the JSON it
//! emits stays inside the same hand-rolled subset `parvc_bench::json`
//! parses (u64 numbers, escape-free ASCII strings), which the exporter
//! round-trip tests rely on.

#![warn(missing_docs)]

mod export;
mod metrics;
mod record;

pub use metrics::{Histogram, Metrics, HIST_BUCKETS};
pub use record::{RecordingSink, TelemetrySnapshot};

/// Which clock a span's time fields are on — its trace "process".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Real time, microseconds since the recording sink's epoch.
    Wall,
    /// Simulated device time, model cycles since block start (bridged
    /// from `parvc_simgpu::counters::Span` logs).
    Model,
}

/// One recorded span or instant event. All-`Copy` with `&'static str`
/// labels, so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Category (the span taxonomy: `"prep"`, `"engine"`, `"split"`,
    /// `"component"`, `"dispatch"`, `"steal"`, `"model"`,
    /// `"resolve"`, `"serve"` — one span per serving-tier request —
    /// …).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// Per-lane thread id: 0 = the calling (solver) thread, `b + 1` =
    /// block `b` on [`Lane::Wall`]; block id directly on
    /// [`Lane::Model`].
    pub track: u32,
    /// Which clock [`start_us`](Self::start_us) /
    /// [`dur_us`](Self::dur_us) are on.
    pub lane: Lane,
    /// Start time: µs since epoch (wall) or cycles since block start
    /// (model).
    pub start_us: u64,
    /// Duration in the lane's unit; 0 for instants.
    pub dur_us: u64,
    /// One free numeric payload (item count, component index, …).
    pub arg: u64,
    /// Instant event (a point, not an interval).
    pub instant: bool,
}

/// An object-safe telemetry sink. Every method has a no-op default, so
/// implementors opt into exactly what they record; `&dyn Sink` is
/// `Send + Sync` (the same span sites run on every block thread).
pub trait Sink: Sync {
    /// Whether recording is on. Span sites check this **before**
    /// reading clocks or building records — the zero-cost gate.
    fn enabled(&self) -> bool {
        false
    }

    /// Microseconds since this sink's epoch (0 when disabled).
    fn now_us(&self) -> u64 {
        0
    }

    /// Records a span or instant.
    fn span(&self, _record: &SpanRecord) {}

    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&self, _name: &'static str, _delta: u64) {}

    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge(&self, _name: &'static str, _value: u64) {}

    /// Records `value` into the histogram `name`.
    fn observe(&self, _name: &'static str, _value: u64) {}
}

/// The always-available disabled sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {}

/// The default `&'static dyn Sink`: every instrumented struct points
/// here until a recording sink is threaded in.
pub static NOOP: NoopSink = NoopSink;

/// A guard that captures the start time of a wall-clock span — only
/// when the sink is enabled, so the disabled path never reads a clock.
///
/// ```
/// use parvc_obs::{RecordingSink, Sink, SpanTimer, TelemetryConfig};
///
/// let sink = RecordingSink::new(&TelemetryConfig::default());
/// let t = SpanTimer::start(&sink);
/// // ... the work being measured ...
/// t.finish(&sink, "engine", "reduce", 1, 0);
/// assert_eq!(sink.into_snapshot().spans.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
#[must_use = "a span timer records nothing until finish() is called"]
pub struct SpanTimer {
    start_us: u64,
    armed: bool,
}

impl SpanTimer {
    /// Starts a span now (a no-op against a disabled sink).
    pub fn start(sink: &dyn Sink) -> Self {
        if sink.enabled() {
            SpanTimer {
                start_us: sink.now_us(),
                armed: true,
            }
        } else {
            SpanTimer {
                start_us: 0,
                armed: false,
            }
        }
    }

    /// Ends the span and records it on `track` with payload `arg`.
    pub fn finish(
        self,
        sink: &dyn Sink,
        cat: &'static str,
        name: &'static str,
        track: u32,
        arg: u64,
    ) {
        if self.armed {
            let end = sink.now_us();
            sink.span(&SpanRecord {
                cat,
                name,
                track,
                lane: Lane::Wall,
                start_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
                arg,
                instant: false,
            });
        }
    }
}

/// Records a point-in-time event (steals, checkpoint rebuilds, …).
pub fn instant(sink: &dyn Sink, cat: &'static str, name: &'static str, track: u32, arg: u64) {
    if sink.enabled() {
        let now = sink.now_us();
        sink.span(&SpanRecord {
            cat,
            name,
            track,
            lane: Lane::Wall,
            start_us: now,
            dur_us: 0,
            arg,
            instant: true,
        });
    }
}

/// What a [`RecordingSink`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record wall-clock spans.
    pub spans: bool,
    /// Record counters/gauges/histograms.
    pub metrics: bool,
    /// Hard cap on retained spans (per-node spans on a pathological
    /// run would otherwise grow without bound); excess spans are
    /// counted in [`TelemetrySnapshot::dropped_spans`].
    pub max_spans: usize,
    /// Also ask the solver to record the model-cycle span log
    /// (`BlockCounters` tracing), bridged into the snapshot as the
    /// synthetic [`Lane::Model`] track.
    pub model_cycles: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            spans: true,
            metrics: true,
            max_spans: 1 << 20,
            model_cycles: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        assert!(!NOOP.enabled());
        assert_eq!(NOOP.now_us(), 0);
        // All recording calls are no-ops (nothing to observe, but they
        // must not panic).
        NOOP.counter("x", 1);
        NOOP.gauge("x", 1);
        NOOP.observe("x", 1);
        let t = SpanTimer::start(&NOOP);
        assert!(!t.armed);
        t.finish(&NOOP, "c", "n", 0, 0);
        instant(&NOOP, "c", "n", 0, 0);
    }

    #[test]
    fn timer_records_nonnegative_duration() {
        let sink = RecordingSink::new(&TelemetryConfig::default());
        let t = SpanTimer::start(&sink);
        t.finish(&sink, "engine", "reduce", 3, 42);
        instant(&sink, "steal", "steal", 2, 7);
        let snap = sink.into_snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].cat, "engine");
        assert_eq!(snap.spans[0].track, 3);
        assert_eq!(snap.spans[0].arg, 42);
        assert!(!snap.spans[0].instant);
        assert!(snap.spans[1].instant);
        assert_eq!(snap.spans[1].dur_us, 0);
    }
}
