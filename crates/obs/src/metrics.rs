//! The metrics registry: monotonic counters, gauges, and u64
//! histograms with fixed log2 buckets, behind coarse mutexes.
//!
//! Keys are `&'static str` so recording never allocates; the maps only
//! grow by one entry the first time a name is seen. Everything is
//! plain `std::sync` — this crate stays dependency-free.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log2 buckets in a [`Histogram`]. Bucket `i` counts values
/// `v` with `floor(log2(max(v, 1))) == i`, with everything `>= 2^15`
/// clamped into the last bucket — the same fixed-bucket idiom as
/// `SplitCounters::size_hist`, just wider.
pub const HIST_BUCKETS: usize = 16;

/// A u64 histogram with [`HIST_BUCKETS`] fixed log2 buckets plus a
/// running count and sum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// `buckets[i]` counts recorded values in `[2^i, 2^(i+1))` (bucket
    /// 0 also holds zeros; the last bucket holds everything above).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = (64 - value.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean of the recorded values, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// The shared registry a recording sink writes into. Counter, gauge,
/// and histogram namespaces are independent (the same name may exist
/// in all three).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn counter(&self, name: &'static str, delta: u64) {
        let mut map = self.counters.lock().unwrap();
        *map.entry(name).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: u64) {
        self.gauges.lock().unwrap().insert(name, value);
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&self, name: &'static str, value: u64) {
        let mut map = self.hists.lock().unwrap();
        map.entry(name).or_default().record(value);
    }

    /// Drains the registry into plain owned maps
    /// (counters, gauges, histograms).
    #[allow(clippy::type_complexity)]
    pub fn take(
        &self,
    ) -> (
        BTreeMap<&'static str, u64>,
        BTreeMap<&'static str, u64>,
        BTreeMap<&'static str, Histogram>,
    ) {
        (
            std::mem::take(&mut *self.counters.lock().unwrap()),
            std::mem::take(&mut *self.gauges.lock().unwrap()),
            std::mem::take(&mut *self.hists.lock().unwrap()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        h.record(u64::MAX); // clamped to last bucket
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, u64::MAX); // saturated
    }

    #[test]
    fn histogram_merge_and_mean() {
        let mut a = Histogram::default();
        a.record(4);
        a.record(8);
        let mut b = Histogram::default();
        b.record(6);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 18);
        assert_eq!(a.mean(), 6);
    }

    #[test]
    fn registry_namespaces_are_independent() {
        let m = Metrics::new();
        m.counter("x", 2);
        m.counter("x", 3);
        m.gauge("x", 7);
        m.gauge("x", 9);
        m.observe("x", 5);
        let (c, g, h) = m.take();
        assert_eq!(c["x"], 5);
        assert_eq!(g["x"], 9);
        assert_eq!(h["x"].count, 1);
        // take() drains
        let (c2, ..) = m.take();
        assert!(c2.is_empty());
    }
}
