//! Exporters: Chrome trace-event JSON and the flat metrics snapshot
//! (JSON + aligned text table).
//!
//! The JSON here is hand-emitted, mirroring `parvc_bench::json`'s
//! hand-rolled style from the other direction: only u64 numbers and
//! escape-free ASCII strings, so everything this module writes parses
//! with that crate's reader (the exporter well-formedness tests lean
//! on this).

use crate::record::TelemetrySnapshot;
use crate::{Lane, SpanRecord};

/// Strings we emit come from `&'static str` labels in this workspace;
/// sanitize defensively so the output stays inside the escape-free
/// subset even if a label ever grows a quote or backslash.
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        if c == '"' || c == '\\' || (c as u32) < 0x20 {
            out.push('_');
        } else {
            out.push(c);
        }
    }
    out.push('"');
}

fn push_kv_num(out: &mut String, key: &str, value: u64) {
    push_str_lit(out, key);
    out.push(':');
    out.push_str(&value.to_string());
}

fn push_kv_str(out: &mut String, key: &str, value: &str) {
    push_str_lit(out, key);
    out.push(':');
    push_str_lit(out, value);
}

/// `pid` per lane: the Chrome trace keeps wall-clock and model-cycle
/// spans in separate trace processes so their units never mix.
fn lane_pid(lane: Lane) -> u64 {
    match lane {
        Lane::Wall => 0,
        Lane::Model => 1,
    }
}

fn push_metadata(out: &mut String, pid: u64, tid: u64, kind: &str, name: &str) {
    out.push('{');
    push_kv_str(out, "ph", "M");
    out.push(',');
    push_kv_num(out, "pid", pid);
    out.push(',');
    push_kv_num(out, "tid", tid);
    out.push(',');
    push_kv_str(out, "name", kind);
    out.push(',');
    push_str_lit(out, "args");
    out.push_str(":{");
    push_kv_str(out, "name", name);
    out.push_str("}}");
}

fn push_event(out: &mut String, s: &SpanRecord) {
    out.push('{');
    push_kv_str(out, "ph", if s.instant { "i" } else { "X" });
    out.push(',');
    push_kv_num(out, "pid", lane_pid(s.lane));
    out.push(',');
    push_kv_num(out, "tid", s.track as u64);
    out.push(',');
    push_kv_num(out, "ts", s.start_us);
    out.push(',');
    if s.instant {
        push_kv_str(out, "s", "t");
    } else {
        push_kv_num(out, "dur", s.dur_us);
    }
    out.push(',');
    push_kv_str(out, "cat", s.cat);
    out.push(',');
    push_kv_str(out, "name", s.name);
    out.push(',');
    push_str_lit(out, "args");
    out.push_str(":{");
    push_kv_num(out, "arg", s.arg);
    out.push_str("}}");
}

impl TelemetrySnapshot {
    /// Renders the spans as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Process 0 is the wall-clock lane (thread 0 = solver thread,
    /// thread `b + 1` = block `b`); process 1 is the synthetic
    /// model-cycle lane (thread `b` = block `b`, "ts" in cycles).
    /// Events are sorted by (process, thread, start, longest-first) so
    /// enclosing spans precede their children.
    pub fn chrome_trace(&self) -> String {
        let mut spans: Vec<&SpanRecord> = self.spans.iter().collect();
        spans.sort_by_key(|s| (lane_pid(s.lane), s.track, s.start_us, u64::MAX - s.dur_us));

        let mut out = String::with_capacity(128 + spans.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let emit_sep = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
        };

        // Metadata: name each process once, and each (process, thread)
        // that carries events.
        let mut tracks: Vec<(u64, u64)> = spans
            .iter()
            .map(|s| (lane_pid(s.lane), s.track as u64))
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        for &pid in &[0u64, 1] {
            if tracks.iter().any(|&(p, _)| p == pid) {
                emit_sep(&mut out, &mut first);
                let pname = if pid == 0 {
                    "wall-clock"
                } else {
                    "model-cycles"
                };
                push_metadata(&mut out, pid, 0, "process_name", pname);
            }
        }
        for &(pid, tid) in &tracks {
            let tname = match (pid, tid) {
                (0, 0) => "solver".to_string(),
                (0, t) => format!("block-{}", t - 1),
                (_, t) => format!("block-{t}"),
            };
            emit_sep(&mut out, &mut first);
            push_metadata(&mut out, pid, tid, "thread_name", &tname);
        }

        for s in spans {
            emit_sep(&mut out, &mut first);
            push_event(&mut out, s);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders the metrics registry (plus span bookkeeping) as a flat
    /// JSON object parseable by `parvc_bench::json`.
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_kv_num(&mut out, "spans", self.spans.len() as u64);
        out.push(',');
        push_kv_num(&mut out, "dropped_spans", self.dropped_spans);

        for (section, map) in [("counters", &self.counters), ("gauges", &self.gauges)] {
            out.push(',');
            push_str_lit(&mut out, section);
            out.push_str(":{");
            let mut first = true;
            for (name, value) in map {
                if !first {
                    out.push(',');
                }
                first = false;
                push_kv_num(&mut out, name, *value);
            }
            out.push('}');
        }

        out.push(',');
        push_str_lit(&mut out, "histograms");
        out.push_str(":{");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            push_str_lit(&mut out, name);
            out.push_str(":{");
            push_kv_num(&mut out, "count", h.count);
            out.push(',');
            push_kv_num(&mut out, "sum", h.sum);
            out.push(',');
            push_kv_num(&mut out, "mean", h.mean());
            out.push(',');
            push_str_lit(&mut out, "buckets");
            out.push_str(":[");
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out.push('\n');
        out
    }

    /// Renders the metrics registry as an aligned plain-text table
    /// (the human-readable twin of [`metrics_json`](Self::metrics_json)).
    pub fn metrics_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max("dropped_spans".len());

        let mut out = String::new();
        let section = |out: &mut String, title: &str| {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(title);
            out.push('\n');
        };

        section(&mut out, "spans");
        out.push_str(&format!(
            "  {:<width$}  {:>12}\n",
            "recorded",
            self.spans.len()
        ));
        out.push_str(&format!(
            "  {:<width$}  {:>12}\n",
            "dropped_spans", self.dropped_spans
        ));

        if !self.counters.is_empty() {
            section(&mut out, "counters");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            section(&mut out, "gauges");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            section(&mut out, "histograms");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={:<10} sum={:<12} mean={}\n",
                    h.count,
                    h.sum,
                    h.mean()
                ));
                let hi = h
                    .buckets
                    .iter()
                    .rposition(|&b| b != 0)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                if hi > 0 {
                    out.push_str(&format!("  {:<width$}  log2 buckets:", ""));
                    for b in &h.buckets[..hi] {
                        out.push_str(&format!(" {b}"));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecordingSink, Sink, TelemetryConfig};

    fn sample() -> TelemetrySnapshot {
        let sink = RecordingSink::new(&TelemetryConfig::default());
        sink.span(&SpanRecord {
            cat: "engine",
            name: "reduce",
            track: 1,
            lane: Lane::Wall,
            start_us: 10,
            dur_us: 5,
            arg: 3,
            instant: false,
        });
        sink.span(&SpanRecord {
            cat: "steal",
            name: "steal",
            track: 2,
            lane: Lane::Wall,
            start_us: 4,
            dur_us: 0,
            arg: 0,
            instant: true,
        });
        sink.counter("engine.nodes", 12);
        sink.gauge("blocks", 2);
        sink.observe("split.component_size", 17);
        let mut snap = sink.into_snapshot();
        snap.push_spans([SpanRecord {
            cat: "model",
            name: "ReduceDeg1",
            track: 0,
            lane: Lane::Model,
            start_us: 0,
            dur_us: 100,
            arg: 0,
            instant: false,
        }]);
        snap
    }

    #[test]
    fn chrome_trace_shape() {
        let trace = sample().chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"name\":\"wall-clock\""));
        assert!(trace.contains("\"name\":\"model-cycles\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"name\":\"block-0\""));
    }

    #[test]
    fn string_sanitizer_strips_escapes() {
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a_b_c_d\"");
    }

    #[test]
    fn metrics_json_and_table() {
        let snap = sample();
        let json = snap.metrics_json();
        assert!(json.contains("\"engine.nodes\":12"));
        assert!(json.contains("\"split.component_size\""));
        let table = snap.metrics_table();
        assert!(table.contains("engine.nodes"));
        assert!(table.contains("log2 buckets:"));
    }
}
