//! The in-memory recording sink and the snapshot it produces.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{Histogram, Metrics};
use crate::{Lane, Sink, SpanRecord, TelemetryConfig};

/// A [`Sink`] that records spans into a capped in-memory buffer and
/// metrics into a [`Metrics`] registry. One epoch (`Instant`) per sink;
/// all wall-clock spans are microseconds since it.
#[derive(Debug)]
pub struct RecordingSink {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    record_spans: bool,
    record_metrics: bool,
    max_spans: usize,
    dropped: AtomicU64,
    metrics: Metrics,
}

impl RecordingSink {
    /// A sink recording what `cfg` asks for, with its epoch at "now".
    pub fn new(cfg: &TelemetryConfig) -> Self {
        RecordingSink {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            record_spans: cfg.spans,
            record_metrics: cfg.metrics,
            max_spans: cfg.max_spans,
            dropped: AtomicU64::new(0),
            metrics: Metrics::new(),
        }
    }

    /// Consumes the sink into an exportable [`TelemetrySnapshot`].
    pub fn into_snapshot(self) -> TelemetrySnapshot {
        let (counters, gauges, histograms) = self.metrics.take();
        TelemetrySnapshot {
            spans: self.spans.into_inner().unwrap(),
            dropped_spans: self.dropped.load(Ordering::Relaxed),
            counters,
            gauges,
            histograms,
        }
    }
}

impl Sink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn span(&self, record: &SpanRecord) {
        if !self.record_spans {
            return;
        }
        let mut spans = self.spans.lock().unwrap();
        if spans.len() < self.max_spans {
            spans.push(*record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        if self.record_metrics {
            self.metrics.counter(name, delta);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        if self.record_metrics {
            self.metrics.gauge(name, value);
        }
    }

    fn observe(&self, name: &'static str, value: u64) {
        if self.record_metrics {
            self.metrics.observe(name, value);
        }
    }
}

/// Everything one solve recorded, detached from any locks — the value
/// stored in `SolveStats::telemetry` and fed to the exporters.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// All retained spans (wall-clock and bridged model-cycle).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded once the `max_spans` cap was hit.
    pub dropped_spans: u64,
    /// Final monotonic counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Final histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl TelemetrySnapshot {
    /// Appends spans (used by the solver to merge the bridged
    /// model-cycle lane after the launch finishes).
    pub fn push_spans(&mut self, records: impl IntoIterator<Item = SpanRecord>) {
        self.spans.extend(records);
    }

    /// The distinct span categories present, per lane-agnostic name.
    pub fn span_categories(&self) -> BTreeSet<&'static str> {
        self.spans.iter().map(|s| s.cat).collect()
    }

    /// Whether any span sits on the model-cycle lane.
    pub fn has_model_lane(&self) -> bool {
        self.spans.iter().any(|s| s.lane == Lane::Model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_cap_counts_drops() {
        let cfg = TelemetryConfig {
            max_spans: 2,
            ..TelemetryConfig::default()
        };
        let sink = RecordingSink::new(&cfg);
        for i in 0..5 {
            sink.span(&SpanRecord {
                cat: "engine",
                name: "reduce",
                track: 0,
                lane: Lane::Wall,
                start_us: i,
                dur_us: 1,
                arg: 0,
                instant: false,
            });
        }
        let snap = sink.into_snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 3);
    }

    #[test]
    fn spans_off_metrics_on() {
        let cfg = TelemetryConfig {
            spans: false,
            ..TelemetryConfig::default()
        };
        let sink = RecordingSink::new(&cfg);
        assert!(sink.enabled());
        crate::instant(&sink, "steal", "steal", 1, 0);
        sink.counter("steals", 1);
        let snap = sink.into_snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.counters["steals"], 1);
    }

    #[test]
    fn now_is_monotone() {
        let sink = RecordingSink::new(&TelemetryConfig::default());
        let a = sink.now_us();
        let b = sink.now_us();
        assert!(b >= a);
    }

    #[test]
    fn categories_and_model_lane() {
        let mut snap = TelemetrySnapshot::default();
        assert!(!snap.has_model_lane());
        snap.push_spans([SpanRecord {
            cat: "model",
            name: "ReduceDeg1",
            track: 0,
            lane: Lane::Model,
            start_us: 0,
            dur_us: 10,
            arg: 0,
            instant: false,
        }]);
        assert!(snap.has_model_lane());
        assert!(snap.span_categories().contains("model"));
    }
}
