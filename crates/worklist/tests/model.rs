//! Model-based testing: the BrokerQueue against a reference VecDeque
//! under arbitrary single-threaded operation sequences, plus worklist
//! protocol properties.

use std::collections::VecDeque;

use parvc_worklist::{BrokerQueue, LocalStack, PopOutcome, Worklist};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![(0u32..1000).prop_map(Op::Push), Just(Op::Pop)],
        0..200,
    )
}

proptest! {
    /// FIFO equivalence with a reference queue, including full/empty
    /// boundary behaviour.
    #[test]
    fn broker_matches_reference(capacity in 1usize..20, ops in arb_ops()) {
        let q = BrokerQueue::with_capacity(capacity);
        let real_cap = q.capacity(); // rounded to a power of two
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let model_would_accept = model.len() < real_cap;
                    match q.try_push(v) {
                        Ok(()) => {
                            prop_assert!(model_would_accept, "queue accepted beyond capacity");
                            model.push_back(v);
                        }
                        Err(back) => {
                            prop_assert_eq!(back, v);
                            prop_assert!(!model_would_accept, "queue rejected despite space");
                        }
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.try_pop(), model.pop_front());
                }
            }
            prop_assert_eq!(q.len_hint(), model.len());
        }
        // Drain: remaining contents must match exactly, in order.
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(q.try_pop(), Some(expect));
        }
        prop_assert_eq!(q.try_pop(), None);
    }

    /// The local stack is an exact bounded LIFO.
    #[test]
    fn stack_matches_reference(bound in 0usize..20, ops in arb_ops()) {
        let mut s = LocalStack::with_depth_bound(bound);
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::Push(v) => match s.push(v) {
                    Ok(()) => {
                        prop_assert!(model.len() < bound);
                        model.push(v);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, v);
                        prop_assert_eq!(model.len(), bound);
                    }
                },
                Op::Pop => {
                    prop_assert_eq!(s.pop(), model.pop());
                }
            }
            prop_assert_eq!(s.len(), model.len());
            prop_assert_eq!(s.is_empty(), model.is_empty());
        }
    }

    /// Single-handle worklist sessions always terminate with exactly
    /// the seeded + donated items delivered.
    #[test]
    fn worklist_delivers_every_item_once(seeds in 1usize..5, donations in 0usize..10) {
        let wl = Worklist::with_capacity(64);
        for i in 0..seeds {
            wl.seed(i as u32);
        }
        let mut h = wl.handle();
        let mut delivered = 0usize;
        let mut to_donate = donations;
        while let PopOutcome::Item(_) = h.pop() {
            delivered += 1;
            // While busy, donate the remaining budget.
            while to_donate > 0 {
                if h.add(100 + to_donate as u32).is_err() {
                    break;
                }
                to_donate -= 1;
            }
        }
        prop_assert_eq!(delivered, seeds + donations);
        prop_assert!(wl.is_done());
        prop_assert_eq!(wl.len_hint(), 0);
    }
}
