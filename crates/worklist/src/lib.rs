//! # parvc-worklist — GPU-style dynamic work distribution
//!
//! The substrate behind the paper's Hybrid traversal (§IV-A, §IV-C):
//!
//! * [`BrokerQueue`] — a from-scratch implementation of the Broker Work
//!   Distributor (Kerbl et al., ICS'18 \[21\]): a bounded, linearizable
//!   MPMC ring buffer where producers and consumers first *negotiate* on
//!   an element count before touching slots, so a failed operation never
//!   disturbs the ring.
//! * [`Worklist`] — the paper's §IV-C modification layered on top: a
//!   `remove` wrapped in a wait loop with exact quiescence detection, so
//!   blocks keep polling while work may still arrive and all terminate
//!   together once the traversal is provably finished.
//! * [`LocalStack`] — the pre-allocated per-block DFS stack whose depth
//!   bound comes from the greedy approximation (§IV-E).
//! * [`StealPool`] — per-block work-stealing deques: each block's DFS
//!   stack doubles as a steal target (own back LIFO, peers steal the
//!   front), with the same token-based quiescence protocol. The
//!   substrate of the engine's fourth scheduling policy.
//!
//! Part of the `parvc` workspace — see `ARCHITECTURE.md` at the
//! repository root for how these substrates back the scheduling
//! policies.

#![warn(missing_docs)]

mod broker;
mod stack;
mod steal;
mod termination;

pub use broker::BrokerQueue;
pub use stack::LocalStack;
pub use steal::{StealHandle, StealOutcome, StealPool, StealSource};
pub use termination::{PopOutcome, PopStats, WorkerHandle, Worklist};
