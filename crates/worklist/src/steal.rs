//! Per-block work-stealing deques.
//!
//! An alternative to the single shared [`Worklist`](crate::Worklist):
//! every block owns a deque, treats its back as its DFS stack (LIFO),
//! and — when starved — steals from the *front* of a peer's deque,
//! taking the shallowest (largest) pending sub-tree. Donation is
//! implicit: every locally pushed child is stealable, so there is no
//! threshold to tune, at the price of per-deque synchronization on the
//! owner's hot path (on a real GPU this is the classic deque scheme of
//! persistent-threads runtimes).
//!
//! Termination reuses the outstanding-work token protocol documented
//! in [`crate::termination`]: every queued entry holds one token, every
//! block holds one from obtaining work until its next pop, and
//! `tokens == 0` ⇔ every deque empty ∧ every block starved — the
//! quiescence condition, race-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::PopStats;

/// Where a successful steal-pool pop found its item — callers charge
/// different activities for a local pop vs. a steal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealSource {
    /// Popped from the back of the block's own deque (its DFS stack).
    Own,
    /// Stolen from the front of the given peer's deque.
    Stolen {
        /// Index of the victim worker.
        victim: usize,
    },
}

/// Result of a [`StealHandle::pop_with_stats`].
#[derive(Debug, PartialEq, Eq)]
pub enum StealOutcome<T> {
    /// A tree node to process, and where it came from.
    Item(T, StealSource),
    /// The traversal is complete (quiescence or early termination).
    Done,
}

/// A set of per-worker deques with steal-based balancing and exact
/// quiescence detection.
///
/// Create one per launch with the number of participating workers,
/// [`seed`](StealPool::seed) a root item, and hand each worker its
/// [`StealHandle`] via [`handle`](StealPool::handle).
pub struct StealPool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Outstanding-work tokens: queued entries + busy workers.
    tokens: AtomicUsize,
    /// Set once: quiescence detected or early termination signalled.
    done: AtomicBool,
    /// Successful steals (load-balancing traffic metric).
    steals: AtomicU64,
    /// Successful steals per *victim* deque — the Figure-5-style
    /// locality signal: a hot victim is a block whose sub-tree the
    /// rest of the pool lived off.
    steals_from: Vec<AtomicU64>,
    /// Failed full scans (starvation metric).
    failed_scans: AtomicU64,
    /// How long a starved worker sleeps between scans.
    poll_sleep: Duration,
}

impl<T> StealPool<T> {
    /// Creates a pool of `workers` deques, each pre-allocating
    /// `depth_hint` slots (the §IV-E stack-depth bound).
    pub fn new(workers: usize, depth_hint: usize) -> Self {
        assert!(workers > 0, "a steal pool needs at least one worker");
        StealPool {
            deques: (0..workers)
                .map(|_| Mutex::new(VecDeque::with_capacity(depth_hint)))
                .collect(),
            tokens: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            steals_from: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            failed_scans: AtomicU64::new(0),
            poll_sleep: Duration::from_micros(50),
        }
    }

    /// Overrides the starvation poll sleep (default 50µs).
    pub fn set_poll_sleep(&mut self, d: Duration) {
        self.poll_sleep = d;
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Seeds `worker`'s deque before launch.
    pub fn seed(&self, worker: usize, item: T) {
        self.tokens.fetch_add(1, Ordering::AcqRel);
        self.lock(worker).push_back(item);
    }

    /// Signals early termination (the PVC "vertex cover found" flag).
    pub fn signal_done(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether termination has been signalled or detected.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Total successful steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Successful steals broken down by victim deque, indexed by
    /// worker. Sums to [`total_steals`](Self::total_steals).
    pub fn steals_per_victim(&self) -> Vec<u64> {
        self.steals_from
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total failed whole-pool scans across all workers.
    pub fn total_failed_scans(&self) -> u64 {
        self.failed_scans.load(Ordering::Relaxed)
    }

    /// Items currently queued across all deques (racy snapshot).
    pub fn len_hint(&self) -> usize {
        self.deques.iter().map(|d| self.peek_len(d)).sum()
    }

    /// Creates the handle for `worker`. One per worker, each index
    /// used exactly once.
    pub fn handle(&self, worker: usize) -> StealHandle<'_, T> {
        assert!(worker < self.deques.len(), "worker index out of range");
        StealHandle {
            pool: self,
            me: worker,
            holds_token: false,
        }
    }

    fn lock(&self, worker: usize) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.deques[worker]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn peek_len(&self, deque: &Mutex<VecDeque<T>>) -> usize {
        deque.lock().map(|d| d.len()).unwrap_or(0)
    }
}

/// One worker's view of the [`StealPool`], tracking its
/// outstanding-work token.
pub struct StealHandle<'a, T> {
    pool: &'a StealPool<T>,
    me: usize,
    holds_token: bool,
}

impl<T> StealHandle<'_, T> {
    /// Pushes a branched child onto the back of this worker's own
    /// deque, where it is stealable by starving peers. May only be
    /// called while busy (holding a token), which the engine loop
    /// guarantees structurally. Returns the resulting deque length.
    pub fn push(&self, item: T) -> usize {
        debug_assert!(self.holds_token, "pushing while not processing");
        self.pool.tokens.fetch_add(1, Ordering::AcqRel);
        let mut deque = self.pool.lock(self.me);
        deque.push_back(item);
        deque.len()
    }

    /// Length of this worker's own deque (racy snapshot).
    pub fn own_len(&self) -> usize {
        self.pool.peek_len(&self.pool.deques[self.me])
    }

    /// Pops the next item: own back first (LIFO), then peers' fronts
    /// (FIFO steal), with the token-based quiescence check between
    /// scans. `attempts` counts whole-pool scans and `sleeps` the
    /// starvation naps, mirroring [`crate::WorkerHandle`]'s stats.
    pub fn pop_with_stats(&mut self) -> (StealOutcome<T>, PopStats) {
        self.release_token();
        let mut stats = PopStats::default();
        let outcome = loop {
            stats.attempts += 1;
            if self.pool.done.load(Ordering::Acquire) {
                break StealOutcome::Done;
            }
            if let Some(item) = self.pool.lock(self.me).pop_back() {
                // Token transfers from the queued entry to this worker.
                self.holds_token = true;
                break StealOutcome::Item(item, StealSource::Own);
            }
            if let Some((item, victim)) = self.try_steal() {
                self.holds_token = true;
                self.pool.steals.fetch_add(1, Ordering::Relaxed);
                self.pool.steals_from[victim].fetch_add(1, Ordering::Relaxed);
                break StealOutcome::Item(item, StealSource::Stolen { victim });
            }
            self.pool.failed_scans.fetch_add(1, Ordering::Relaxed);
            // Quiescence: no queued entries and no busy workers anywhere
            // ⇒ nothing can ever be pushed again.
            if self.pool.tokens.load(Ordering::Acquire) == 0 {
                self.pool.done.store(true, Ordering::Release);
                break StealOutcome::Done;
            }
            stats.sleeps += 1;
            std::thread::sleep(self.pool.poll_sleep);
        };
        (outcome, stats)
    }

    /// [`pop_with_stats`](Self::pop_with_stats) without the stats.
    pub fn pop(&mut self) -> StealOutcome<T> {
        self.pop_with_stats().0
    }

    fn try_steal(&self) -> Option<(T, usize)> {
        let n = self.pool.deques.len();
        for offset in 1..n {
            let victim = (self.me + offset) % n;
            if let Some(item) = self.pool.lock(victim).pop_front() {
                return Some((item, victim));
            }
        }
        None
    }

    /// Releases this worker's token without popping (used when a worker
    /// exits for a reason other than starvation).
    pub fn release_token(&mut self) {
        if self.holds_token {
            self.pool.tokens.fetch_sub(1, Ordering::AcqRel);
            self.holds_token = false;
        }
    }
}

impl<T> Drop for StealHandle<'_, T> {
    fn drop(&mut self) {
        self.release_token();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_worker_lifo_and_terminates() {
        let pool = StealPool::new(1, 8);
        pool.seed(0, 1u32);
        let mut h = pool.handle(0);
        assert_eq!(h.pop(), StealOutcome::Item(1, StealSource::Own));
        h.push(2);
        h.push(3);
        assert_eq!(
            h.pop(),
            StealOutcome::Item(3, StealSource::Own),
            "own pops are LIFO"
        );
        assert_eq!(h.pop(), StealOutcome::Item(2, StealSource::Own));
        assert_eq!(h.pop(), StealOutcome::Done);
        assert!(pool.is_done());
    }

    #[test]
    fn steals_take_the_oldest_entry() {
        let pool = StealPool::new(2, 8);
        pool.seed(0, 10u32);
        let mut h0 = pool.handle(0);
        let mut h1 = pool.handle(1);
        assert_eq!(h0.pop(), StealOutcome::Item(10, StealSource::Own));
        h0.push(11);
        h0.push(12);
        // The thief takes from the FRONT: the shallowest pending node.
        assert_eq!(
            h1.pop(),
            StealOutcome::Item(11, StealSource::Stolen { victim: 0 })
        );
        assert_eq!(pool.total_steals(), 1);
        assert_eq!(pool.steals_per_victim(), vec![1, 0]);
        assert_eq!(h0.pop(), StealOutcome::Item(12, StealSource::Own));
        // Single-threaded drain: a blocking pop would wait for the
        // other handle's token, so release h0's explicitly (concurrent
        // pops do this for real launches) and let h1 detect quiescence.
        h0.release_token();
        assert_eq!(h1.pop(), StealOutcome::Done);
        assert_eq!(h0.pop(), StealOutcome::Done);
        assert_eq!(pool.len_hint(), 0);
    }

    #[test]
    fn signal_done_preempts_pending_work() {
        let pool = StealPool::new(2, 8);
        pool.seed(0, 1u32);
        pool.signal_done();
        assert_eq!(pool.handle(1).pop(), StealOutcome::Done);
        assert_eq!(
            pool.len_hint(),
            1,
            "entries remain queued but unreachable — by design"
        );
    }

    /// The steal-pool analogue of the worklist's tree-traversal test:
    /// all workers must terminate with exactly 2^depth leaves processed.
    #[test]
    fn multi_worker_tree_traversal_terminates_exactly() {
        const WORKERS: usize = 8;
        const DEPTH: u32 = 10;
        let pool = Arc::new(StealPool::<u32>::new(WORKERS, 64));
        pool.seed(0, DEPTH);
        let leaves = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let pool = Arc::clone(&pool);
                let leaves = Arc::clone(&leaves);
                s.spawn(move || {
                    let mut h = pool.handle(w);
                    while let StealOutcome::Item(mut node, _) = h.pop() {
                        // Descend depth-first, leaving siblings stealable.
                        loop {
                            if node == 0 {
                                leaves.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            h.push(node - 1);
                            node -= 1;
                        }
                    }
                });
            }
        });

        assert_eq!(leaves.load(Ordering::Relaxed), 1 << DEPTH);
        assert!(pool.is_done());
        assert_eq!(pool.len_hint(), 0);
        assert_eq!(
            pool.steals_per_victim().iter().sum::<u64>(),
            pool.total_steals(),
            "per-victim counters must partition the steal total"
        );
    }

    #[test]
    fn tokens_prevent_premature_termination() {
        // A worker holding in-flight work (token, empty deques) must
        // keep a starved peer polling, not terminating.
        let pool = Arc::new(StealPool::<u32>::new(2, 8));
        pool.seed(0, 7);
        let (popped_tx, popped_rx) = std::sync::mpsc::channel::<()>();
        let (resume_tx, resume_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let pool_holder = Arc::clone(&pool);
            let holder = s.spawn(move || {
                let mut h = pool_holder.handle(0);
                assert_eq!(h.pop(), StealOutcome::Item(7, StealSource::Own));
                popped_tx.send(()).unwrap();
                resume_rx.recv().unwrap();
                h.push(8);
                drop(h); // release the busy token without popping
                let mut h = pool_holder.handle(0);
                let mut got = 0;
                while let StealOutcome::Item(..) = h.pop() {
                    got += 1;
                }
                got
            });
            popped_rx.recv().unwrap();
            let pool_starved = Arc::clone(&pool);
            let starved = s.spawn(move || {
                let mut h = pool_starved.handle(1);
                let mut got = 0;
                while let StealOutcome::Item(..) = h.pop() {
                    got += 1;
                }
                got
            });
            std::thread::sleep(Duration::from_millis(20));
            assert!(!pool.is_done(), "must not terminate while a token is held");
            resume_tx.send(()).unwrap();
            let total = holder.join().unwrap() + starved.join().unwrap();
            assert_eq!(total, 1, "item 8 is delivered exactly once");
        });
        assert!(pool.is_done());
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn handle_bounds_are_checked() {
        let pool = StealPool::<u32>::new(2, 4);
        let _ = pool.handle(2);
    }
}
