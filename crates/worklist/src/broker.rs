//! The Broker Work Distributor: a bounded, linearizable MPMC queue.
//!
//! This reimplements the data structure the paper adopts for its global
//! worklist (Kerbl et al., *The Broker Queue: A Fast, Linearizable FIFO
//! Queue for Fine-Granular Work Distribution on the GPU*, ICS'18). The
//! defining idea is a two-phase protocol:
//!
//! 1. **Broker phase** — producers/consumers negotiate on an atomic
//!    element `count`. An enqueue first claims `count += 1`; if that
//!    would exceed capacity it rolls back and reports *full* without
//!    ever touching the ring. A dequeue claims `count -= 1`; if the
//!    count was non-positive it rolls back and reports *empty*.
//! 2. **Ring phase** — winners take a monotone head/tail ticket and
//!    rendezvous with their slot via a per-slot sequence number. Because
//!    the broker phase guaranteed an element (or a free slot) is
//!    *committed*, the rendezvous always completes.
//!
//! The same protocol (Vyukov-style sequence slots + count brokering)
//! works unchanged with OS threads, which is what our simulated thread
//! blocks are.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

/// One ring slot. `seq` encodes the rendezvous state:
/// `== ticket` → free for the producer holding `ticket`;
/// `== ticket + 1` → filled, awaiting the consumer holding `ticket`.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded multi-producer multi-consumer FIFO queue (the BWD of §IV-C).
///
/// `try_push`/`try_pop` are lock-free in the broker phase and
/// wait-free-in-practice in the ring phase (a claimed slot is always
/// released by a peer that already holds a matching ticket).
///
/// # Examples
///
/// ```
/// use parvc_worklist::BrokerQueue;
/// let q = BrokerQueue::with_capacity(4);
/// assert!(q.try_push(7).is_ok());
/// assert_eq!(q.len_hint(), 1);
/// assert_eq!(q.try_pop(), Some(7));
/// assert_eq!(q.try_pop(), None);
/// ```
pub struct BrokerQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Broker count: committed elements. May transiently exceed the
    /// number of *visible* elements while a producer is mid-write.
    count: AtomicI64,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: the slot protocol hands each `value` cell to exactly one thread
// at a time (the holder of the matching ticket), so sending T between
// threads is the only requirement.
unsafe impl<T: Send> Sync for BrokerQueue<T> {}
unsafe impl<T: Send> Send for BrokerQueue<T> {}

impl<T> BrokerQueue<T> {
    /// Creates a queue holding at most `capacity` elements
    /// (rounded up to the next power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        BrokerQueue {
            slots,
            mask: cap - 1,
            count: AtomicI64::new(0),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Best-effort element count — the `numEntries` the Hybrid scheme
    /// compares against its donation threshold (Figure 4 line 23).
    /// Exact when quiescent; may lag by in-flight operations otherwise.
    pub fn len_hint(&self) -> usize {
        self.count.load(Ordering::Relaxed).max(0) as usize
    }

    /// Whether the queue currently commits to zero elements.
    pub fn is_empty_hint(&self) -> bool {
        self.count.load(Ordering::Acquire) <= 0
    }

    /// Attempts to enqueue; returns the value back if the queue is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        // Broker phase: claim space.
        let prev = self.count.fetch_add(1, Ordering::AcqRel);
        if prev >= self.capacity() as i64 {
            self.count.fetch_sub(1, Ordering::AcqRel);
            return Err(value);
        }
        // Ring phase: claim a ticket; rendezvous is now guaranteed.
        let ticket = self.tail.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket & self.mask];
        let mut spins = 0u32;
        while slot.seq.load(Ordering::Acquire) != ticket {
            spin_wait(&mut spins);
        }
        // SAFETY: seq == ticket grants us exclusive write access.
        unsafe { (*slot.value.get()).write(value) };
        slot.seq.store(ticket + 1, Ordering::Release);
        Ok(())
    }

    /// Attempts to dequeue; returns `None` if the queue is empty.
    pub fn try_pop(&self) -> Option<T> {
        // Broker phase: claim an element.
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        if prev <= 0 {
            self.count.fetch_add(1, Ordering::AcqRel);
            return None;
        }
        // Ring phase.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket & self.mask];
        let mut spins = 0u32;
        while slot.seq.load(Ordering::Acquire) != ticket + 1 {
            spin_wait(&mut spins);
        }
        // SAFETY: seq == ticket + 1 grants us exclusive read access to a
        // value written by the producer holding the same ticket.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        // Recycle the slot for the producer one lap ahead.
        slot.seq.store(ticket + self.mask + 1, Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for BrokerQueue<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

#[inline]
fn spin_wait(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = BrokerQueue::with_capacity(8);
        for i in 0..8 {
            q.try_push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn full_rejects_without_losing_items() {
        let q = BrokerQueue::with_capacity(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len_hint(), 2);
        assert_eq!(q.try_pop(), Some(1));
        q.try_push(4).unwrap();
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(4));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let q = BrokerQueue::<u32>::with_capacity(5);
        assert_eq!(q.capacity(), 8);
        let q = BrokerQueue::<u32>::with_capacity(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn wraparound_many_laps() {
        let q = BrokerQueue::with_capacity(4);
        for lap in 0..100 {
            for i in 0..4 {
                q.try_push(lap * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.try_pop(), Some(lap * 4 + i));
            }
        }
    }

    #[test]
    fn drops_remaining_items() {
        // Leak detector: every Arc clone pushed must be dropped with the
        // queue, or the strong count stays inflated.
        let sentinel = Arc::new(());
        {
            let q = BrokerQueue::with_capacity(16);
            for _ in 0..10 {
                q.try_push(Arc::clone(&sentinel)).unwrap();
            }
            assert_eq!(Arc::strong_count(&sentinel), 11);
        }
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn mpmc_stress_no_loss_no_duplication() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 20_000;
        let q = Arc::new(BrokerQueue::with_capacity(64));
        let popped_sum = Arc::new(AtomicU64::new(0));
        let popped_count = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut item = (p as u64) * PER_PRODUCER + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&popped_sum);
                let cnt = Arc::clone(&popped_count);
                s.spawn(move || loop {
                    if let Some(v) = q.try_pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        if cnt.fetch_add(1, Ordering::Relaxed) + 1
                            == (PRODUCERS as u64) * PER_PRODUCER
                        {
                            return;
                        }
                    } else if cnt.load(Ordering::Relaxed) == (PRODUCERS as u64) * PER_PRODUCER {
                        return;
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });

        let total = (PRODUCERS as u64) * PER_PRODUCER;
        assert_eq!(popped_count.load(Ordering::Relaxed), total);
        // Sum of 0..total since the items partition that range.
        assert_eq!(popped_sum.load(Ordering::Relaxed), total * (total - 1) / 2);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn mpmc_count_overshoot_is_bounded() {
        // The broker count is a *commitment* count: a push that will fail
        // transiently inflates it before rolling back, so under P
        // concurrent producers the observable count may exceed capacity
        // by at most P (each thread has one in-flight operation). That
        // bounded overshoot is inherent to the BWD protocol; committed
        // elements never exceed capacity (checked at quiescence).
        const THREADS: usize = 4;
        let q = Arc::new(BrokerQueue::with_capacity(8));
        let overshoot = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let q = Arc::clone(&q);
                let overshoot = Arc::clone(&overshoot);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        if q.try_push(i).is_ok() {
                            if q.len_hint() > 8 + THREADS {
                                overshoot.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            // Full: drain one to keep making progress.
                            let _ = q.try_pop();
                        }
                    }
                });
            }
        });
        assert_eq!(
            overshoot.load(Ordering::Relaxed),
            0,
            "count overshoot exceeded bound"
        );
        // Quiescent state: the committed count is exact and within capacity.
        assert!(
            q.len_hint() <= 8,
            "quiescent count {} exceeds capacity",
            q.len_hint()
        );
        let mut drained = 0;
        while q.try_pop().is_some() {
            drained += 1;
        }
        assert!(drained <= 8);
    }
}
