//! Per-block local DFS stacks.

/// A bounded per-block stack holding intermediate tree nodes.
///
/// On the GPU these stacks live in global memory, pre-allocated to the
/// maximum possible search depth (§III-C): dynamic allocation inside a
/// kernel is too expensive, and the depth bound — the greedy cover size
/// for MVC, `k + 1` for PVC — is known before launch. We mirror that by
/// reserving capacity up front and treating overflow as a hard error
/// rather than growing (growth would mask a wrong depth bound).
///
/// # Examples
///
/// ```
/// use parvc_worklist::LocalStack;
/// let mut s = LocalStack::with_depth_bound(4);
/// s.push(10).unwrap();
/// s.push(20).unwrap();
/// assert_eq!(s.pop(), Some(20));
/// assert_eq!(s.high_water(), 2);
/// ```
#[derive(Debug)]
pub struct LocalStack<T> {
    items: Vec<T>,
    bound: usize,
    high_water: usize,
    pushes: u64,
    pops: u64,
}

impl<T> LocalStack<T> {
    /// Creates a stack pre-allocated for at most `bound` entries.
    pub fn with_depth_bound(bound: usize) -> Self {
        LocalStack {
            items: Vec::with_capacity(bound),
            bound,
            high_water: 0,
            pushes: 0,
            pops: 0,
        }
    }

    /// Pushes an entry; fails (returning it) if the depth bound would be
    /// exceeded — on the GPU that would be writing past the stack's
    /// reserved global-memory region.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.bound {
            return Err(item);
        }
        self.items.push(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Pops the most recent entry, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Whether the stack is empty (Figure 4 line 5).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Configured depth bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Deepest the stack has ever been — validates the §IV-E sizing rule
    /// in tests (never exceeds greedy size / k).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total pushes (for the Figure 6 activity accounting).
    pub fn total_pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops.
    pub fn total_pops(&self) -> u64 {
        self.pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = LocalStack::with_depth_bound(3);
        s.push(1).unwrap();
        s.push(2).unwrap();
        s.push(3).unwrap();
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn bound_is_enforced() {
        let mut s = LocalStack::with_depth_bound(2);
        s.push('a').unwrap();
        s.push('b').unwrap();
        assert_eq!(s.push('c'), Err('c'));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_bound_rejects_everything() {
        let mut s = LocalStack::with_depth_bound(0);
        assert_eq!(s.push(1), Err(1));
        assert!(s.is_empty());
    }

    #[test]
    fn statistics_track_traffic() {
        let mut s = LocalStack::with_depth_bound(8);
        for i in 0..5 {
            s.push(i).unwrap();
        }
        for _ in 0..3 {
            s.pop();
        }
        s.push(9).unwrap();
        assert_eq!(s.total_pushes(), 6);
        assert_eq!(s.total_pops(), 3);
        assert_eq!(s.high_water(), 5);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn no_allocation_after_construction() {
        let mut s: LocalStack<u64> = LocalStack::with_depth_bound(100);
        let cap_before = s.items.capacity();
        for i in 0..100 {
            s.push(i).unwrap();
        }
        assert_eq!(
            s.items.capacity(),
            cap_before,
            "stack must be pre-allocated"
        );
    }
}
