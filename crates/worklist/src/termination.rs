//! The paper's §IV-C worklist wrapper: waiting, quiescence detection,
//! and early termination.
//!
//! By design the bare BWD just reports "empty" — but an empty worklist
//! means one of two very different things (§IV-C): either other blocks
//! are still traversing and may donate work later (*keep polling*), or
//! every block is starved (*the traversal is over; terminate*).
//!
//! The paper distinguishes the two by atomically checking "worklist
//! empty ∧ all blocks are trying to remove". We implement the same
//! condition with an explicit *outstanding-work token count*, which
//! closes the classic race where a block grabs the last entry between a
//! peer's emptiness check and its waiting-count check:
//!
//! * every queued entry holds one token;
//! * every block holds one token from the moment it obtains work until
//!   it next asks for work (blocks only donate entries while holding a
//!   token, never while waiting);
//! * therefore `tokens == 0` ⇔ queue empty ∧ all blocks waiting, with no
//!   in-flight work — exactly the paper's condition, race-free.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::BrokerQueue;

/// Effort statistics for one [`WorkerHandle::pop_with_stats`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PopStats {
    /// Pop attempts made (1 = immediate success).
    pub attempts: u64,
    /// Starvation sleeps taken while waiting for peers to donate.
    pub sleeps: u64,
}

/// Result of a [`WorkerHandle::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum PopOutcome<T> {
    /// A tree node to process.
    Item(T),
    /// The traversal is complete (quiescence or early termination);
    /// the block should exit (Figure 4 lines 9–10).
    Done,
}

/// The global worklist: a [`BrokerQueue`] plus termination protocol.
///
/// Create one per kernel launch with the number of participating blocks,
/// [`seed`](Worklist::seed) it with the root tree node, and hand each
/// block a [`WorkerHandle`] via [`handle`](Worklist::handle).
pub struct Worklist<T> {
    queue: BrokerQueue<T>,
    /// Outstanding-work tokens: queued entries + busy blocks.
    tokens: AtomicUsize,
    /// Set once: either quiescence was detected or a PVC solution ended
    /// the search early.
    done: AtomicBool,
    /// Number of blocks currently inside `pop` with no token — the
    /// paper's "blocks trying to remove" count, kept for reporting.
    waiting: AtomicUsize,
    /// Total failed pop attempts (contention/starvation metric).
    failed_pops: AtomicU64,
    /// How long a starved block sleeps between polls, mirroring the
    /// paper's "let the thread block sleep for some time".
    poll_sleep: Duration,
}

impl<T> Worklist<T> {
    /// Creates a worklist with the given entry capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Worklist {
            queue: BrokerQueue::with_capacity(capacity),
            tokens: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            waiting: AtomicUsize::new(0),
            failed_pops: AtomicU64::new(0),
            poll_sleep: Duration::from_micros(50),
        }
    }

    /// Overrides the starvation poll sleep (default 50µs).
    pub fn set_poll_sleep(&mut self, d: Duration) {
        self.poll_sleep = d;
    }

    /// Seeds the worklist before launch. Panics if the queue is full —
    /// seeding happens before any block runs.
    pub fn seed(&self, item: T) {
        self.tokens.fetch_add(1, Ordering::AcqRel);
        if self.queue.try_push(item).is_err() {
            panic!("worklist seeded beyond capacity");
        }
    }

    /// Entry count, for the Hybrid donation threshold (Fig. 4 line 23).
    pub fn len_hint(&self) -> usize {
        self.queue.len_hint()
    }

    /// Entry capacity of the underlying queue.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Signals early termination (the PVC "vertex cover found" flag).
    /// All subsequent and in-progress `pop`s return [`PopOutcome::Done`].
    pub fn signal_done(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether termination has been signalled or detected.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Total failed pop attempts across all blocks.
    pub fn total_failed_pops(&self) -> u64 {
        self.failed_pops.load(Ordering::Relaxed)
    }

    /// Creates the per-block handle. One per thread block.
    pub fn handle(&self) -> WorkerHandle<'_, T> {
        WorkerHandle {
            wl: self,
            holds_token: false,
        }
    }
}

/// Per-block view of the [`Worklist`], tracking whether this block holds
/// an outstanding-work token (i.e. is busy processing a sub-tree).
pub struct WorkerHandle<'a, T> {
    wl: &'a Worklist<T>,
    holds_token: bool,
}

impl<'a, T> WorkerHandle<'a, T> {
    /// Donates a tree node to the global worklist (Figure 4 line 26).
    ///
    /// Fails with the node back if the queue is at capacity; the caller
    /// must then push it onto its local stack instead. May only be
    /// called while busy (holding a token), which the Hybrid loop
    /// guarantees structurally.
    pub fn add(&self, item: T) -> Result<(), T> {
        debug_assert!(self.holds_token, "donating while not processing");
        self.wl.tokens.fetch_add(1, Ordering::AcqRel);
        match self.wl.queue.try_push(item) {
            Ok(()) => Ok(()),
            Err(back) => {
                self.wl.tokens.fetch_sub(1, Ordering::AcqRel);
                Err(back)
            }
        }
    }

    /// Worklist entry count, for the donation threshold check.
    pub fn len_hint(&self) -> usize {
        self.wl.len_hint()
    }

    /// The §IV-C remove loop: releases this block's token (its previous
    /// sub-tree is finished), then polls until work arrives or the
    /// traversal provably ends.
    pub fn pop(&mut self) -> PopOutcome<T> {
        self.pop_with_stats().0
    }

    /// [`pop`](Self::pop) plus how hard it was: the attempt and sleep
    /// counts feed the Figure 6 "remove from worklist" cycle accounting
    /// (contention and starvation are the whole cost of that activity).
    pub fn pop_with_stats(&mut self) -> (PopOutcome<T>, PopStats) {
        self.release_token();
        let mut stats = PopStats::default();
        let mut registered_waiting = false;
        let outcome = loop {
            stats.attempts += 1;
            if self.wl.done.load(Ordering::Acquire) {
                break PopOutcome::Done;
            }
            if let Some(item) = self.wl.queue.try_pop() {
                // Token transfers from the queue entry to this block.
                self.holds_token = true;
                break PopOutcome::Item(item);
            }
            self.wl.failed_pops.fetch_add(1, Ordering::Relaxed);
            if !registered_waiting {
                self.wl.waiting.fetch_add(1, Ordering::AcqRel);
                registered_waiting = true;
            }
            // Quiescence: no queued entries and no busy blocks anywhere
            // ⇒ nothing can ever be added again.
            if self.wl.tokens.load(Ordering::Acquire) == 0 {
                self.wl.done.store(true, Ordering::Release);
                break PopOutcome::Done;
            }
            stats.sleeps += 1;
            std::thread::sleep(self.wl.poll_sleep);
        };
        if registered_waiting {
            self.wl.waiting.fetch_sub(1, Ordering::AcqRel);
        }
        (outcome, stats)
    }

    /// Releases this block's token without popping (used when a block
    /// exits for a reason other than starvation, e.g. PVC found-flag).
    pub fn release_token(&mut self) {
        if self.holds_token {
            self.wl.tokens.fetch_sub(1, Ordering::AcqRel);
            self.holds_token = false;
        }
    }
}

impl<'a, T> Drop for WorkerHandle<'a, T> {
    fn drop(&mut self) {
        self.release_token();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_worker_drains_and_terminates() {
        let wl = Worklist::with_capacity(8);
        wl.seed(1u32);
        let mut h = wl.handle();
        assert_eq!(h.pop(), PopOutcome::Item(1));
        // While busy, donate two children.
        h.add(2).unwrap();
        h.add(3).unwrap();
        assert_eq!(h.pop(), PopOutcome::Item(2));
        assert_eq!(h.pop(), PopOutcome::Item(3));
        assert_eq!(h.pop(), PopOutcome::Done);
        assert!(wl.is_done());
    }

    #[test]
    fn full_queue_bounces_donation() {
        let wl = Worklist::with_capacity(2);
        wl.seed(0u32);
        let mut h = wl.handle();
        assert_eq!(h.pop(), PopOutcome::Item(0));
        h.add(1).unwrap();
        h.add(2).unwrap();
        assert_eq!(h.add(3), Err(3), "third donation must bounce (capacity 2)");
        // The bounced donation must not corrupt the token count: drain.
        assert_eq!(h.pop(), PopOutcome::Item(1));
        assert_eq!(h.pop(), PopOutcome::Item(2));
        assert_eq!(h.pop(), PopOutcome::Done);
    }

    #[test]
    fn signal_done_preempts_pending_work() {
        // The PVC early-exit flag: once set, blocks stop taking new tree
        // nodes even if the worklist still has entries (Fig. 4 variant).
        let wl = Worklist::<u32>::with_capacity(4);
        wl.seed(0);
        wl.seed(1);
        wl.signal_done();
        let mut h = wl.handle();
        assert_eq!(h.pop(), PopOutcome::Done);
        assert!(wl.is_done());
        // Entries remain queued but unreachable — by design.
        assert_eq!(wl.len_hint(), 2);
    }

    #[test]
    fn waiting_worker_wakes_when_peer_donates() {
        let wl = Arc::new(Worklist::<u32>::with_capacity(8));
        wl.seed(5);
        std::thread::scope(|s| {
            let wl_a = Arc::clone(&wl);
            let consumer = s.spawn(move || {
                let mut h = wl_a.handle();
                let mut got = Vec::new();
                loop {
                    match h.pop() {
                        PopOutcome::Item(i) => got.push(i),
                        PopOutcome::Done => return got,
                    }
                }
            });
            let wl_b = Arc::clone(&wl);
            s.spawn(move || {
                let mut h = wl_b.handle();
                // Take the seed, stall, then donate two more.
                if let PopOutcome::Item(_) = h.pop() {
                    std::thread::sleep(Duration::from_millis(10));
                    h.add(6).unwrap();
                    h.add(7).unwrap();
                }
                while let PopOutcome::Item(_) = h.pop() {}
            });
            let got = consumer.join().unwrap();
            // The consumer never saw a spurious Done while the peer held
            // its token; whatever it received came after the stall.
            assert!(got.iter().all(|&i| i >= 6 || i == 5));
        });
        assert!(wl.is_done());
        assert_eq!(wl.len_hint(), 0);
    }

    /// A miniature tree traversal: every worker pops a "node" carrying a
    /// remaining depth, donates one child, keeps one locally (simulating
    /// the hybrid split), and all workers must terminate with exactly
    /// 2^depth leaves processed in total.
    #[test]
    fn multi_worker_tree_traversal_terminates_exactly() {
        const WORKERS: usize = 8;
        const DEPTH: u32 = 10;
        let wl = Arc::new(Worklist::<u32>::with_capacity(1024));
        wl.seed(DEPTH);
        let leaves = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                let wl = Arc::clone(&wl);
                let leaves = Arc::clone(&leaves);
                s.spawn(move || {
                    let mut h = wl.handle();
                    let mut local: Vec<u32> = Vec::new();
                    'outer: loop {
                        let mut node = match local.pop() {
                            Some(n) => n,
                            None => match h.pop() {
                                PopOutcome::Item(n) => n,
                                PopOutcome::Done => break 'outer,
                            },
                        };
                        // Descend this sub-tree depth-first.
                        loop {
                            if node == 0 {
                                leaves.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            // Donate one child if the worklist is low,
                            // else keep it locally (the hybrid rule).
                            let child = node - 1;
                            if h.len_hint() < 16 {
                                if let Err(back) = h.add(child) {
                                    local.push(back);
                                }
                            } else {
                                local.push(child);
                            }
                            node -= 1;
                        }
                    }
                });
            }
        });

        assert_eq!(leaves.load(Ordering::Relaxed), 1 << DEPTH);
        assert!(wl.is_done());
        assert_eq!(wl.len_hint(), 0);
    }

    #[test]
    fn tokens_prevent_premature_termination() {
        // One worker holds work for a while; a starved worker must NOT
        // declare done until the holder finishes.
        let wl = Arc::new(Worklist::<u32>::with_capacity(8));
        wl.seed(1);
        let (sender, receiver) = std::sync::mpsc::channel::<()>();

        let drain = |wl: &Worklist<u32>| {
            let mut h = wl.handle();
            let mut items = Vec::new();
            loop {
                match h.pop() {
                    PopOutcome::Item(i) => items.push(i),
                    PopOutcome::Done => return items,
                }
            }
        };
        let (popped_tx, popped_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let wl_holder = Arc::clone(&wl);
            let holder = s.spawn(move || {
                let mut h = wl_holder.handle();
                assert_eq!(h.pop(), PopOutcome::Item(1));
                popped_tx.send(()).unwrap();
                // Simulate long processing; starved peer polls meanwhile.
                receiver.recv().unwrap();
                h.add(2).unwrap();
                drop(h); // release the busy token without popping
                drain(&wl_holder)
            });
            // Only start the peer once the holder owns the seed.
            popped_rx.recv().unwrap();
            let wl_starved = Arc::clone(&wl);
            let starved = s.spawn(move || drain(&wl_starved));
            std::thread::sleep(Duration::from_millis(20));
            assert!(!wl.is_done(), "must not terminate while a token is held");
            sender.send(()).unwrap();
            let a = holder.join().unwrap();
            let b = starved.join().unwrap();
            // Exactly one of the two drained item 2.
            assert_eq!(a.len() + b.len(), 1);
        });
        assert!(wl.is_done());
    }
}
