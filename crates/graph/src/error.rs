//! Error type shared by graph construction and IO.

use std::fmt;

/// Errors produced while building or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Number of vertices in the graph under construction.
        num_vertices: u32,
    },
    /// A self loop `(v, v)` was supplied; the suite handles simple graphs
    /// only (§II-A assumes finite, simple, undirected graphs).
    SelfLoop(
        /// The vertex with the loop.
        u32,
    ),
    /// A weight array's length did not match the vertex count.
    WeightCountMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of vertices in the graph.
        num_vertices: u32,
    },
    /// A vertex weight of 0 was supplied; the weighted solvers require
    /// every weight ≥ 1 (budget arithmetic charges at least one unit
    /// per cover vertex).
    ZeroWeight(
        /// The zero-weight vertex.
        u32,
    ),
    /// The weights sum past `i64::MAX`. Every cover weighs at most the
    /// total, so this cap is what keeps the solvers' signed budget
    /// arithmetic overflow-free.
    WeightSumOverflow,
    /// Input text could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An IO error surfaced while reading or writing a graph file.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {v} (simple graphs only)"),
            GraphError::WeightCountMismatch {
                weights,
                num_vertices,
            } => write!(f, "{weights} weights for {num_vertices} vertices"),
            GraphError::ZeroWeight(v) => {
                write!(f, "zero weight on vertex {v} (weights must be >= 1)")
            }
            GraphError::WeightSumOverflow => {
                write!(f, "vertex weights sum past i64::MAX (unsupported)")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}
