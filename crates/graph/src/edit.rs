//! Edit scripts — batched graph deltas for the dynamic-graph pipeline.
//!
//! A [`CsrGraph`] is immutable by design (built once, shared read-only
//! by every thread block), so "the graph changed" is modeled as a
//! value: an [`EditScript`] is an ordered batch of vertex/edge
//! insertions and deletions that [`EditScript::apply`] validates
//! against a graph and materializes as a **new** `CsrGraph`. The
//! incremental re-solve driver (`parvc_core::resolve`) consumes the
//! same script to compute which components the batch dirtied, so the
//! edit semantics here are the contract the invalidation rules lean on:
//!
//! * **Vertex ids are stable.** [`Edit::DeleteVertex`] drops the
//!   vertex's incident edges and leaves the id behind as an isolated
//!   vertex (isolated vertices never appear in an optimal cover, so
//!   this is observationally equivalent to removal while keeping every
//!   surviving vertex's id — and its cached component label — intact).
//!   [`Edit::InsertVertex`] appends at the next free id.
//! * **Ops are sequential and strict.** Each op is validated against
//!   the graph state produced by the ops before it: inserting an edge
//!   that exists, deleting one that doesn't, referencing an
//!   out-of-range vertex, a self-loop, or a zero vertex weight is an
//!   [`EditError`], not a silent no-op — the fuzz generator
//!   ([`crate::gen::edit_script`]) promises scripts that always apply
//!   cleanly, and the property suites lean on strictness to catch
//!   generator bugs.
//! * **Weights are preserved.** Applying to a weighted graph keeps its
//!   weight channel; inserting a vertex with weight ≥ 2 into an
//!   unweighted graph promotes the result to weighted (existing
//!   vertices keep weight 1).
//!
//! Scripts round-trip through a line-oriented text format
//! ([`EditScript::parse`] / [`EditScript::to_text`]) so the CLI's
//! `parvc resolve --edits <file>` can replay recorded churn:
//!
//! ```text
//! # one op per line; blank lines and #-comments are skipped
//! +e 3 17     # insert edge {3, 17}
//! -e 0 5      # delete edge {0, 5}
//! +v 4        # insert a vertex of weight 4 (id = current |V|)
//! -v 12       # delete vertex 12 (drops its incident edges)
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::{CsrGraph, VertexId};

/// One graph delta. Edge endpoints are unordered (`{u, v}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Append a new vertex (id = the vertex count at this point of the
    /// script) with the given weight (must be ≥ 1).
    InsertVertex {
        /// The new vertex's weight (1 on unweighted graphs).
        weight: u64,
    },
    /// Drop every edge incident to the vertex, leaving the id behind
    /// as an isolated vertex (ids stay stable; see the module docs).
    DeleteVertex(VertexId),
    /// Insert the edge `{u, v}`; it must not already exist.
    InsertEdge(VertexId, VertexId),
    /// Delete the edge `{u, v}`; it must exist.
    DeleteEdge(VertexId, VertexId),
}

/// Why an [`EditScript`] failed to validate or apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// An op referenced a vertex id `>= |V|` at its point in the script.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The vertex count at that point of the script.
        num_vertices: u32,
    },
    /// An edge op named the same vertex twice.
    SelfLoop(
        /// The repeated endpoint.
        VertexId,
    ),
    /// [`Edit::InsertEdge`] on an edge that already exists.
    DuplicateEdge(VertexId, VertexId),
    /// [`Edit::DeleteEdge`] on an edge that does not exist.
    MissingEdge(VertexId, VertexId),
    /// [`Edit::InsertVertex`] with weight 0 (the weighted solvers
    /// require every weight ≥ 1).
    ZeroWeight,
    /// The script text could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Rebuilding the edited graph failed (e.g. the weight total
    /// overflowed the graph layer's `i64::MAX` cap).
    Graph(crate::GraphError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range (|V| = {num_vertices})"),
            EditError::SelfLoop(v) => write!(f, "self loop on vertex {v}"),
            EditError::DuplicateEdge(u, v) => write!(f, "edge {{{u}, {v}}} already exists"),
            EditError::MissingEdge(u, v) => write!(f, "edge {{{u}, {v}}} does not exist"),
            EditError::ZeroWeight => write!(f, "inserted vertex weight must be >= 1"),
            EditError::Parse { line, message } => write!(f, "line {line}: {message}"),
            EditError::Graph(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for EditError {}

impl From<crate::GraphError> for EditError {
    fn from(e: crate::GraphError) -> Self {
        EditError::Graph(e)
    }
}

/// Aggregate facts about a script against a specific base graph —
/// everything the re-solve driver's warm bounds need, computed in one
/// sequential pass (see [`EditScript::summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditSummary {
    /// Edges inserted.
    pub edge_inserts: u32,
    /// Edges deleted by explicit [`Edit::DeleteEdge`] ops.
    pub edge_deletes: u32,
    /// Vertices appended.
    pub vertex_inserts: u32,
    /// Vertices deleted (isolated in place).
    pub vertex_deletes: u32,
    /// How much a minimum cover's **cardinality** can have dropped:
    /// one per deletion op (deleting an edge lowers the optimum by at
    /// most 1; deleting a vertex, with all its incident edges, by at
    /// most 1 — the deleted vertex itself).
    pub slack_cardinality: u64,
    /// How much a minimum cover's **weight** can have dropped: per
    /// deleted edge the lighter endpoint's weight (a cover of the
    /// smaller graph plus that endpoint covers the larger one), per
    /// deleted vertex its own weight.
    pub slack_weight: u64,
}

/// An ordered batch of graph deltas. See the module docs for the
/// semantics each op carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditScript {
    ops: Vec<Edit>,
}

/// Normalizes an edge op's endpoints and validates range/self-loop.
fn check_edge(u: VertexId, v: VertexId, n: u32) -> Result<(VertexId, VertexId), EditError> {
    if u == v {
        return Err(EditError::SelfLoop(u));
    }
    for w in [u, v] {
        if w >= n {
            return Err(EditError::VertexOutOfRange {
                vertex: w,
                num_vertices: n,
            });
        }
    }
    Ok((u.min(v), u.max(v)))
}

impl EditScript {
    /// An empty script.
    pub fn new() -> Self {
        EditScript::default()
    }

    /// Builds a script from ops (validation happens at apply time,
    /// against the graph the script is applied to).
    pub fn from_ops(ops: Vec<Edit>) -> Self {
        EditScript { ops }
    }

    /// Appends an op.
    pub fn push(&mut self, op: Edit) {
        self.ops.push(op);
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[Edit] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates the script against `g` and materializes the edited
    /// graph. Ops apply in order, each against the state the previous
    /// ops produced; the first invalid op aborts with its
    /// [`EditError`]. `g` itself is never modified.
    pub fn apply(&self, g: &CsrGraph) -> Result<CsrGraph, EditError> {
        let mut n = g.num_vertices();
        let mut edges: BTreeSet<(VertexId, VertexId)> = g.edges().collect();
        let mut weights: Vec<u64> = match g.weights() {
            Some(w) => w.to_vec(),
            None => vec![1; n as usize],
        };
        let mut weighted = g.is_weighted();
        for op in &self.ops {
            match *op {
                Edit::InsertVertex { weight } => {
                    if weight == 0 {
                        return Err(EditError::ZeroWeight);
                    }
                    weighted |= weight != 1;
                    weights.push(weight);
                    n += 1;
                }
                Edit::DeleteVertex(v) => {
                    if v >= n {
                        return Err(EditError::VertexOutOfRange {
                            vertex: v,
                            num_vertices: n,
                        });
                    }
                    edges.retain(|&(a, b)| a != v && b != v);
                }
                Edit::InsertEdge(u, v) => {
                    let e = check_edge(u, v, n)?;
                    if !edges.insert(e) {
                        return Err(EditError::DuplicateEdge(e.0, e.1));
                    }
                }
                Edit::DeleteEdge(u, v) => {
                    let e = check_edge(u, v, n)?;
                    if !edges.remove(&e) {
                        return Err(EditError::MissingEdge(e.0, e.1));
                    }
                }
            }
        }
        let edge_vec: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        let out = CsrGraph::from_edges(n, &edge_vec)?;
        Ok(if weighted {
            out.with_weights(weights)?
        } else {
            out
        })
    }

    /// Every **pre-existing** vertex of the base graph (id `<
    /// n_before`) any op touches: edge endpoints, deleted vertices.
    /// Vertices the script itself appended are excluded — they had no
    /// component in the base graph to dirty. Sorted, deduplicated.
    pub fn touched_existing(&self, n_before: u32) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::new();
        for op in &self.ops {
            match *op {
                Edit::InsertVertex { .. } => {}
                Edit::DeleteVertex(v) => out.push(v),
                Edit::InsertEdge(u, v) | Edit::DeleteEdge(u, v) => {
                    out.push(u);
                    out.push(v);
                }
            }
        }
        out.retain(|&v| v < n_before);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// One sequential pass computing the op counts and the deletion
    /// slack the warm lower bound subtracts (see [`EditSummary`]).
    /// Endpoint weights come from `g`'s weight channel, extended by
    /// the script's own vertex insertions; unweighted graphs count
    /// every vertex as weight 1.
    pub fn summary(&self, g: &CsrGraph) -> EditSummary {
        let mut s = EditSummary::default();
        let mut weights: Vec<u64> = match g.weights() {
            Some(w) => w.to_vec(),
            None => vec![1; g.num_vertices() as usize],
        };
        // Live incident-edge sets are not tracked here; a DeleteVertex
        // op's slack is its own weight regardless of current degree
        // (removing v and its edges lowers the optimum by at most
        // w(v): any cover of the smaller graph plus v covers the
        // larger one).
        for op in &self.ops {
            match *op {
                Edit::InsertVertex { weight } => {
                    weights.push(weight);
                    s.vertex_inserts += 1;
                }
                Edit::DeleteVertex(v) => {
                    s.vertex_deletes += 1;
                    s.slack_cardinality += 1;
                    s.slack_weight += weights.get(v as usize).copied().unwrap_or(1);
                }
                Edit::InsertEdge(..) => s.edge_inserts += 1,
                Edit::DeleteEdge(u, v) => {
                    s.edge_deletes += 1;
                    s.slack_cardinality += 1;
                    let wu = weights.get(u as usize).copied().unwrap_or(1);
                    let wv = weights.get(v as usize).copied().unwrap_or(1);
                    s.slack_weight += wu.min(wv);
                }
            }
        }
        s
    }

    /// Parses the line-oriented text format (see the module docs):
    /// `+e u v`, `-e u v`, `+v weight`, `-v vertex`, with blank lines
    /// and `#` comments skipped.
    pub fn parse(text: &str) -> Result<EditScript, EditError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut tok = body.split_whitespace();
            let kind = tok.next().expect("non-empty line has a first token");
            let mut num = |what: &str| -> Result<u64, EditError> {
                let t = tok.next().ok_or_else(|| EditError::Parse {
                    line,
                    message: format!("'{kind}' needs a {what}"),
                })?;
                t.parse().map_err(|_| EditError::Parse {
                    line,
                    message: format!("bad {what} '{t}'"),
                })
            };
            let op = match kind {
                "+e" => Edit::InsertEdge(num("vertex")? as VertexId, num("vertex")? as VertexId),
                "-e" => Edit::DeleteEdge(num("vertex")? as VertexId, num("vertex")? as VertexId),
                "+v" => Edit::InsertVertex {
                    weight: num("weight")?,
                },
                "-v" => Edit::DeleteVertex(num("vertex")? as VertexId),
                other => {
                    return Err(EditError::Parse {
                        line,
                        message: format!("unknown op '{other}' (+e|-e|+v|-v)"),
                    })
                }
            };
            if let Some(extra) = tok.next() {
                return Err(EditError::Parse {
                    line,
                    message: format!("trailing token '{extra}'"),
                });
            }
            ops.push(op);
        }
        Ok(EditScript { ops })
    }

    /// Renders the script in the text format [`parse`](Self::parse)
    /// reads (round-trips exactly).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match *op {
                Edit::InsertVertex { weight } => out.push_str(&format!("+v {weight}\n")),
                Edit::DeleteVertex(v) => out.push_str(&format!("-v {v}\n")),
                Edit::InsertEdge(u, v) => out.push_str(&format!("+e {u} {v}\n")),
                Edit::DeleteEdge(u, v) => out.push_str(&format!("-e {u} {v}\n")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn path4() -> CsrGraph {
        // 0 - 1 - 2 - 3
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn apply_inserts_and_deletes_edges() {
        let g = path4();
        let s = EditScript::from_ops(vec![
            Edit::DeleteEdge(1, 2),
            Edit::InsertEdge(0, 3),
            Edit::InsertEdge(2, 0),
        ]);
        let h = s.apply(&g).unwrap();
        assert_eq!(h.num_vertices(), 4);
        assert!(!h.has_edge(1, 2));
        assert!(h.has_edge(0, 3));
        assert!(h.has_edge(0, 2));
        assert!(h.has_edge(0, 1), "untouched edges survive");
        // The base graph is untouched.
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn delete_vertex_isolates_in_place() {
        let g = path4();
        let s = EditScript::from_ops(vec![Edit::DeleteVertex(1)]);
        let h = s.apply(&g).unwrap();
        assert_eq!(h.num_vertices(), 4, "ids stay stable");
        assert_eq!(h.degree(1), 0);
        assert_eq!(h.num_edges(), 1); // only {2, 3} survives
    }

    #[test]
    fn insert_vertex_appends_and_promotes_weights() {
        let g = path4();
        let s = EditScript::from_ops(vec![
            Edit::InsertVertex { weight: 5 },
            Edit::InsertEdge(4, 0),
        ]);
        let h = s.apply(&g).unwrap();
        assert_eq!(h.num_vertices(), 5);
        assert!(h.is_weighted(), "weight 5 promotes the channel");
        assert_eq!(h.weight(4), 5);
        assert_eq!(h.weight(0), 1, "existing vertices default to 1");
        assert!(h.has_edge(0, 4));

        // Weight-1 inserts keep an unweighted graph unweighted.
        let s1 = EditScript::from_ops(vec![Edit::InsertVertex { weight: 1 }]);
        assert!(!s1.apply(&g).unwrap().is_weighted());
    }

    #[test]
    fn weighted_base_graph_keeps_its_channel() {
        let g = path4().with_weights(vec![7, 2, 3, 9]).unwrap();
        let s = EditScript::from_ops(vec![
            Edit::InsertVertex { weight: 1 },
            Edit::DeleteEdge(0, 1),
        ]);
        let h = s.apply(&g).unwrap();
        assert!(h.is_weighted());
        assert_eq!(h.weights().unwrap(), &[7, 2, 3, 9, 1]);
    }

    #[test]
    fn strict_validation_rejects_bad_ops() {
        let g = path4();
        let dup = EditScript::from_ops(vec![Edit::InsertEdge(1, 0)]);
        assert_eq!(dup.apply(&g).unwrap_err(), EditError::DuplicateEdge(0, 1));
        let missing = EditScript::from_ops(vec![Edit::DeleteEdge(0, 3)]);
        assert_eq!(missing.apply(&g).unwrap_err(), EditError::MissingEdge(0, 3));
        let range = EditScript::from_ops(vec![Edit::InsertEdge(0, 4)]);
        assert!(matches!(
            range.apply(&g).unwrap_err(),
            EditError::VertexOutOfRange { vertex: 4, .. }
        ));
        let loops = EditScript::from_ops(vec![Edit::InsertEdge(2, 2)]);
        assert_eq!(loops.apply(&g).unwrap_err(), EditError::SelfLoop(2));
        let zero = EditScript::from_ops(vec![Edit::InsertVertex { weight: 0 }]);
        assert_eq!(zero.apply(&g).unwrap_err(), EditError::ZeroWeight);
        // Sequential semantics: delete-then-insert of the same edge is
        // legal, insert-then-insert is not.
        let cycle = EditScript::from_ops(vec![Edit::DeleteEdge(0, 1), Edit::InsertEdge(0, 1)]);
        assert!(cycle.apply(&g).is_ok());
    }

    #[test]
    fn ops_validate_against_the_evolving_state() {
        let g = path4();
        // Vertex 4 exists only after the insert that creates it.
        let s = EditScript::from_ops(vec![
            Edit::InsertVertex { weight: 1 },
            Edit::InsertEdge(4, 1),
            Edit::DeleteVertex(4),
        ]);
        let h = s.apply(&g).unwrap();
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.degree(4), 0);
    }

    #[test]
    fn touched_existing_excludes_appended_vertices() {
        let s = EditScript::from_ops(vec![
            Edit::InsertVertex { weight: 1 }, // id 4
            Edit::InsertEdge(4, 2),
            Edit::DeleteEdge(0, 1),
            Edit::DeleteVertex(3),
        ]);
        assert_eq!(s.touched_existing(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn summary_counts_and_slack() {
        let g = path4().with_weights(vec![7, 2, 3, 9]).unwrap();
        let s = EditScript::from_ops(vec![
            Edit::DeleteEdge(0, 1), // slack_w += min(7, 2) = 2
            Edit::InsertEdge(0, 2),
            Edit::DeleteVertex(3), // slack_w += 9
            Edit::InsertVertex { weight: 4 },
        ]);
        let sum = s.summary(&g);
        assert_eq!(sum.edge_inserts, 1);
        assert_eq!(sum.edge_deletes, 1);
        assert_eq!(sum.vertex_inserts, 1);
        assert_eq!(sum.vertex_deletes, 1);
        assert_eq!(sum.slack_cardinality, 2);
        assert_eq!(sum.slack_weight, 11);
    }

    #[test]
    fn text_round_trip() {
        let s = EditScript::from_ops(vec![
            Edit::InsertEdge(3, 17),
            Edit::DeleteEdge(0, 5),
            Edit::InsertVertex { weight: 4 },
            Edit::DeleteVertex(12),
        ]);
        let text = s.to_text();
        assert_eq!(EditScript::parse(&text).unwrap(), s);
        // Comments and blanks are tolerated.
        let annotated = format!("# churn batch\n\n{text}\n  # done\n");
        assert_eq!(EditScript::parse(&annotated).unwrap(), s);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(
            EditScript::parse("+e 1").unwrap_err(),
            EditError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            EditScript::parse("+e 1 2 3").unwrap_err(),
            EditError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            EditScript::parse("xx 1 2").unwrap_err(),
            EditError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            EditScript::parse("+e 1 two").unwrap_err(),
            EditError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn apply_on_generated_graph_matches_edge_arithmetic() {
        let g = gen::gnp(30, 0.2, 11);
        let before = g.num_edges();
        // Delete two known edges, insert two known non-edges.
        let mut del = Vec::new();
        for (u, v) in g.edges() {
            del.push(Edit::DeleteEdge(u, v));
            if del.len() == 2 {
                break;
            }
        }
        let mut ins = Vec::new();
        'outer: for u in 0..30 {
            for v in (u + 1)..30 {
                if !g.has_edge(u, v) {
                    ins.push(Edit::InsertEdge(u, v));
                    if ins.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        let mut ops = del;
        ops.extend(ins);
        let h = EditScript::from_ops(ops).apply(&g).unwrap();
        assert_eq!(h.num_edges(), before);
        h.validate().unwrap();
    }
}
