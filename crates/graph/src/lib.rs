//! # parvc-graph — static graphs for the vertex-cover suite
//!
//! This crate provides everything the solvers in `parvc-core` need from a
//! graph substrate:
//!
//! * [`CsrGraph`] — an immutable, compact Compressed Sparse Row graph.
//!   This is the paper's "original graph" representation (§IV-B): built
//!   once, shared read-only by every thread block, never modified.
//! * [`GraphBuilder`] — incremental construction with deduplication.
//! * [`gen`] — deterministic instance generators reproducing the families
//!   used in the paper's evaluation (DIMACS `p_hat` complements, KONECT /
//!   SNAP-style sparse graphs, PACE-2019-style exact-track instances).
//! * [`ops`] — whole-graph operations (complement, induced subgraph,
//!   connected components, relabeling).
//! * [`EditScript`] — validated batches of vertex/edge insertions and
//!   deletions, the delta representation behind the incremental
//!   re-solve pipeline (`parvc_core::resolve`), with a seeded fuzz
//!   generator at [`gen::edit_script`].
//! * [`io`] — DIMACS and edge-list parsing/serialization so real instances
//!   can be dropped into the benchmark suite.
//! * [`analysis`] — degree statistics used to classify instances into the
//!   paper's "high-degree" and "low-degree" categories.
//!
//! Part of the `parvc` workspace — see `ARCHITECTURE.md` at the
//! repository root for how this crate slots under the solver engine.

#![warn(missing_docs)]

pub mod analysis;
mod builder;
mod csr;
mod edit;
mod error;
pub mod gen;
pub mod io;
pub mod kcore;
pub mod matching;
pub mod ops;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use edit::{Edit, EditError, EditScript, EditSummary};
pub use error::GraphError;

/// Vertex identifier. Graphs in this suite comfortably fit in `u32`
/// (the paper's largest instance has 38,453 vertices).
pub type VertexId = u32;
