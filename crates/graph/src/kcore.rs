//! k-core decomposition and degeneracy ordering.
//!
//! The degeneracy of a graph bounds how much the reduction rules can
//! bite: a graph whose `2`-core is empty dissolves completely under the
//! degree-one rule, which is why tree-like stand-ins make useless
//! vertex-cover benchmarks (see DESIGN.md §4 on the power-grid
//! substitution). The suite uses these tools to characterize instances;
//! the `analyze` CLI surfaces them.

use crate::{CsrGraph, VertexId};

/// Result of a core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` = the largest `k` such that `v` belongs to the k-core.
    pub core_number: Vec<u32>,
    /// The graph's degeneracy (maximum core number; 0 for edgeless).
    pub degeneracy: u32,
    /// A degeneracy ordering: peeling order of minimum-degree removal.
    pub ordering: Vec<VertexId>,
}

/// Computes core numbers, degeneracy, and a degeneracy ordering with
/// the Matula–Beck peeling algorithm, `O(|V| + |E|)`.
pub fn core_decomposition(g: &CsrGraph) -> CoreDecomposition {
    let n = g.num_vertices() as usize;
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket queue of vertices by current degree.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as u32 {
        buckets[degree[v as usize] as usize].push(v);
    }
    let mut removed = vec![false; n];
    let mut core_number = vec![0u32; n];
    let mut ordering = Vec::with_capacity(n);
    let mut degeneracy = 0u32;
    let mut current = 0usize;

    for _ in 0..n {
        // Find the lowest bucket holding a live, up-to-date vertex.
        // Buckets carry stale entries (vertices whose degree dropped
        // further after insertion), so popping may empty a bucket
        // without yielding a vertex — rescan upward when that happens.
        let v = 'find: loop {
            while current <= max_deg && buckets[current].is_empty() {
                current += 1;
            }
            while let Some(v) = buckets[current].pop() {
                if !removed[v as usize] && degree[v as usize] as usize == current {
                    break 'find v;
                }
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(current as u32);
        core_number[v as usize] = degeneracy;
        ordering.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                let d = &mut degree[w as usize];
                *d -= 1;
                buckets[*d as usize].push(w);
                if (*d as usize) < current {
                    current = *d as usize;
                }
            }
        }
    }
    CoreDecomposition {
        core_number,
        degeneracy,
        ordering,
    }
}

/// The vertices of the k-core (possibly empty).
pub fn k_core(g: &CsrGraph, k: u32) -> Vec<VertexId> {
    let d = core_decomposition(g);
    (0..g.num_vertices())
        .filter(|&v| d.core_number[v as usize] >= k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn trees_have_degeneracy_one() {
        let d = core_decomposition(&gen::path(20));
        assert_eq!(d.degeneracy, 1);
        assert!(k_core(&gen::path(20), 2).is_empty());
    }

    #[test]
    fn cliques_have_degeneracy_n_minus_one() {
        let d = core_decomposition(&gen::complete(7));
        assert_eq!(d.degeneracy, 6);
        assert!(d.core_number.iter().all(|&c| c == 6));
    }

    #[test]
    fn cycle_is_its_own_two_core() {
        let g = gen::cycle(9);
        assert_eq!(core_decomposition(&g).degeneracy, 2);
        assert_eq!(k_core(&g, 2).len(), 9);
        assert!(k_core(&g, 3).is_empty());
    }

    #[test]
    fn pendant_tree_peels_off_a_clique() {
        // K5 with a path hanging off vertex 0: the 4-core is exactly K5.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.extend([(0, 5), (5, 6), (6, 7)]);
        let g = crate::CsrGraph::from_edges(8, &edges).unwrap();
        let core4 = k_core(&g, 4);
        assert_eq!(core4, vec![0, 1, 2, 3, 4]);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 4);
        assert_eq!(d.core_number[7], 1);
    }

    #[test]
    fn ordering_is_a_permutation() {
        let g = gen::gnp(60, 0.1, 3);
        let d = core_decomposition(&g);
        let mut seen = [false; 60];
        for &v in &d.ordering {
            assert!(!seen[v as usize], "vertex {v} repeated");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degeneracy_ordering_property() {
        // Each vertex has at most `degeneracy` neighbors later in the
        // peeling order (the defining property).
        let g = gen::barabasi_albert(100, 3, 7);
        let d = core_decomposition(&g);
        let mut pos = vec![0usize; 100];
        for (i, &v) in d.ordering.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..100u32 {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&w| pos[w as usize] > pos[v as usize])
                .count();
            assert!(
                later as u32 <= d.degeneracy,
                "vertex {v} has {later} later neighbors > degeneracy {}",
                d.degeneracy
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = crate::CsrGraph::from_edges(0, &[]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.ordering.is_empty());
    }
}
