//! Degree statistics and the paper's high/low-degree categorization.

use crate::CsrGraph;

/// The two instance categories of Tables I and II. The paper aggregates
/// speedups separately for graphs with high average degree (the
/// complemented DIMACS instances plus the denser KONECT graphs,
/// `|E|/|V| >= 22`) and low average degree (`|E|/|V| <= 4.82`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeClass {
    /// High average degree — imbalanced search trees, the Hybrid
    /// scheme's best case.
    High,
    /// Low average degree — flatter trees, moderate Hybrid advantage.
    Low,
}

impl std::fmt::Display for DegreeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegreeClass::High => write!(f, "high-degree"),
            DegreeClass::Low => write!(f, "low-degree"),
        }
    }
}

/// Classification threshold on `|E|/|V|`. The paper's two groups are
/// separated by a wide gap (4.82 vs 22); 10 splits it cleanly.
pub const DEGREE_CLASS_THRESHOLD: f64 = 10.0;

/// Classifies a graph into the paper's high/low-degree category.
pub fn degree_class(g: &CsrGraph) -> DegreeClass {
    if edge_vertex_ratio(g) >= DEGREE_CLASS_THRESHOLD {
        DegreeClass::High
    } else {
        DegreeClass::Low
    }
}

/// `|E| / |V|` — the ratio Table I reports per graph.
pub fn edge_vertex_ratio(g: &CsrGraph) -> f64 {
    if g.num_vertices() == 0 {
        0.0
    } else {
        g.num_edges() as f64 / g.num_vertices() as f64
    }
}

/// Summary degree statistics for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree `Δ(G)`.
    pub max: u32,
    /// Mean degree `2|E|/|V|`.
    pub mean: f64,
    /// Population standard deviation of the degree sequence.
    pub std_dev: f64,
}

/// Computes [`DegreeStats`] for `g`. Returns zeros for the empty graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let degs: Vec<u32> = (0..n).map(|v| g.degree(v)).collect();
    let mean = degs.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
    let var = degs.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    DegreeStats {
        min: *degs.iter().min().expect("n > 0"),
        max: *degs.iter().max().expect("n > 0"),
        mean,
        std_dev: var.sqrt(),
    }
}

/// Histogram of degrees: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<u32> {
    let mut hist = vec![0u32; g.max_degree() as usize + 1];
    for v in g.vertices() {
        hist[g.degree(v) as usize] += 1;
    }
    hist
}

/// Number of triangles in `g` (each counted once). Used to sanity-check
/// the degree-two-triangle reduction rule's applicability on a graph.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for u in g.vertices() {
        let adj = g.neighbors(u);
        for (i, &v) in adj.iter().enumerate() {
            if v <= u {
                continue;
            }
            for &w in &adj[i + 1..] {
                if g.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn classes_split_the_paper_families() {
        let dense = gen::p_hat_complement(100, 1, 1);
        let sparse = gen::power_grid_like(200, 60, 1);
        assert_eq!(degree_class(&dense), DegreeClass::High);
        assert_eq!(degree_class(&sparse), DegreeClass::Low);
    }

    #[test]
    fn stats_on_star() {
        let s = gen::star(5);
        let st = degree_stats(&s);
        assert_eq!(st.min, 1);
        assert_eq!(st.max, 4);
        assert!((st.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = gen::gnp(80, 0.1, 2);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<u32>(), 80);
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&gen::complete(4)), 4);
        assert_eq!(triangle_count(&gen::cycle(5)), 0);
        assert_eq!(triangle_count(&gen::paper_example()), 2);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::CsrGraph::from_edges(0, &[]).unwrap();
        let st = degree_stats(&g);
        assert_eq!(st.max, 0);
        assert_eq!(edge_vertex_ratio(&g), 0.0);
    }
}
