//! Random graph models: G(n,p), the DIMACS `p_hat` model, bipartite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, GraphBuilder};

/// Erdős–Rényi `G(n, p)`: every pair becomes an edge independently with
/// probability `p`.
pub fn gnp(n: u32, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let expected = (n as f64 * (n as f64 - 1.0) / 2.0 * p) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected + 16);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v).expect("in range");
            }
        }
    }
    b.build()
}

/// The `p_hat` generator of Gendreau, Soriano & Salvail, used to produce
/// the DIMACS `p_hat*` maximum-clique benchmarks the paper evaluates on.
///
/// Unlike `G(n,p)`, each vertex draws its own attachment weight
/// `w_v ~ U[p_lo, p_hi]` and the pair `{u, v}` becomes an edge with
/// probability `(w_u + w_v) / 2`. The resulting *spread* in the degree
/// distribution is what makes these instances hard: after complementing,
/// branching removes wildly different neighborhood sizes, so the search
/// tree is highly imbalanced — the regime where the paper's Hybrid scheme
/// shines (§V-B observation 1).
///
/// DIMACS parameters: `p_hat*-1` ≈ `[0.0, 0.5]`, `p_hat*-2` ≈
/// `[0.25, 0.75]`, `p_hat*-3` ≈ `[0.5, 1.0]`.
pub fn p_hat(n: u32, p_lo: f64, p_hi: f64, seed: u64) -> CsrGraph {
    assert!(
        (0.0..=1.0).contains(&p_lo) && (0.0..=1.0).contains(&p_hi) && p_lo <= p_hi,
        "need 0 <= p_lo <= p_hi <= 1, got [{p_lo}, {p_hi}]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(p_lo..=p_hi)).collect();
    let expected = (n as f64 * (n as f64 - 1.0) / 4.0 * (p_lo + p_hi)) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected + 16);
    for u in 0..n as usize {
        for v in (u + 1)..n as usize {
            if rng.gen::<f64>() < (weights[u] + weights[v]) / 2.0 {
                b.add_edge(u as u32, v as u32).expect("in range");
            }
        }
    }
    b.build()
}

/// Convenience: a `p_hat` clique instance, complemented into a
/// vertex-cover instance — exactly how the paper prepares its DIMACS
/// graphs ("we take the edge complements of graphs in the DIMACS
/// collection like in prior work", §V-A).
///
/// `class` is 1, 2 or 3, matching the `p_hat<n>-<class>` naming.
pub fn p_hat_complement(n: u32, class: u8, seed: u64) -> CsrGraph {
    let (lo, hi) = match class {
        1 => (0.0, 0.5),
        2 => (0.25, 0.75),
        3 => (0.5, 1.0),
        other => panic!("p_hat class must be 1, 2 or 3, got {other}"),
    };
    crate::ops::complement(&p_hat(n, lo, hi, seed))
}

/// Bipartite `G(n_left, n_right, p)`: left vertices are `0..n_left`,
/// right vertices `n_left..n_left+n_right`; each cross pair is an edge
/// with probability `p`. Models the KONECT rating graphs
/// (movielens-100k) in the suite.
pub fn bipartite_gnp(n_left: u32, n_right: u32, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n_left + n_right);
    for u in 0..n_left {
        for v in n_left..(n_left + n_right) {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v).expect("in range");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(50, 0.2, 7);
        let b = gnp(50, 0.2, 7);
        let c = gnp(50, 0.2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(20, 1.0, 1).num_edges(), 190);
    }

    #[test]
    fn gnp_density_near_p() {
        let g = gnp(200, 0.3, 42);
        let density = g.num_edges() as f64 / (200.0 * 199.0 / 2.0);
        assert!(
            (density - 0.3).abs() < 0.05,
            "density {density} too far from 0.3"
        );
    }

    #[test]
    fn p_hat_density_matches_mean_weight() {
        // Mean edge probability is (p_lo + p_hi) / 2 = 0.25 for class 1.
        let g = p_hat(300, 0.0, 0.5, 1);
        let density = g.num_edges() as f64 / (300.0 * 299.0 / 2.0);
        assert!(
            (density - 0.25).abs() < 0.05,
            "density {density} too far from 0.25"
        );
    }

    #[test]
    fn p_hat_has_wider_degree_spread_than_gnp() {
        // The defining trait of the family: per-vertex weights widen the
        // degree distribution relative to a same-density G(n,p).
        let n = 300;
        let ph = p_hat(n, 0.0, 0.5, 3);
        let er = gnp(n, 0.25, 3);
        let spread = |g: &CsrGraph| {
            let degs: Vec<f64> = (0..n).map(|v| g.degree(v) as f64).collect();
            let mean = degs.iter().sum::<f64>() / n as f64;
            (degs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
        };
        assert!(
            spread(&ph) > 2.0 * spread(&er),
            "p_hat spread {} should dwarf gnp spread {}",
            spread(&ph),
            spread(&er)
        );
    }

    #[test]
    fn p_hat_complement_density_classes() {
        // Complement densities ≈ 0.75 / 0.5 / 0.25 for classes 1/2/3,
        // matching Table I's |E| for p_hat300-{1,2,3} within a few %.
        let full = 300.0 * 299.0 / 2.0;
        for (class, want) in [(1u8, 0.75), (2, 0.50), (3, 0.25)] {
            let g = p_hat_complement(300, class, 11);
            let density = g.num_edges() as f64 / full;
            assert!(
                (density - want).abs() < 0.05,
                "class {class}: density {density}, want ~{want}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "class must be 1, 2 or 3")]
    fn p_hat_complement_rejects_bad_class() {
        let _ = p_hat_complement(10, 4, 0);
    }

    #[test]
    fn bipartite_has_no_intra_side_edges() {
        let g = bipartite_gnp(10, 15, 0.5, 5);
        for (u, v) in g.edges() {
            assert!(u < 10 && v >= 10, "edge ({u},{v}) crosses sides");
        }
    }
}
