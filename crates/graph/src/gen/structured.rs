//! Structured sparse models standing in for the paper's KONECT / SNAP /
//! PACE low-degree instances.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices with probability proportional to degree.
/// Produces the power-law degree distribution of social graphs (the
/// paper's LastFM Asia and wikipedia link graphs).
pub fn barabasi_albert(n: u32, m: u32, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be >= 1");
    assert!(n > m, "need n > m, got n={n}, m={m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, (n as usize) * m as usize);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n as usize * m as usize);

    // Seed clique on the first m+1 vertices keeps early sampling sane.
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u, v).expect("in range");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let mut targets = BTreeSet::new();
        while (targets.len() as u32) < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t).expect("in range");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Mesh-like infrastructure network: a uniform random spanning tree plus
/// `extra_edges` random chords. With `extra_edges ≈ n/3` this reproduces
/// the US power grid's average degree of ~2.7 and its long induced paths
/// (which exercise the degree-one and degree-two reduction rules heavily,
/// as the paper's Figure 6 shows for low-degree graphs).
pub fn power_grid_like(n: u32, extra_edges: u32, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, (n + extra_edges) as usize);

    // Random spanning tree: attach each vertex (in random order) to a
    // uniformly random already-attached vertex.
    let mut order: Vec<VertexId> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n as usize {
        let parent = order[rng.gen_range(0..i)];
        b.add_edge(order[i], parent).expect("in range");
    }

    let mut added = 0;
    let mut attempts = 0;
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    while added < extra_edges && attempts < extra_edges as u64 * 50 + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.add_edge(u, v).expect("in range");
            added += 1;
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice of even degree `k`, each edge
/// rewired with probability `beta`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and >= 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    let norm = |u: u32, v: u32| (u.min(v), u.max(v));
    for v in 0..n {
        for j in 1..=(k / 2) {
            edges.insert(norm(v, (v + j) % n));
        }
    }
    let ring: Vec<(u32, u32)> = edges.iter().copied().collect();
    for (u, v) in ring {
        if rng.gen::<f64>() < beta {
            // Rewire {u,v} to {u,w} for a uniform non-duplicate w.
            for _ in 0..32 {
                let w = rng.gen_range(0..n);
                if w != u && !edges.contains(&norm(u, w)) {
                    edges.remove(&(u.min(v), u.max(v)));
                    edges.insert(norm(u, w));
                    break;
                }
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v).expect("in range");
    }
    b.build()
}

/// Random geometric graph: `n` points in the unit square, edge when
/// within Euclidean distance `radius`.
pub fn random_geometric(n: u32, radius: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for u in 0..n as usize {
        for v in (u + 1)..n as usize {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u as u32, v as u32).expect("in range");
            }
        }
    }
    b.build()
}

/// Random `d`-regular graph via the edge-switching Markov chain:
/// start from a deterministic circulant (ring) `d`-regular graph, then
/// apply random degree-preserving 2-opt switches
/// (`{a,b},{c,d} → {a,c},{b,d}`) that keep the graph simple.
///
/// Regular graphs are the canonical *hard* vertex-cover family: no
/// vertex is distinguished, so the degree-one/two rules never fire at
/// the root and the high-degree rule has no outliers to grab.
///
/// Requires `n * d` even and `d < n`.
pub fn random_regular(n: u32, d: u32, seed: u64) -> CsrGraph {
    assert!(d < n, "degree must be below n");
    assert!((n as u64 * d as u64).is_multiple_of(2), "n*d must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    let norm = |u: u32, v: u32| (u.min(v), u.max(v));

    // Circulant start: i ~ i±1..±floor(d/2), plus the diametric
    // matching when d is odd (n is even then, since n*d is even).
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    for v in 0..n {
        for j in 1..=(d / 2) {
            edges.insert(norm(v, (v + j) % n));
        }
    }
    if d % 2 == 1 {
        for v in 0..n / 2 {
            edges.insert(norm(v, v + n / 2));
        }
    }

    // Randomize with degree-preserving switches.
    let mut list: Vec<(u32, u32)> = edges.iter().copied().collect();
    let attempts = list.len() as u64 * 10;
    for _ in 0..attempts {
        let i = rng.gen_range(0..list.len());
        let j = rng.gen_range(0..list.len());
        if i == j {
            continue;
        }
        let (a, b) = list[i];
        let (c, dd) = list[j];
        // Orient the second edge both ways at random for mixing.
        let (c, dd) = if rng.gen::<bool>() { (c, dd) } else { (dd, c) };
        if a == c || a == dd || b == c || b == dd {
            continue;
        }
        let new1 = norm(a, c);
        let new2 = norm(b, dd);
        if edges.contains(&new1) || edges.contains(&new2) {
            continue;
        }
        edges.remove(&norm(a, b));
        edges.remove(&norm(c, dd));
        edges.insert(new1);
        edges.insert(new2);
        list[i] = new1;
        list[j] = new2;
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v).expect("in range");
    }
    b.build()
}

/// Many small dense-ish communities with almost no inter-community
/// edges — the component-rich shape of the KONECT "Sister Cities" graph.
pub fn sparse_components(n: u32, num_components: u32, intra_p: f64, seed: u64) -> CsrGraph {
    assert!(num_components >= 1 && num_components <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let size = n / num_components;
    for c in 0..num_components {
        let lo = c * size;
        let hi = if c + 1 == num_components {
            n
        } else {
            lo + size
        };
        for u in lo..hi {
            for v in (u + 1)..hi {
                if rng.gen::<f64>() < intra_p {
                    b.add_edge(u, v).expect("in range");
                }
            }
        }
    }
    b.build()
}

/// PACE-2019-style exact-track instance: a union of moderately dense
/// communities overlaid with a sparse global `G(n, p)` background, then
/// degree-one pendants planted to exercise the reduction rules. Mirrors
/// the structure that makes `vc-exact_*` instances reducible but not
/// trivial.
pub fn pace_like(n: u32, communities: u32, seed: u64) -> CsrGraph {
    assert!(communities >= 1 && communities <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let size = (n / communities).max(2);

    // Communities: random assignment, denser inside.
    let comm: Vec<u32> = (0..n).map(|_| rng.gen_range(0..communities)).collect();
    let intra_p = (6.0 / size as f64).min(1.0);
    for c in 0..communities {
        let members: Vec<u32> = (0..n).filter(|&v| comm[v as usize] == c).collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.gen::<f64>() < intra_p {
                    b.add_edge(members[i], members[j]).expect("in range");
                }
            }
        }
    }
    // Sparse background joining communities.
    let background = n as usize / 2;
    for _ in 0..background {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.add_edge(u, v).expect("in range");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn ba_edge_count() {
        let g = barabasi_albert(100, 3, 1);
        // Seed clique C(4,2)=6 plus 3 per each of the 96 later vertices.
        assert_eq!(g.num_edges(), 6 + 96 * 3);
        g.validate().unwrap();
    }

    #[test]
    fn ba_is_deterministic() {
        assert_eq!(barabasi_albert(80, 2, 9), barabasi_albert(80, 2, 9));
    }

    #[test]
    fn ba_has_hubs() {
        let g = barabasi_albert(300, 2, 4);
        // Power-law graphs have max degree far above the average.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn power_grid_like_is_connected_and_sparse() {
        let g = power_grid_like(500, 160, 2);
        assert!(crate::ops::is_connected(&g));
        let avg = g.avg_degree();
        assert!(
            (2.0..3.6).contains(&avg),
            "avg degree {avg} outside power-grid regime"
        );
    }

    #[test]
    fn power_grid_like_exact_tree_when_no_extras() {
        let g = power_grid_like(64, 0, 3);
        assert_eq!(g.num_edges(), 63);
        assert!(crate::ops::is_connected(&g));
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let g = watts_strogatz(100, 4, 0.3, 5);
        // Rewiring replaces edges 1:1 (unless no candidate found, which
        // is vanishingly rare at this density).
        assert_eq!(g.num_edges(), 200);
        g.validate().unwrap();
    }

    #[test]
    fn geometric_radius_monotone() {
        let small = random_geometric(120, 0.05, 6);
        let large = random_geometric(120, 0.2, 6);
        assert!(large.num_edges() > small.num_edges());
    }

    #[test]
    fn random_regular_is_exactly_regular() {
        for (n, d, seed) in [(20u32, 3u32, 1u64), (30, 4, 2), (24, 5, 3), (50, 6, 4)] {
            let g = random_regular(n, d, seed);
            g.validate().unwrap();
            assert!(
                (0..n).all(|v| g.degree(v) == d),
                "({n},{d}) seed {seed}: not {d}-regular"
            );
        }
    }

    #[test]
    fn random_regular_is_deterministic_and_seed_sensitive() {
        assert_eq!(random_regular(40, 3, 9), random_regular(40, 3, 9));
        assert_ne!(random_regular(40, 3, 9), random_regular(40, 3, 10));
    }

    #[test]
    fn random_regular_actually_randomizes() {
        // The switched graph must differ from the circulant start.
        let g = random_regular(60, 4, 5);
        let circulant_edge_count = (0..60u32).filter(|&v| g.has_edge(v, (v + 1) % 60)).count();
        assert!(circulant_edge_count < 55, "barely any switches happened");
    }

    #[test]
    #[should_panic(expected = "n*d must be even")]
    fn random_regular_rejects_odd_product() {
        let _ = random_regular(5, 3, 0);
    }

    #[test]
    fn sparse_components_disconnected() {
        let g = sparse_components(120, 12, 0.8, 7);
        let (_, count) = crate::ops::connected_components(&g);
        assert!(count >= 12, "expected >= 12 components, got {count}");
    }

    #[test]
    fn pace_like_is_low_degree_class() {
        let g = pace_like(600, 20, 8);
        assert!(
            analysis::degree_class(&g) == analysis::DegreeClass::Low,
            "pace-like instances belong to the low-degree category (avg {})",
            g.avg_degree()
        );
        g.validate().unwrap();
    }
}
