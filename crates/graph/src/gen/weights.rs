//! Deterministic vertex-weight generators for the weighted MVC
//! variant.
//!
//! Weighted instances in the wild (map-labeling conflict graphs, the
//! massive-graph regime of arXiv 1509.05870) carry per-vertex costs;
//! these helpers attach deterministic weight channels to any generated
//! graph so the weighted solvers can be benchmarked and
//! property-tested without external data. All generators keep every
//! weight ≥ 1, the invariant the weighted budget arithmetic relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CsrGraph;

/// Uniform random weights in `1..=max`, deterministic in `seed`.
///
/// # Panics
///
/// Panics when `max` is 0 (weights must be ≥ 1).
pub fn uniform_weights(n: u32, max: u64, seed: u64) -> Vec<u64> {
    assert!(max >= 1, "weights must be >= 1, got max {max}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77e1_6a57);
    (0..n).map(|_| rng.gen_range(1..=max)).collect()
}

/// Attaches uniform random weights in `1..=max` to `g` (seeded
/// deterministically), the `w=uniform` generator-spec channel.
pub fn with_uniform_weights(g: CsrGraph, max: u64, seed: u64) -> CsrGraph {
    let w = uniform_weights(g.num_vertices(), max, seed);
    g.with_weights(w).expect("generated weights are valid")
}

/// Attaches degree-derived weights `w(v) = d(v) + 1` — a deterministic
/// channel that makes hubs expensive, flipping the unweighted optimum
/// on hub-and-spoke graphs (the `w=degree` generator-spec channel).
pub fn with_degree_weights(g: CsrGraph) -> CsrGraph {
    let w: Vec<u64> = (0..g.num_vertices())
        .map(|v| g.degree(v) as u64 + 1)
        .collect();
    g.with_weights(w).expect("degree weights are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn uniform_weights_are_in_range_and_deterministic() {
        let a = uniform_weights(200, 10, 7);
        let b = uniform_weights(200, 10, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (1..=10).contains(&w)));
        assert!(
            a.iter().any(|&w| w != a[0]),
            "200 draws should not all collide"
        );
        assert_ne!(a, uniform_weights(200, 10, 8), "seed must matter");
    }

    #[test]
    fn attachment_helpers_produce_valid_weighted_graphs() {
        let g = with_uniform_weights(gen::petersen(), 10, 3);
        g.validate().unwrap();
        assert!(g.is_weighted());

        let s = with_degree_weights(gen::star(5));
        assert_eq!(s.weight(0), 5); // hub: degree 4 + 1
        assert_eq!(s.weight(1), 2); // leaf: degree 1 + 1
    }
}
