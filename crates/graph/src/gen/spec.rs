//! The generator-spec grammar: `family:arg1:arg2[...][@seed][:w=<weights>]`.
//!
//! One string names a deterministic instance — `gnp:200:0.05@7:w=uniform`
//! is a 200-vertex G(n,p) graph at p = 0.05 under seed 7 with uniform
//! random vertex weights. The grammar is shared by every front end that
//! accepts instances (the `parvc` CLI's positional `<instance>`
//! arguments, the `parvc serve` `LOAD` verb, and the bench bins), so a
//! spec that works in one place works everywhere and hashes to the same
//! [`CsrGraph::content_hash`] cache key.
//!
//! Everything here returns `Result` instead of exiting: callers that
//! talk to a terminal print the message and exit, callers that talk to
//! a socket turn it into an error line.

use crate::gen;
use crate::CsrGraph;

/// Generator family names the spec grammar recognizes. A leading
/// segment outside this list means "not a spec" (probably a file path).
pub const FAMILIES: &[&str] = &[
    "phat",
    "gnp",
    "ba",
    "ws",
    "geometric",
    "pace",
    "components",
    "bipartite",
    "grid",
];

/// Default seed when a spec carries no `@seed` suffix.
pub const DEFAULT_SEED: u64 = 42;

/// Parses `family:arg1:arg2[...][@seed][:w=<weights>]` into a generated
/// graph.
///
/// Returns `Ok(None)` when the leading segment is not a generator
/// family — a file path may legitimately contain `:` or `@`, so nothing
/// is rejected before the family name matches. Returns `Err` for a
/// recognized family with malformed arguments.
///
/// Numeric arguments separate with `:` or `,` interchangeably
/// (`gnp:2000:0.002@1` == `gnp:2000,0.002@1`). The optional `:w=`
/// suffix attaches a vertex-weight channel (see [`attach_weights`]),
/// turning the instance into a weighted MVC input.
pub fn parse(spec: &str) -> Result<Option<CsrGraph>, String> {
    // Split a trailing weight channel off first: it may follow the
    // seed (`...@7:w=uniform`) or the last family argument.
    let (core, wspec) = match spec.split_once(":w=") {
        Some((core, w)) => (core, Some(w)),
        None => (spec, None),
    };
    let Some((family, rest)) = core.split_once(':') else {
        return Ok(None);
    };
    if !FAMILIES.contains(&family) {
        return Ok(None);
    }
    let (body, seed) = match rest.split_once('@') {
        Some((body, s)) => (
            body,
            s.parse()
                .map_err(|_| format!("bad seed '{s}' in spec '{spec}'"))?,
        ),
        None => (rest, DEFAULT_SEED),
    };
    let args = body
        .split([':', ','])
        .map(|t| {
            t.parse()
                .map_err(|_| format!("bad numeric argument '{t}' in spec '{spec}'"))
        })
        .collect::<Result<Vec<f64>, String>>()?;
    let g = generate(family, seed, &args).map_err(|e| format!("spec '{spec}': {e}"))?;
    Ok(Some(match wspec {
        Some(w) => attach_weights(g, w, seed)?,
        None => g,
    }))
}

/// The family dispatch shared by the spec grammar and `parvc generate`:
/// builds `family` from its positional numeric arguments under `seed`.
pub fn generate(family: &str, seed: u64, args: &[f64]) -> Result<CsrGraph, String> {
    let arg = |i: usize| -> Result<f64, String> {
        args.get(i)
            .copied()
            .ok_or_else(|| format!("family {family} needs more arguments"))
    };
    Ok(match family {
        "phat" => gen::p_hat_complement(arg(0)? as u32, arg(1)? as u8, seed),
        "gnp" => gen::gnp(arg(0)? as u32, arg(1)?, seed),
        "ba" => gen::barabasi_albert(arg(0)? as u32, arg(1)? as u32, seed),
        "ws" => gen::watts_strogatz(arg(0)? as u32, arg(1)? as u32, arg(2)?, seed),
        "geometric" => gen::random_geometric(arg(0)? as u32, arg(1)?, seed),
        "pace" => gen::pace_like(arg(0)? as u32, arg(1)? as u32, seed),
        "components" => gen::sparse_components(arg(0)? as u32, arg(1)? as u32, arg(2)?, seed),
        "bipartite" => gen::bipartite_gnp(arg(0)? as u32, arg(1)? as u32, arg(2)?, seed),
        "grid" => gen::grid2d(arg(0)? as u32, arg(1)? as u32),
        other => return Err(format!("unknown family '{other}'")),
    })
}

/// Attaches the weight channel a `w=` suffix or `--weights` flag names:
/// `uniform[:max]` (random in `1..=max`, default max 10, seeded like
/// the generator), `unit` (all-1), or `degree` (`d(v)+1`).
pub fn attach_weights(g: CsrGraph, spec: &str, seed: u64) -> Result<CsrGraph, String> {
    let (kind, param) = match spec.split_once(':') {
        Some((k, p)) => (k, Some(p)),
        None => (spec, None),
    };
    match (kind, param) {
        ("uniform", max) => {
            let max: u64 = match max {
                Some(m) => m
                    .parse()
                    .map_err(|_| format!("bad uniform weight bound '{m}'"))?,
                None => 10,
            };
            if max == 0 {
                return Err("uniform weight bound must be >= 1 (weights are >= 1)".into());
            }
            // Keep n·max within the i64::MAX total-weight cap the
            // graph layer enforces.
            let cap = i64::MAX as u64 / u64::from(g.num_vertices().max(1));
            if max > cap {
                return Err(format!(
                    "uniform weight bound {max} too large for {} vertices (max {cap})",
                    g.num_vertices()
                ));
            }
            Ok(gen::with_uniform_weights(g, max, seed))
        }
        ("unit", None) => {
            let n = g.num_vertices() as usize;
            Ok(g.with_weights(vec![1; n]).expect("unit weights are valid"))
        }
        ("degree", None) => Ok(gen::with_degree_weights(g)),
        _ => Err(format!(
            "unknown weight spec '{spec}' (uniform[:max]|unit|degree)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_family_is_none() {
        assert_eq!(parse("graphs/foo.dimacs").unwrap(), None);
        assert_eq!(parse("no-colon-at-all").unwrap(), None);
        assert_eq!(parse("unknownfam:10:0.5").unwrap(), None);
    }

    #[test]
    fn spec_round_trips_and_seeds() {
        let a = parse("gnp:40:0.1@7").unwrap().unwrap();
        let b = parse("gnp:40,0.1@7").unwrap().unwrap();
        assert_eq!(a, b, "`:` and `,` separators are interchangeable");
        let default_seed = parse("gnp:40:0.1").unwrap().unwrap();
        let explicit = parse(&format!("gnp:40:0.1@{DEFAULT_SEED}"))
            .unwrap()
            .unwrap();
        assert_eq!(default_seed, explicit);
        assert_ne!(a, explicit, "seed changes the instance");
    }

    #[test]
    fn weight_suffix_attaches() {
        let g = parse("grid:4:4:w=degree").unwrap().unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.weight(0), 3); // corner: degree 2 + 1
        let u = parse("gnp:20:0.2@3:w=uniform:5").unwrap().unwrap();
        assert!(u.weights().unwrap().iter().all(|&w| (1..=5).contains(&w)));
        let unit = parse("gnp:20:0.2@3:w=unit").unwrap().unwrap();
        assert!(unit.weights().unwrap().iter().all(|&w| w == 1));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        assert!(parse("gnp:40:0.1@nope").unwrap_err().contains("bad seed"));
        assert!(parse("gnp:forty:0.1").unwrap_err().contains("numeric"));
        assert!(parse("gnp:40").unwrap_err().contains("more arguments"));
        assert!(parse("gnp:40:0.1:w=bogus")
            .unwrap_err()
            .contains("weight spec"));
        assert!(attach_weights(gen::grid2d(2, 2), "uniform:0", 1).is_err());
    }

    #[test]
    fn every_family_parses() {
        for spec in [
            "phat:30:2@1",
            "gnp:30:0.2@1",
            "ba:30:2@1",
            "ws:30:4:0.1@1",
            "geometric:30:0.3@1",
            "pace:30:4@1",
            "components:60:6:0.4@1",
            "bipartite:10:12:0.3@1",
            "grid:5:6",
        ] {
            let g = parse(spec)
                .unwrap()
                .unwrap_or_else(|| panic!("{spec} not a spec?"));
            assert!(g.num_vertices() > 0, "{spec}");
        }
    }
}
