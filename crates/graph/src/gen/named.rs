//! Small named graphs with known minimum vertex covers — used throughout
//! the test suites as oracles.

use crate::{CsrGraph, GraphBuilder};

/// Path graph `P_n` on `n` vertices (`n-1` edges). MVC size is
/// `floor(n/2)`.
pub fn path(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("path endpoints in range");
    }
    b.build()
}

/// Cycle graph `C_n` (`n >= 3`). MVC size is `ceil(n/2)`.
pub fn cycle(n: u32) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n)
            .expect("cycle endpoints in range");
    }
    b.build()
}

/// Complete graph `K_n`. MVC size is `n - 1`.
pub fn complete(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete endpoints in range");
        }
    }
    b.build()
}

/// Star `K_{1,n-1}`: vertex 0 joined to all others. MVC size is 1.
pub fn star(n: u32) -> CsrGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("star endpoints in range");
    }
    b.build()
}

/// The Petersen graph (10 vertices, 15 edges, 3-regular). MVC size is 6.
pub fn petersen() -> CsrGraph {
    let mut b = GraphBuilder::new(10);
    // Outer 5-cycle, inner 5-cycle with step 2, and spokes.
    for i in 0..5 {
        b.add_edge(i, (i + 1) % 5).expect("in range");
        b.add_edge(5 + i, 5 + (i + 2) % 5).expect("in range");
        b.add_edge(i, 5 + i).expect("in range");
    }
    b.build()
}

/// The 5-vertex example graph of the paper's Figure 2 (two triangles
/// sharing vertex `c = 2`): edges ab, ac, bc, cd, ce, de. Its minimum
/// vertex cover has size 3 (e.g. `{b, c, d}` or `{a, c, e}`).
pub fn paper_example() -> CsrGraph {
    CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
        .expect("static edge list is valid")
}

/// `w × h` 2D grid graph. A bipartite mesh: MVC equals the smaller side
/// of the bipartition by Kőnig's theorem.
pub fn grid2d(w: u32, h: u32) -> CsrGraph {
    let id = |x: u32, y: u32| y * w + x;
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y)).expect("in range");
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1)).expect("in range");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!((0..7).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn star_center() {
        let g = star(8);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.num_edges(), 7);
    }

    #[test]
    fn petersen_is_cubic() {
        let g = petersen();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 15);
        assert!((0..10).all(|v| g.degree(v) == 3));
        g.validate().unwrap();
    }

    #[test]
    fn paper_example_shape() {
        let g = paper_example();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(2), 4); // c is the max-degree vertex
    }

    #[test]
    fn grid_counts() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), (3 - 1) * 4 + 3 * (4 - 1));
        g.validate().unwrap();
    }

    #[test]
    fn degenerate_small_cases() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(complete(1).num_edges(), 0);
        assert_eq!(grid2d(1, 1).num_edges(), 0);
    }
}
