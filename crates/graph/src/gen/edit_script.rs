//! Seeded edit-script fuzz generator for the incremental re-solve
//! pipeline.
//!
//! Scripts produced here are the churn workload for
//! `parvc_core::resolve`: mixes of edge/vertex insertions and
//! deletions that always [`EditScript::apply`] cleanly to the graph
//! they were generated against — no duplicate-edge inserts, no
//! missing-edge deletes, no zero-weight vertices — because the
//! generator simulates the evolving edge set op by op.

use std::collections::BTreeSet;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{CsrGraph, Edit, EditScript, VertexId};

/// Among insert ops, the share that append a vertex instead of an
/// edge; among delete ops, the share that isolate a vertex instead of
/// removing a single edge.
const VERTEX_OP_FRAC: f64 = 0.15;

/// Generates a seeded random edit script of exactly `ops` operations
/// against `g`.
///
/// `insert_frac` (clamped to `[0, 1]`) is the probability each op is
/// an insertion; the rest are deletions. Within each side a
/// fixed 15% share targets vertices (append / isolate) and
/// the rest edges. Edge inserts are rejection-sampled against the
/// evolving edge set so they never duplicate; edge deletes pick
/// uniformly among currently-live edges. When a delete is drawn but no
/// edge is live, the op falls back to an insertion (and vice versa
/// when the evolving graph is too dense to find a free slot). Inserted
/// vertices get weight 1 on unweighted graphs and a seeded weight in
/// `1..=10` on weighted ones, so scripts never introduce a zero
/// weight and never promote an unweighted instance to weighted.
///
/// Deterministic: the same `(g, ops, insert_frac, seed)` always yields
/// the same script, and the script always applies cleanly to `g`.
pub fn edit_script(g: &CsrGraph, ops: usize, insert_frac: f64, seed: u64) -> EditScript {
    let insert_frac = insert_frac.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = g.num_vertices();
    let mut live: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut present: BTreeSet<(VertexId, VertexId)> = live.iter().copied().collect();
    let mut script = EditScript::new();

    // Rejection-samples a currently-absent, non-loop edge; None when
    // the evolving graph leaves no free slot within the try budget.
    let sample_free = |rng: &mut StdRng, n: u32, present: &BTreeSet<(VertexId, VertexId)>| {
        if n < 2 {
            return None;
        }
        for _ in 0..64 {
            let u = rng.gen_range(0..n as usize) as VertexId;
            let v = rng.gen_range(0..n as usize) as VertexId;
            if u == v {
                continue;
            }
            let e = (u.min(v), u.max(v));
            if !present.contains(&e) {
                return Some(e);
            }
        }
        None
    };

    for _ in 0..ops {
        let want_insert = rng.gen::<f64>() < insert_frac;
        let vertex_op = rng.gen::<f64>() < VERTEX_OP_FRAC;
        // A delete with nothing to delete falls back to inserting; an
        // insert with nowhere to insert falls back to deleting. Both
        // at once can't happen on graphs with >= 2 vertices.
        let insert = (want_insert || live.is_empty()) && !(want_insert && n < 2);
        let op = if insert {
            if vertex_op || n < 2 {
                let weight = if g.is_weighted() {
                    rng.gen_range(1u64..=10)
                } else {
                    1
                };
                n += 1;
                Edit::InsertVertex { weight }
            } else {
                match sample_free(&mut rng, n, &present) {
                    Some(e) => {
                        present.insert(e);
                        live.push(e);
                        Edit::InsertEdge(e.0, e.1)
                    }
                    None => {
                        // Dense fallback: delete a random live edge.
                        let i = rng.gen_range(0..live.len());
                        let e = live.swap_remove(i);
                        present.remove(&e);
                        Edit::DeleteEdge(e.0, e.1)
                    }
                }
            }
        } else if vertex_op {
            let v = rng.gen_range(0..n as usize) as VertexId;
            live.retain(|&(a, b)| a != v && b != v);
            present.retain(|&(a, b)| a != v && b != v);
            Edit::DeleteVertex(v)
        } else {
            let i = rng.gen_range(0..live.len());
            let e = live.swap_remove(i);
            present.remove(&e);
            Edit::DeleteEdge(e.0, e.1)
        };
        script.push(op);
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn scripts_apply_cleanly_across_seeds_and_mixes() {
        let graphs = [
            gen::gnp(30, 0.15, 3),
            gen::barabasi_albert(40, 2, 5),
            gen::grid2d(5, 5),
            gen::sparse_components(48, 8, 0.5, 9),
        ];
        for g in &graphs {
            for seed in 0..8u64 {
                for frac in [0.0, 0.3, 0.5, 0.8, 1.0] {
                    let s = edit_script(g, 20, frac, seed);
                    assert_eq!(s.len(), 20, "exact op count");
                    let h = s.apply(g).unwrap_or_else(|e| {
                        panic!("seed {seed} frac {frac}: script must apply cleanly: {e}")
                    });
                    h.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let g = gen::gnp(25, 0.2, 7);
        let a = edit_script(&g, 30, 0.5, 42);
        let b = edit_script(&g, 30, 0.5, 42);
        assert_eq!(a, b);
        let c = edit_script(&g, 30, 0.5, 43);
        assert_ne!(a, c, "different seed, different script");
    }

    #[test]
    fn insert_frac_extremes_shape_the_mix() {
        let g = gen::gnp(30, 0.3, 1);
        let all_ins = edit_script(&g, 25, 1.0, 5);
        assert!(all_ins
            .ops()
            .iter()
            .all(|op| matches!(op, Edit::InsertEdge(..) | Edit::InsertVertex { .. })));
        // frac = 0.0 deletes while live edges last (gnp(30, .3) has
        // far more than 25 edges, so no fallback inserts fire).
        let all_del = edit_script(&g, 25, 0.0, 5);
        assert!(all_del
            .ops()
            .iter()
            .all(|op| matches!(op, Edit::DeleteEdge(..) | Edit::DeleteVertex(..))));
    }

    #[test]
    fn weights_follow_the_base_graph_channel() {
        let unweighted = gen::gnp(20, 0.2, 2);
        let s = edit_script(&unweighted, 40, 0.9, 3);
        for op in s.ops() {
            if let Edit::InsertVertex { weight } = op {
                assert_eq!(*weight, 1, "unweighted graphs stay unweighted");
            }
        }
        assert!(!s.apply(&unweighted).unwrap().is_weighted());

        let weighted = gen::with_uniform_weights(gen::gnp(20, 0.2, 2), 9, 4);
        let sw = edit_script(&weighted, 40, 0.9, 3);
        let mut saw_vertex_insert = false;
        for op in sw.ops() {
            if let Edit::InsertVertex { weight } = op {
                saw_vertex_insert = true;
                assert!((1..=10).contains(weight), "weights stay in 1..=10");
            }
        }
        assert!(
            saw_vertex_insert,
            "0.9 insert frac over 40 ops appends vertices"
        );
        assert!(sw.apply(&weighted).unwrap().is_weighted());
    }

    #[test]
    fn dense_graph_falls_back_instead_of_stalling() {
        // K6: no free edge slot, so pure-insert edge draws must fall
        // back to deletes rather than duplicate an edge.
        let g = gen::complete(6);
        for seed in 0..6u64 {
            let s = edit_script(&g, 15, 1.0, seed);
            s.apply(&g).unwrap();
        }
    }
}
