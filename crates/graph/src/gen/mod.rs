//! Deterministic instance generators.
//!
//! The paper evaluates on graphs from four collections (DIMACS \[22\],
//! KONECT \[23\], SNAP \[24\], PACE 2019 \[25\]) that cannot be redistributed
//! with this reproduction. Each generator here reproduces the *family
//! trait* that matters to the vertex-cover search tree: the density
//! regime and degree spread, which drive search-tree imbalance (§V-B).
//! All generators are deterministic given a seed.
//!
//! | paper family | stand-in |
//! |---|---|
//! | `p_hat*` complements | [`p_hat`] + [`crate::ops::complement`] |
//! | KONECT link graphs | [`barabasi_albert`], [`bipartite_gnp`] |
//! | US power grid | [`power_grid_like`] |
//! | LastFM Asia (SNAP) | [`barabasi_albert`] |
//! | Sister Cities | [`sparse_components`] |
//! | PACE 2019 `vc-exact_*` | [`pace_like`] |

mod edit_script;
mod named;
mod random;
pub mod spec;
mod structured;
mod weights;

pub use edit_script::edit_script;
pub use named::{complete, cycle, grid2d, paper_example, path, petersen, star};
pub use random::{bipartite_gnp, gnp, p_hat, p_hat_complement};
pub use structured::{
    barabasi_albert, pace_like, power_grid_like, random_geometric, random_regular,
    sparse_components, watts_strogatz,
};
pub use weights::{uniform_weights, with_degree_weights, with_uniform_weights};
