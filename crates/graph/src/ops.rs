//! Whole-graph operations: complement, induced subgraphs, components.

use crate::{CsrGraph, VertexId};

/// Returns the complement graph `G̅`.
///
/// The paper evaluates on *edge complements* of the DIMACS `p_hat`
/// maximum-clique instances (§V-A): a clique in `G` is an independent set
/// in `G̅`, turning clique benchmarks into vertex-cover benchmarks.
///
/// `O(|V|² )` time and `O(|V| + |E(G̅)|)` space.
///
/// # Examples
///
/// ```
/// use parvc_graph::{CsrGraph, ops};
/// let path = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let comp = ops::complement(&path);
/// assert_eq!(comp.num_edges(), 1); // only {0,2} was missing
/// assert!(comp.has_edge(0, 2));
/// ```
pub fn complement(g: &CsrGraph) -> CsrGraph {
    let n = g.num_vertices();
    let full = (n as u64 * (n as u64 - 1)) / 2;
    let m_comp = (full - g.num_edges()) as usize;
    let mut b = crate::GraphBuilder::with_capacity(n, m_comp);
    for u in 0..n {
        let adj = g.neighbors(u);
        let mut i = 0usize;
        for v in (u + 1)..n {
            while i < adj.len() && adj[i] < v {
                i += 1;
            }
            let adjacent = i < adj.len() && adj[i] == v;
            if !adjacent {
                b.add_edge(u, v).expect("complement endpoints in range");
            }
        }
    }
    carry_weights(b.build(), g, |v| v)
}

/// Re-attaches weights to `built` from `src`, mapping each vertex of
/// `built` to its `src` counterpart through `old_id`. No-op for
/// unweighted sources.
fn carry_weights(
    built: CsrGraph,
    src: &CsrGraph,
    old_id: impl Fn(VertexId) -> VertexId,
) -> CsrGraph {
    if !src.is_weighted() {
        return built;
    }
    let weights: Vec<u64> = (0..built.num_vertices())
        .map(|v| src.weight(old_id(v)))
        .collect();
    built
        .with_weights(weights)
        .expect("source weights are valid")
}

/// Returns the subgraph induced by `keep`, with vertices relabeled to
/// `0..keep.len()` in the order given, plus the relabeling map
/// (`new_id -> old_id` is simply `keep`; the returned vector maps
/// `old_id -> Option<new_id>` style via `u32::MAX` for dropped vertices).
///
/// Vertex weights are carried through the relabeling: on a weighted
/// graph the extracted subgraph is itself a weighted instance with
/// `sub.weight(new) == g.weight(keep[new])`.
pub fn induced_subgraph(g: &CsrGraph, keep: &[VertexId]) -> (CsrGraph, Vec<u32>) {
    let mut old_to_new = vec![u32::MAX; g.num_vertices() as usize];
    for (new, &old) in keep.iter().enumerate() {
        assert!(
            old_to_new[old as usize] == u32::MAX,
            "duplicate vertex {old} in induced_subgraph keep-list"
        );
        old_to_new[old as usize] = new as u32;
    }
    let mut b = crate::GraphBuilder::new(keep.len() as u32);
    for (new_u, &old_u) in keep.iter().enumerate() {
        for &old_v in g.neighbors(old_u) {
            let new_v = old_to_new[old_v as usize];
            if new_v != u32::MAX && (new_u as u32) < new_v {
                b.add_edge(new_u as u32, new_v)
                    .expect("relabeled endpoints in range");
            }
        }
    }
    let sub = carry_weights(b.build(), g, |new| keep[new as usize]);
    (sub, old_to_new)
}

/// Connected components; returns `(component_id_per_vertex, count)`.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, u32) {
    let n = g.num_vertices() as usize;
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = Vec::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next;
                    queue.push(w);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Whether `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    let (_, count) = connected_components(g);
    count <= 1
}

/// Disjoint union of two graphs; vertices of `b` are shifted by
/// `a.num_vertices()`.
pub fn disjoint_union(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    let shift = a.num_vertices();
    let mut builder = crate::GraphBuilder::with_capacity(
        shift + b.num_vertices(),
        (a.num_edges() + b.num_edges()) as usize,
    );
    for (u, v) in a.edges() {
        builder.add_edge(u, v).expect("union endpoints in range");
    }
    for (u, v) in b.edges() {
        builder
            .add_edge(u + shift, v + shift)
            .expect("union endpoints in range");
    }
    let union = builder.build();
    if !a.is_weighted() && !b.is_weighted() {
        return union;
    }
    let weights: Vec<u64> = (0..shift)
        .map(|v| a.weight(v))
        .chain((0..b.num_vertices()).map(|v| b.weight(v)))
        .collect();
    union
        .with_weights(weights)
        .expect("operand weights are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_of_complete_is_edgeless() {
        let k4 = crate::gen::complete(4);
        let c = complement(&k4);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.num_vertices(), 4);
    }

    #[test]
    fn complement_involution() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]).unwrap();
        assert_eq!(complement(&complement(&g)), g);
    }

    #[test]
    fn complement_edge_count() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let c = complement(&g);
        assert_eq!(c.num_edges() + g.num_edges(), 15);
        c.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let (sub, map) = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        // Only edge {1,2} survives, relabeled {0,1}.
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(map[1], 0);
        assert_eq!(map[4], 2);
        assert_eq!(map[0], u32::MAX);
    }

    #[test]
    fn components_counts() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn induced_subgraph_relabels_weights() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
            .unwrap()
            .with_weights(vec![10, 20, 30, 40, 50])
            .unwrap();
        let (sub, _) = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(sub.weights(), Some(&[20, 30, 50][..]));
        let c = complement(&g);
        assert_eq!(c.weight(4), 50, "complement keeps weights");
    }

    #[test]
    fn union_combines_weights() {
        let a = CsrGraph::from_edges(2, &[(0, 1)])
            .unwrap()
            .with_weights(vec![3, 4])
            .unwrap();
        let b = CsrGraph::from_edges(2, &[(0, 1)]).unwrap();
        let u = disjoint_union(&a, &b);
        assert_eq!(u.weights(), Some(&[3, 4, 1, 1][..]));
        let plain = disjoint_union(&b, &b);
        assert!(!plain.is_weighted());
    }

    #[test]
    fn union_shifts_ids() {
        let a = CsrGraph::from_edges(2, &[(0, 1)]).unwrap();
        let b = CsrGraph::from_edges(3, &[(0, 2)]).unwrap();
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_vertices(), 5);
        assert_eq!(u.num_edges(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 4));
    }
}
