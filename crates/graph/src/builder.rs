//! Incremental graph construction.

use crate::{CsrGraph, GraphError, VertexId};

/// Incremental builder for [`CsrGraph`].
///
/// Accepts edges in any order and orientation, deduplicates, and produces
/// a sorted CSR graph in `O(|E| log |E|)`.
///
/// # Examples
///
/// ```
/// use parvc_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(3, 2).unwrap();
/// b.add_edge(1, 0).unwrap(); // duplicate, ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: u32,
    /// Normalized `(min, max)` endpoint pairs.
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and no edges.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(n: u32, m: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Duplicates are tolerated (removed at [`build`](Self::build) time);
    /// self loops and out-of-range endpoints are errors.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        for w in [u, v] {
            if w >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: w,
                    num_vertices: self.num_vertices,
                });
            }
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Current number of (possibly duplicated) staged edges.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether `{u, v}` has already been staged (linear scan; intended
    /// for generators that must avoid duplicates cheaply — prefer their
    /// own sets for hot paths).
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Finalizes into a [`CsrGraph`], deduplicating staged edges.
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.num_vertices as usize;

        // Count directed degrees, then prefix-sum into row_ptr.
        let mut row_ptr = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            row_ptr[u as usize + 1] += 1;
            row_ptr[v as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }

        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0 as VertexId; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            col_idx[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            col_idx[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sorting the normalized edge list ascending makes each row's
        // second-endpoint entries ascending, but entries written as the
        // *first* endpoint interleave; sort each row to guarantee order.
        for v in 0..n {
            col_idx[row_ptr[v]..row_ptr[v + 1]].sort_unstable();
        }
        CsrGraph::from_parts(row_ptr, col_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_rows() {
        let mut b = GraphBuilder::new(5);
        for &(u, v) in &[(4, 0), (2, 0), (0, 3), (0, 1)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        g.validate().unwrap();
    }

    #[test]
    fn dedup_across_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        assert_eq!(b.staged_edges(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn contains_edge_checks_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        assert!(b.contains_edge(2, 0));
        assert!(!b.contains_edge(0, 1));
    }

    #[test]
    fn zero_vertex_builder() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = GraphBuilder::new(4);
        let mut b = GraphBuilder::with_capacity(4, 16);
        for &(u, v) in &[(0, 1), (2, 3)] {
            a.add_edge(u, v).unwrap();
            b.add_edge(u, v).unwrap();
        }
        assert_eq!(a.build(), b.build());
    }
}
