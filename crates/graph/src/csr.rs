//! Compressed Sparse Row graph representation.
//!
//! The CSR graph is the paper's *original graph* (§IV-B): a single
//! immutable copy shared by all thread blocks. Intermediate graphs are
//! never materialized in CSR form — they live as degree arrays layered on
//! top of this structure (see `parvc-core::node`).

use crate::{GraphError, VertexId};

/// An immutable, simple, undirected graph in Compressed Sparse Row form.
///
/// Each undirected edge `{u, v}` is stored twice (once in each endpoint's
/// adjacency list). Adjacency lists are sorted ascending, enabling
/// `O(log d)` adjacency tests — the degree-two-triangle reduction rule
/// relies on this.
///
/// Memory: `O(|V| + |E|)`, matching the paper's requirement that the
/// baseline representation stay compact.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col_idx` for vertex `v`.
    row_ptr: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    col_idx: Vec<VertexId>,
    /// Optional per-vertex weights for the **weighted** MVC variant.
    /// `None` means the unweighted problem; every accessor then reports
    /// weight 1, so unweighted graphs behave as all-ones instances.
    weights: Option<Box<[u64]>>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Duplicate edges (in either orientation) are deduplicated. Self
    /// loops and out-of-range endpoints are rejected.
    ///
    /// # Examples
    ///
    /// ```
    /// use parvc_graph::CsrGraph;
    /// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (1, 0)]).unwrap();
    /// assert_eq!(g.num_edges(), 2);
    /// assert_eq!(g.degree(1), 2);
    /// ```
    pub fn from_edges(n: u32, edges: &[(VertexId, VertexId)]) -> Result<Self, GraphError> {
        let mut builder = crate::GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds directly from pre-validated CSR arrays.
    ///
    /// Used by [`crate::GraphBuilder`] and the generators; callers must
    /// guarantee symmetry, sortedness, and absence of self loops —
    /// violations are caught by a debug assertion.
    pub(crate) fn from_parts(row_ptr: Vec<usize>, col_idx: Vec<VertexId>) -> Self {
        let g = CsrGraph {
            row_ptr,
            col_idx,
            weights: None,
        };
        debug_assert!(g.validate().is_ok(), "invalid CSR parts");
        g
    }

    /// Attaches per-vertex weights, turning the graph into a weighted
    /// MVC instance. Requires one weight per vertex, every weight ≥ 1
    /// (zero-weight vertices would break the engine's budget
    /// arithmetic, which relies on each cover vertex costing at least
    /// one weight unit), and a total weight of at most `i64::MAX` —
    /// every cover weighs at most the total, so this bound is what
    /// keeps the engine's signed budget arithmetic (and the unchecked
    /// `cover_weight` accumulation) overflow-free.
    ///
    /// # Examples
    ///
    /// ```
    /// use parvc_graph::CsrGraph;
    /// let g = CsrGraph::from_edges(2, &[(0, 1)])
    ///     .unwrap()
    ///     .with_weights(vec![5, 2])
    ///     .unwrap();
    /// assert!(g.is_weighted());
    /// assert_eq!(g.weight(0), 5);
    /// ```
    pub fn with_weights(mut self, weights: Vec<u64>) -> Result<Self, GraphError> {
        if weights.len() != self.num_vertices() as usize {
            return Err(GraphError::WeightCountMismatch {
                weights: weights.len(),
                num_vertices: self.num_vertices(),
            });
        }
        if let Some(v) = weights.iter().position(|&w| w == 0) {
            return Err(GraphError::ZeroWeight(v as VertexId));
        }
        let mut total: u64 = 0;
        for &w in &weights {
            total = total
                .checked_add(w)
                .filter(|&t| t <= i64::MAX as u64)
                .ok_or(GraphError::WeightSumOverflow)?;
        }
        self.weights = Some(weights.into_boxed_slice());
        Ok(self)
    }

    /// Drops the weight channel, returning the unweighted graph.
    pub fn without_weights(mut self) -> Self {
        self.weights = None;
        self
    }

    /// Whether a weight channel is attached.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Weight of `v`: the attached weight, or 1 for unweighted graphs.
    #[inline]
    pub fn weight(&self, v: VertexId) -> u64 {
        match &self.weights {
            Some(w) => w[v as usize],
            None => 1,
        }
    }

    /// The attached weight array, if any.
    #[inline]
    pub fn weights(&self) -> Option<&[u64]> {
        self.weights.as_deref()
    }

    /// Total weight of `cover` (its length for unweighted graphs) —
    /// the objective the weighted MVC variant minimizes.
    pub fn cover_weight(&self, cover: &[VertexId]) -> u64 {
        cover.iter().map(|&v| self.weight(v)).sum()
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.row_ptr.len() - 1) as u32
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        (self.col_idx.len() / 2) as u64
    }

    /// Degree of `v` in the original graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        let v = v as usize;
        (self.row_ptr[v + 1] - self.row_ptr[v]) as u32
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Whether the edge `{u, v}` exists. `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree `Δ(G)`.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.col_idx.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Checks structural invariants: monotone `row_ptr`, sorted + unique
    /// adjacency lists, no self loops, symmetric edges, endpoints in range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if *self.row_ptr.first().unwrap_or(&1) != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err("row_ptr[n] != col_idx.len()".into());
        }
        for v in 0..n as usize {
            if self.row_ptr[v] > self.row_ptr[v + 1] {
                return Err(format!("row_ptr not monotone at {v}"));
            }
        }
        for u in 0..n {
            let adj = self.neighbors(u);
            for w in adj.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {u} not sorted/unique"));
                }
            }
            for &v in adj {
                if v >= n {
                    return Err(format!("edge ({u},{v}) out of range"));
                }
                if v == u {
                    return Err(format!("self loop on {u}"));
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(format!("asymmetric edge ({u},{v})"));
                }
            }
        }
        if let Some(w) = &self.weights {
            if w.len() != n as usize {
                return Err(format!("{} weights for {n} vertices", w.len()));
            }
            if let Some(v) = w.iter().position(|&x| x == 0) {
                return Err(format!("zero weight on vertex {v}"));
            }
        }
        Ok(())
    }

    /// Content hash of the instance: a 64-bit FNV-1a digest over the
    /// canonical CSR arrays (`row_ptr`, `col_idx`) and the optional
    /// weight channel.
    ///
    /// Because construction canonicalizes the structure (sorted,
    /// deduplicated adjacency; edges stored symmetrically), two graphs
    /// describing the same instance hash identically regardless of how
    /// they were built — from an edge list, a DIMACS file, or a
    /// generator spec. The serving tier uses this as the **cache key**
    /// for the persisted result cache (`parvc serve`): repeat traffic
    /// for the same content is answered from cache without re-solving.
    ///
    /// The hash is a stable function of the content only (no pointer or
    /// build-order dependence), so it is safe to persist across runs.
    /// Equal hashes are treated as equal instances; at 64 bits,
    /// accidental collisions are negligible for cache sizing.
    ///
    /// # Examples
    ///
    /// ```
    /// use parvc_graph::CsrGraph;
    /// // Same instance, different construction order: one cache key.
    /// let a = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// let b = CsrGraph::from_edges(3, &[(2, 1), (0, 1), (1, 0)]).unwrap();
    /// assert_eq!(a.content_hash(), b.content_hash());
    ///
    /// // The weight channel is part of the instance, so weighting the
    /// // same structure yields a distinct key.
    /// let w = a.clone().with_weights(vec![2, 1, 1]).unwrap();
    /// assert_ne!(a.content_hash(), w.content_hash());
    /// ```
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        // A leading tag keeps the digest versioned: changing the layout
        // below must change every key, invalidating stale disk caches.
        eat(0x7061_7276_6373_7231); // "parvcsr1"
        eat(self.num_vertices() as u64);
        for &p in &self.row_ptr {
            eat(p as u64);
        }
        for &v in &self.col_idx {
            eat(v as u64);
        }
        match &self.weights {
            None => eat(0),
            Some(w) => {
                eat(1);
                for &x in w.iter() {
                    eat(x);
                }
            }
        }
        h
    }

    /// Approximate heap footprint in bytes — the quantity the paper's
    /// memory-capacity reasoning (§III-C) cares about.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<u64>())
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("max_degree", &self.max_degree())
            .field("weighted", &self.is_weighted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        g.validate().unwrap();
    }

    #[test]
    fn deduplicates_edges() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            CsrGraph::from_edges(2, &[(1, 1)]).unwrap_err(),
            GraphError::SelfLoop(1)
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            CsrGraph::from_edges(2, &[(0, 5)]).unwrap_err(),
            GraphError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 2
            }
        ));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn edgeless_graph_with_vertices() {
        let g = CsrGraph::from_edges(4, &[]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn weights_attach_and_default_to_one() {
        let g = triangle();
        assert!(!g.is_weighted());
        assert_eq!(g.weight(1), 1);
        assert_eq!(g.cover_weight(&[0, 2]), 2);
        let w = g.clone().with_weights(vec![3, 1, 7]).unwrap();
        assert!(w.is_weighted());
        assert_eq!(w.weight(2), 7);
        assert_eq!(w.cover_weight(&[0, 2]), 10);
        assert_eq!(w.weights(), Some(&[3, 1, 7][..]));
        w.validate().unwrap();
        assert_ne!(w, triangle(), "weights participate in equality");
        assert_eq!(w.without_weights(), triangle());
    }

    #[test]
    fn weights_reject_bad_inputs() {
        let g = triangle();
        assert_eq!(
            g.clone().with_weights(vec![1, 2]).unwrap_err(),
            GraphError::WeightCountMismatch {
                weights: 2,
                num_vertices: 3
            }
        );
        assert_eq!(
            g.clone().with_weights(vec![1, 0, 2]).unwrap_err(),
            GraphError::ZeroWeight(1)
        );
        // The total-weight cap: any cover weighs at most the total, so
        // i64::MAX totals are the bound the solvers' arithmetic needs.
        assert_eq!(
            g.clone()
                .with_weights(vec![u64::MAX / 2, u64::MAX / 2, 2])
                .unwrap_err(),
            GraphError::WeightSumOverflow
        );
        assert_eq!(
            g.clone()
                .with_weights(vec![i64::MAX as u64, 1, 1])
                .unwrap_err(),
            GraphError::WeightSumOverflow
        );
        assert!(g.with_weights(vec![i64::MAX as u64 - 2, 1, 1]).is_ok());
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        let g2 = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(!g2.has_edge(0, 2));
        assert!(!g2.has_edge(1, 2));
    }

    #[test]
    fn edge_iterator_yields_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn content_hash_is_content_only() {
        let g = triangle();
        // Stable across clones and rebuilds with shuffled input order.
        assert_eq!(g.content_hash(), g.clone().content_hash());
        let shuffled = CsrGraph::from_edges(3, &[(2, 0), (1, 0), (2, 1), (0, 1)]).unwrap();
        assert_eq!(g.content_hash(), shuffled.content_hash());
        // Sensitive to structure, vertex count, and weights.
        let path = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_ne!(g.content_hash(), path.content_hash());
        let padded = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_ne!(g.content_hash(), padded.content_hash());
        let weighted = g.clone().with_weights(vec![1, 1, 1]).unwrap();
        assert_ne!(g.content_hash(), weighted.content_hash());
        let reweighted = g.clone().with_weights(vec![1, 1, 2]).unwrap();
        assert_ne!(weighted.content_hash(), reweighted.content_hash());
    }

    #[test]
    fn degree_and_max_degree() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }
}
