//! Compressed Sparse Row graph representation.
//!
//! The CSR graph is the paper's *original graph* (§IV-B): a single
//! immutable copy shared by all thread blocks. Intermediate graphs are
//! never materialized in CSR form — they live as degree arrays layered on
//! top of this structure (see `parvc-core::node`).

use crate::{GraphError, VertexId};

/// An immutable, simple, undirected graph in Compressed Sparse Row form.
///
/// Each undirected edge `{u, v}` is stored twice (once in each endpoint's
/// adjacency list). Adjacency lists are sorted ascending, enabling
/// `O(log d)` adjacency tests — the degree-two-triangle reduction rule
/// relies on this.
///
/// Memory: `O(|V| + |E|)`, matching the paper's requirement that the
/// baseline representation stay compact.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col_idx` for vertex `v`.
    row_ptr: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    col_idx: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Duplicate edges (in either orientation) are deduplicated. Self
    /// loops and out-of-range endpoints are rejected.
    ///
    /// # Examples
    ///
    /// ```
    /// use parvc_graph::CsrGraph;
    /// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (1, 0)]).unwrap();
    /// assert_eq!(g.num_edges(), 2);
    /// assert_eq!(g.degree(1), 2);
    /// ```
    pub fn from_edges(n: u32, edges: &[(VertexId, VertexId)]) -> Result<Self, GraphError> {
        let mut builder = crate::GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds directly from pre-validated CSR arrays.
    ///
    /// Used by [`crate::GraphBuilder`] and the generators; callers must
    /// guarantee symmetry, sortedness, and absence of self loops —
    /// violations are caught by a debug assertion.
    pub(crate) fn from_parts(row_ptr: Vec<usize>, col_idx: Vec<VertexId>) -> Self {
        let g = CsrGraph { row_ptr, col_idx };
        debug_assert!(g.validate().is_ok(), "invalid CSR parts");
        g
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.row_ptr.len() - 1) as u32
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        (self.col_idx.len() / 2) as u64
    }

    /// Degree of `v` in the original graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        let v = v as usize;
        (self.row_ptr[v + 1] - self.row_ptr[v]) as u32
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Whether the edge `{u, v}` exists. `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree `Δ(G)`.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.col_idx.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Checks structural invariants: monotone `row_ptr`, sorted + unique
    /// adjacency lists, no self loops, symmetric edges, endpoints in range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if *self.row_ptr.first().unwrap_or(&1) != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err("row_ptr[n] != col_idx.len()".into());
        }
        for v in 0..n as usize {
            if self.row_ptr[v] > self.row_ptr[v + 1] {
                return Err(format!("row_ptr not monotone at {v}"));
            }
        }
        for u in 0..n {
            let adj = self.neighbors(u);
            for w in adj.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {u} not sorted/unique"));
                }
            }
            for &v in adj {
                if v >= n {
                    return Err(format!("edge ({u},{v}) out of range"));
                }
                if v == u {
                    return Err(format!("self loop on {u}"));
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(format!("asymmetric edge ({u},{v})"));
                }
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes — the quantity the paper's
    /// memory-capacity reasoning (§III-C) cares about.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<VertexId>()
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        g.validate().unwrap();
    }

    #[test]
    fn deduplicates_edges() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            CsrGraph::from_edges(2, &[(1, 1)]).unwrap_err(),
            GraphError::SelfLoop(1)
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            CsrGraph::from_edges(2, &[(0, 5)]).unwrap_err(),
            GraphError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 2
            }
        ));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn edgeless_graph_with_vertices() {
        let g = CsrGraph::from_edges(4, &[]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        let g2 = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(!g2.has_edge(0, 2));
        assert!(!g2.has_edge(1, 2));
    }

    #[test]
    fn edge_iterator_yields_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn degree_and_max_degree() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }
}
