//! Graph serialization: DIMACS and whitespace edge-list formats.
//!
//! The paper's instances come from DIMACS \[22\] (`.clq`, `p edge` header,
//! 1-based `e u v` lines), KONECT/SNAP (plain edge lists), and PACE 2019
//! (`p td n m` header, 1-based edge lines). These parsers let real
//! downloads drop straight into the benchmark suite in place of the
//! generated stand-ins.

use std::io::{BufRead, Write};

use crate::{CsrGraph, GraphBuilder, GraphError};

/// Parses a DIMACS graph (`c` comments, one `p <format> <n> <m>` line,
/// `e u v` edge lines with 1-based vertex ids).
///
/// Accepts any `<format>` token (`edge`, `col`, `clq`, `td`), since the
/// collections disagree on it. Duplicate edges are tolerated.
///
/// **Vertex weights**: `n <v> <w>` lines (the weighted-benchmark
/// convention; `v <v> <w>` is accepted as an alias) attach weight `w`
/// to 1-based vertex `v`. If any weight line appears the graph becomes
/// a weighted instance, with unmentioned vertices defaulting to
/// weight 1; weights must be ≥ 1.
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut weights: Vec<(u32, u64)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        match tokens.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: "duplicate problem line".into(),
                    });
                }
                let _format = tokens.next().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "missing format token".into(),
                })?;
                let n: u32 = parse_token(tokens.next(), lineno, "vertex count")?;
                let _m_declared: u64 = parse_token(tokens.next(), lineno, "edge count")?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "edge before problem line".into(),
                })?;
                let u: u32 = parse_token(tokens.next(), lineno, "edge endpoint")?;
                let v: u32 = parse_token(tokens.next(), lineno, "edge endpoint")?;
                if u == 0 || v == 0 {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: "DIMACS vertex ids are 1-based".into(),
                    });
                }
                b.add_edge(u - 1, v - 1)?;
            }
            Some("n") | Some("v") => {
                let b = builder.as_ref().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "weight before problem line".into(),
                })?;
                let v: u32 = parse_token(tokens.next(), lineno, "weighted vertex")?;
                let w: u64 = parse_token(tokens.next(), lineno, "vertex weight")?;
                if v == 0 || v > b.num_vertices() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!("weighted vertex {v} out of 1-based range"),
                    });
                }
                if w == 0 {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!("zero weight on vertex {v}"),
                    });
                }
                weights.push((v - 1, w));
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unexpected line type '{other}'"),
                });
            }
            None => unreachable!("trimmed non-empty line has a token"),
        }
    }
    let g = builder.map(GraphBuilder::build).ok_or(GraphError::Parse {
        line: 0,
        message: "no problem line found".into(),
    })?;
    if weights.is_empty() {
        return Ok(g);
    }
    let mut full = vec![1u64; g.num_vertices() as usize];
    for (v, w) in weights {
        full[v as usize] = w;
    }
    g.with_weights(full)
}

/// Writes `g` in DIMACS format with the given format token. Weighted
/// graphs additionally emit one `n <v> <w>` line per vertex (1-based),
/// which [`parse_dimacs`] round-trips.
pub fn write_dimacs<W: Write>(g: &CsrGraph, format: &str, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "p {format} {} {}", g.num_vertices(), g.num_edges())?;
    if let Some(weights) = g.weights() {
        for (v, wt) in weights.iter().enumerate() {
            writeln!(w, "n {} {wt}", v + 1)?;
        }
    }
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

/// Parses a whitespace-separated edge list (`u v` per line, `#` or `%`
/// comments, 0-based ids). The vertex count is `max id + 1` unless a
/// larger `num_vertices` is supplied.
pub fn parse_edge_list<R: BufRead>(
    reader: R,
    num_vertices: Option<u32>,
) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let u: u32 = parse_token(tokens.next(), lineno, "edge endpoint")?;
        let v: u32 = parse_token(tokens.next(), lineno, "edge endpoint")?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = match num_vertices {
        Some(n) => n,
        None if edges.is_empty() => 0,
        None => max_id + 1,
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Writes `g` as a 0-based edge list, one `u v` per line.
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> Result<(), GraphError> {
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

fn parse_token<T: std::str::FromStr>(
    token: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let tok = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("bad {what} '{tok}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn dimacs_roundtrip() {
        let g = crate::gen::petersen();
        let mut buf = Vec::new();
        write_dimacs(&g, "edge", &mut buf).unwrap();
        let parsed = parse_dimacs(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn dimacs_parses_comments_and_blank_lines() {
        let text = "c a comment\n\np edge 3 2\ne 1 2\nc another\ne 2 3\n";
        let g = parse_dimacs(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn weighted_dimacs_roundtrip() {
        let g = crate::gen::petersen()
            .with_weights((1..=10).collect())
            .unwrap();
        let mut buf = Vec::new();
        write_dimacs(&g, "edge", &mut buf).unwrap();
        let parsed = parse_dimacs(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, g);
        assert_eq!(parsed.weight(9), 10);
    }

    #[test]
    fn dimacs_partial_weights_default_to_one() {
        let text = "p edge 3 2\nn 2 7\ne 1 2\ne 2 3\nv 3 4\n";
        let g = parse_dimacs(Cursor::new(text)).unwrap();
        assert_eq!(g.weights(), Some(&[1, 7, 4][..]));
    }

    #[test]
    fn dimacs_rejects_bad_weight_lines() {
        for text in [
            "n 1 5\np edge 2 1\ne 1 2\n",  // weight before header
            "p edge 2 1\ne 1 2\nn 0 5\n",  // 0-based vertex
            "p edge 2 1\ne 1 2\nn 9 5\n",  // out of range
            "p edge 2 1\ne 1 2\nn 1 0\n",  // zero weight
            "p edge 2 1\ne 1 2\nn 1\n",    // missing weight
            "p edge 2 1\ne 1 2\nn 1 -3\n", // negative weight
        ] {
            assert!(
                parse_dimacs(Cursor::new(text)).is_err(),
                "accepted: {text:?}"
            );
        }
    }

    #[test]
    fn dimacs_rejects_edge_before_header() {
        let err = parse_dimacs(Cursor::new("e 1 2\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let err = parse_dimacs(Cursor::new("p edge 3 1\ne 0 1\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn dimacs_rejects_garbage() {
        let err = parse_dimacs(Cursor::new("p edge 3 1\nq 1 2\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn dimacs_rejects_missing_header() {
        let err = parse_dimacs(Cursor::new("c nothing here\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 0, .. }));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = crate::gen::gnp(40, 0.15, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = parse_edge_list(Cursor::new(buf), Some(40)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn edge_list_infers_vertex_count() {
        let g =
            parse_edge_list(Cursor::new("# comment\n0 3\n% other comment\n1 2\n"), None).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_empty_input() {
        let g = parse_edge_list(Cursor::new(""), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn edge_list_isolated_tail_vertices() {
        let g = parse_edge_list(Cursor::new("0 1\n"), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }
}
