//! Matchings: greedy maximal, Hopcroft–Karp maximum bipartite, and the
//! Kőnig cover construction.
//!
//! Role in the suite: a *maximal* matching lower-bounds every vertex
//! cover (each matched edge needs its own cover vertex), giving the
//! branch-and-reduce solvers an optional pruning bound beyond the
//! paper's rules. On *bipartite* graphs, Kőnig's theorem upgrades a
//! *maximum* matching into an exact minimum vertex cover — an
//! independent polynomial-time oracle the tests use to validate the
//! exponential solvers on instances far beyond brute-force range
//! (the movielens-style rows of Table I are bipartite).

use crate::{CsrGraph, VertexId};

/// A greedy maximal matching: scan edges in order, take every edge with
/// two unmatched endpoints. `O(|V| + |E|)`. The number of edges
/// returned is a lower bound on the size of any vertex cover.
pub fn greedy_maximal_matching(g: &CsrGraph) -> Vec<(VertexId, VertexId)> {
    let mut matched = vec![false; g.num_vertices() as usize];
    let mut matching = Vec::new();
    for u in g.vertices() {
        if matched[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            if v > u && !matched[v as usize] {
                matched[u as usize] = true;
                matched[v as usize] = true;
                matching.push((u, v));
                break;
            }
        }
    }
    matching
}

/// Weighted matching lower bound: for each edge of a greedy maximal
/// matching, any vertex cover pays at least the cheaper endpoint, and
/// matched edges share no endpoints, so the per-edge minima sum into a
/// lower bound on the minimum *weight* vertex cover. Degenerates to
/// the matching size on unweighted graphs (every weight is 1).
pub fn min_weight_matching_bound(g: &CsrGraph) -> u64 {
    greedy_maximal_matching(g)
        .into_iter()
        .map(|(u, v)| g.weight(u).min(g.weight(v)))
        .sum()
}

/// The primal-dual weighted vertex cover result: a cover whose weight
/// is at most `2 × dual`, and a dual value that lower-bounds *every*
/// vertex cover's weight. See [`primal_dual_cover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimalDual {
    /// Cover vertices, ascending.
    pub cover: Vec<VertexId>,
    /// Total weight of `cover` (its length on unweighted graphs).
    pub weight: u64,
    /// The dual objective `Σ y_e` — a valid lower bound on the minimum
    /// weight vertex cover, always `≥ weight / 2`.
    pub dual: u64,
}

/// Bar-Yehuda–Even primal-dual 2-approximation for *weighted* vertex
/// cover, `O(|V| + |E|)`.
///
/// Each vertex starts with residual capacity `weight(v)`. One pass
/// over the edges raises each edge's dual `y_e = min(res(u), res(v))`,
/// paying it out of both endpoints; a vertex whose residual hits zero
/// is *tight* and enters the cover. Soundness:
///
/// * every edge drives one endpoint tight, so the tight set covers;
/// * a tight vertex's weight equals the sum of its incident duals, so
///   `weight(cover) ≤ Σ_{v tight} Σ_{e ∋ v} y_e ≤ 2·Σ y_e = 2·dual`;
/// * `{y_e}` is feasible for the covering LP, so `dual ≤ OPT` by weak
///   duality — making `dual` a lower bound that can strictly dominate
///   [`min_weight_matching_bound`] (e.g. odd paths with a heavy
///   middle), and `weight ≤ 2·dual ≤ 2·OPT`.
///
/// A final sequential prune drops redundant cover vertices (all
/// neighbors already covered), scanning in decreasing weight with
/// vertex-id tie-break so the result is deterministic.
pub fn primal_dual_cover(g: &CsrGraph) -> PrimalDual {
    let n = g.num_vertices() as usize;
    let mut residual: Vec<u64> = (0..n as u32).map(|v| g.weight(v)).collect();
    let mut dual: u64 = 0;
    for (u, v) in g.edges() {
        let y = residual[u as usize].min(residual[v as usize]);
        if y > 0 {
            residual[u as usize] -= y;
            residual[v as usize] -= y;
            dual += y;
        }
    }
    let mut in_cover: Vec<bool> = residual.iter().map(|&r| r == 0).collect();
    let mut order: Vec<VertexId> = (0..n as u32).filter(|&v| in_cover[v as usize]).collect();
    order.sort_by(|&a, &b| g.weight(b).cmp(&g.weight(a)).then(a.cmp(&b)));
    for v in order {
        if g.neighbors(v).iter().all(|&u| in_cover[u as usize]) {
            in_cover[v as usize] = false;
        }
    }
    let cover: Vec<VertexId> = (0..n as u32).filter(|&v| in_cover[v as usize]).collect();
    let weight = g.cover_weight(&cover);
    PrimalDual {
        cover,
        weight,
        dual,
    }
}

/// A maximal matching built by synchronous handshake rounds, plus the
/// round count — the serial reference for the executor-parallel round
/// matching in `parvc-core`. See [`handshake_matching`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundMatching {
    /// Matched edges `(u, v)` with `u < v`, in match order.
    pub matching: Vec<(VertexId, VertexId)>,
    /// Synchronous rounds executed (including a final compressed
    /// sweep, if any).
    pub rounds: u32,
    /// Whether the tail was collapsed into one serial sweep.
    pub compressed: bool,
}

/// Round-based maximal matching (serial reference semantics).
///
/// Each round runs two passes over the vertices: every unmatched
/// vertex *picks* its minimum-id unmatched neighbor, then mutual picks
/// (`pick[pick[v]] == v`) match. Progress: the globally minimal
/// unmatched vertex with an unmatched neighbor always handshakes — its
/// pick `v` can have no unmatched neighbor smaller than it, so
/// `pick[v]` points back — hence every round matches at least one
/// edge. When fewer than `compress_below` vertices remain active
/// (unmatched with an unmatched neighbor), the tail rounds are
/// *compressed* into one deterministic serial greedy sweep — the
/// low-degree endgame where synchronous rounds stop paying.
///
/// The executor-parallel twin (`parvc_core::approx`) must bit-match
/// this function — same matching, same round count — under any
/// executor; tests cross-check the two.
pub fn handshake_matching(g: &CsrGraph, compress_below: usize) -> RoundMatching {
    const NIL: u32 = u32::MAX;
    let n = g.num_vertices() as usize;
    let mut matched = vec![false; n];
    let mut pick = vec![NIL; n];
    let mut matching = Vec::new();
    let mut rounds = 0u32;
    let mut compressed = false;
    loop {
        let active = (0..n as u32)
            .filter(|&v| {
                !matched[v as usize] && g.neighbors(v).iter().any(|&u| !matched[u as usize])
            })
            .count();
        if active == 0 {
            break;
        }
        rounds += 1;
        if active < compress_below {
            for u in 0..n as u32 {
                if matched[u as usize] {
                    continue;
                }
                if let Some(&v) = g.neighbors(u).iter().find(|&&v| !matched[v as usize]) {
                    matched[u as usize] = true;
                    matched[v as usize] = true;
                    matching.push((u, v));
                }
            }
            compressed = true;
            break;
        }
        for v in 0..n as u32 {
            pick[v as usize] = if matched[v as usize] {
                NIL
            } else {
                g.neighbors(v)
                    .iter()
                    .copied()
                    .find(|&u| !matched[u as usize])
                    .unwrap_or(NIL)
            };
        }
        for v in 0..n as u32 {
            let u = pick[v as usize];
            if u != NIL && v < u && pick[u as usize] == v {
                matched[v as usize] = true;
                matched[u as usize] = true;
                matching.push((v, u));
            }
        }
    }
    RoundMatching {
        matching,
        rounds,
        compressed,
    }
}

/// A proper 2-coloring of `g` (`colors[v] ∈ {false, true}`), or `None`
/// if `g` has an odd cycle (is not bipartite). Isolated vertices get
/// `false`.
pub fn bipartition(g: &CsrGraph) -> Option<Vec<bool>> {
    let n = g.num_vertices() as usize;
    let mut color = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if color[start as usize] != u8::MAX {
            continue;
        }
        color[start as usize] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    queue.push_back(w);
                } else if color[w as usize] == color[v as usize] {
                    return None;
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c == 1).collect())
}

/// Maximum matching of a bipartite graph by Hopcroft–Karp,
/// `O(|E| √|V|)`. Returns `mate[v] = Some(partner)` per vertex.
///
/// `side[v] = false` for left vertices, `true` for right (as produced
/// by [`bipartition`]); edges must only join opposite sides.
pub fn hopcroft_karp(g: &CsrGraph, side: &[bool]) -> Vec<Option<VertexId>> {
    let n = g.num_vertices() as usize;
    assert_eq!(side.len(), n, "side length must match |V|");
    debug_assert!(
        g.edges().all(|(u, v)| side[u as usize] != side[v as usize]),
        "graph is not bipartite under the given sides"
    );
    let mut mate: Vec<Option<VertexId>> = vec![None; n];
    let lefts: Vec<VertexId> = (0..n as u32).filter(|&v| !side[v as usize]).collect();

    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; n];
    loop {
        // BFS from unmatched left vertices, layering by alternating paths.
        let mut queue = std::collections::VecDeque::new();
        for &u in &lefts {
            if mate[u as usize].is_none() {
                dist[u as usize] = 0;
                queue.push_back(u);
            } else {
                dist[u as usize] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                match mate[v as usize] {
                    None => found_augmenting = true,
                    Some(next) if dist[next as usize] == INF => {
                        dist[next as usize] = dist[u as usize] + 1;
                        queue.push_back(next);
                    }
                    Some(_) => {}
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths.
        for &u in &lefts {
            if mate[u as usize].is_none() {
                augment(g, u, &mut mate, &mut dist);
            }
        }
    }
    mate
}

/// The DFS phase of Hopcroft–Karp, iterative so that augmenting paths
/// of length `O(|V|)` (which arise on the massive double-cover graphs
/// the kernelization pipeline builds) cannot overflow the call stack.
/// Frames are `(left vertex, next neighbor index, edge taken downward)`.
fn augment(g: &CsrGraph, root: VertexId, mate: &mut [Option<VertexId>], dist: &mut [u32]) -> bool {
    let mut frames: Vec<(VertexId, usize, VertexId)> = vec![(root, 0, u32::MAX)];
    while let Some(&(u, idx, _)) = frames.last() {
        let nbrs = g.neighbors(u);
        let mut i = idx;
        let mut descended = false;
        while i < nbrs.len() {
            let v = nbrs[i];
            i += 1;
            match mate[v as usize] {
                None => {
                    // Free right vertex: flip the whole path to matched.
                    mate[v as usize] = Some(u);
                    mate[u as usize] = Some(v);
                    frames.pop();
                    while let Some((pu, _, via)) = frames.pop() {
                        mate[via as usize] = Some(pu);
                        mate[pu as usize] = Some(via);
                    }
                    return true;
                }
                Some(next) if dist[next as usize] == dist[u as usize] + 1 => {
                    let top = frames.last_mut().expect("frame for u is on the stack");
                    top.1 = i;
                    top.2 = v;
                    frames.push((next, 0, u32::MAX));
                    descended = true;
                    break;
                }
                Some(_) => {}
            }
        }
        if !descended {
            dist[u as usize] = u32::MAX; // dead end: prune this layer
            frames.pop();
        }
    }
    false
}

/// Exact minimum vertex cover of a **bipartite** graph via Kőnig's
/// theorem, or `None` if `g` is not bipartite. Polynomial time — the
/// oracle companion to the exponential solvers.
pub fn konig_cover(g: &CsrGraph) -> Option<Vec<VertexId>> {
    let side = bipartition(g)?;
    let mate = hopcroft_karp(g, &side);

    // Alternating reachability Z from unmatched left vertices:
    // left → right over NON-matching edges, right → left over matching
    // edges. Cover = (L ∖ Z) ∪ (R ∩ Z).
    let n = g.num_vertices() as usize;
    let mut in_z = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n as u32 {
        if !side[v as usize] && mate[v as usize].is_none() {
            in_z[v as usize] = true;
            queue.push_back(v);
        }
    }
    while let Some(u) = queue.pop_front() {
        if !side[u as usize] {
            // Left vertex: cross non-matching edges.
            for &v in g.neighbors(u) {
                if mate[u as usize] != Some(v) && !in_z[v as usize] {
                    in_z[v as usize] = true;
                    queue.push_back(v);
                }
            }
        } else if let Some(m) = mate[u as usize] {
            // Right vertex: cross its matching edge.
            if !in_z[m as usize] {
                in_z[m as usize] = true;
                queue.push_back(m);
            }
        }
    }
    let cover = (0..n as u32)
        .filter(|&v| {
            let left = !side[v as usize];
            (left && !in_z[v as usize]) || (!left && in_z[v as usize])
        })
        .collect();
    Some(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn matching_size(mate: &[Option<VertexId>]) -> usize {
        mate.iter().flatten().count() / 2
    }

    fn is_matching(g: &CsrGraph, mate: &[Option<VertexId>]) -> bool {
        mate.iter().enumerate().all(|(v, m)| match m {
            None => true,
            Some(u) => g.has_edge(v as u32, *u) && mate[*u as usize] == Some(v as u32),
        })
    }

    #[test]
    fn min_weight_matching_bound_degenerates_and_discounts() {
        let g = gen::cycle(6);
        assert_eq!(
            min_weight_matching_bound(&g),
            greedy_maximal_matching(&g).len() as u64,
            "unweighted: bound equals matching size"
        );
        // An isolated edge with weights {5, 2}: any cover pays >= 2.
        let w = CsrGraph::from_edges(2, &[(0, 1)])
            .unwrap()
            .with_weights(vec![5, 2])
            .unwrap();
        assert_eq!(min_weight_matching_bound(&w), 2);
    }

    #[test]
    fn greedy_matching_is_maximal() {
        for seed in 0..6 {
            let g = gen::gnp(40, 0.12, seed);
            let m = greedy_maximal_matching(&g);
            let mut matched = [false; 40];
            for &(u, v) in &m {
                assert!(g.has_edge(u, v));
                assert!(
                    !matched[u as usize] && !matched[v as usize],
                    "vertex reused"
                );
                matched[u as usize] = true;
                matched[v as usize] = true;
            }
            // Maximality: no edge with two unmatched endpoints remains.
            for (u, v) in g.edges() {
                assert!(
                    matched[u as usize] || matched[v as usize],
                    "edge {u}-{v} extendable"
                );
            }
        }
    }

    #[test]
    fn bipartition_detects_odd_cycles() {
        assert!(bipartition(&gen::cycle(6)).is_some());
        assert!(bipartition(&gen::cycle(5)).is_none());
        assert!(bipartition(&gen::complete(3)).is_none());
        assert!(bipartition(&gen::grid2d(3, 3)).is_some());
    }

    #[test]
    fn hk_perfect_matching_on_even_cycle() {
        let g = gen::cycle(8);
        let side = bipartition(&g).unwrap();
        let mate = hopcroft_karp(&g, &side);
        assert!(is_matching(&g, &mate));
        assert_eq!(matching_size(&mate), 4);
    }

    #[test]
    fn hk_on_stars_and_paths() {
        let star = gen::star(7);
        let side = bipartition(&star).unwrap();
        assert_eq!(matching_size(&hopcroft_karp(&star, &side)), 1);

        let path = gen::path(7);
        let side = bipartition(&path).unwrap();
        assert_eq!(matching_size(&hopcroft_karp(&path, &side)), 3);
    }

    #[test]
    fn konig_matches_brute_force_shapes() {
        // Known optima: grid 4x4 → 8, path(9) → 4, star(10) → 1,
        // even cycle C8 → 4.
        assert_eq!(konig_cover(&gen::grid2d(4, 4)).unwrap().len(), 8);
        assert_eq!(konig_cover(&gen::path(9)).unwrap().len(), 4);
        assert_eq!(konig_cover(&gen::star(10)).unwrap().len(), 1);
        assert_eq!(konig_cover(&gen::cycle(8)).unwrap().len(), 4);
        assert!(
            konig_cover(&gen::petersen()).is_none(),
            "Petersen has odd cycles"
        );
    }

    #[test]
    fn konig_cover_is_a_cover_of_matching_size() {
        for seed in 0..8 {
            let g = gen::bipartite_gnp(15, 20, 0.2, seed);
            let side = bipartition(&g).unwrap();
            let mate = hopcroft_karp(&g, &side);
            assert!(is_matching(&g, &mate));
            let cover = konig_cover(&g).unwrap();
            // Kőnig: |min cover| = |max matching|.
            assert_eq!(cover.len(), matching_size(&mate), "seed {seed}");
            // And it actually covers.
            let mut in_cover = vec![false; g.num_vertices() as usize];
            for &v in &cover {
                in_cover[v as usize] = true;
            }
            for (u, v) in g.edges() {
                assert!(in_cover[u as usize] || in_cover[v as usize], "seed {seed}");
            }
        }
    }

    #[test]
    fn matching_lower_bounds_cover() {
        // |greedy maximal matching| ≤ |max matching| = bipartite MVC.
        for seed in 0..5 {
            let g = gen::bipartite_gnp(12, 12, 0.25, seed);
            let greedy = greedy_maximal_matching(&g).len();
            let exact = konig_cover(&g).unwrap().len();
            assert!(
                greedy <= exact,
                "seed {seed}: greedy {greedy} > exact cover {exact}"
            );
        }
    }

    fn is_cover(g: &CsrGraph, cover: &[VertexId]) -> bool {
        let mut inc = vec![false; g.num_vertices() as usize];
        for &v in cover {
            inc[v as usize] = true;
        }
        g.edges().all(|(u, v)| inc[u as usize] || inc[v as usize])
    }

    #[test]
    fn primal_dual_is_a_cover_within_twice_its_dual() {
        for seed in 0..8 {
            let g = gen::with_uniform_weights(gen::gnp(36, 0.14, seed), 9, seed ^ 0x51);
            let pd = primal_dual_cover(&g);
            assert!(is_cover(&g, &pd.cover), "seed {seed}");
            assert_eq!(pd.weight, g.cover_weight(&pd.cover), "seed {seed}");
            assert!(pd.weight <= 2 * pd.dual, "seed {seed}: 2x band broken");
            // The dual never undercuts the matching bound's role as a
            // sound LB certificate: both must sit under the cover.
            assert!(pd.dual <= pd.weight, "seed {seed}");
        }
    }

    #[test]
    fn primal_dual_dual_can_dominate_the_matching_bound() {
        // Path 0-1-2 with weights (1, 2, 1): one matched edge gives
        // min-weight bound 1, but the duals y01 = y12 = 1 sum to 2 —
        // exactly the optimum ({1} or {0,2}, both weigh 2).
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)])
            .unwrap()
            .with_weights(vec![1, 2, 1])
            .unwrap();
        assert_eq!(min_weight_matching_bound(&g), 1);
        let pd = primal_dual_cover(&g);
        assert_eq!(pd.dual, 2, "both edges raise a unit dual");
        assert!(is_cover(&g, &pd.cover));
        assert!(pd.weight <= 2 * pd.dual);
    }

    #[test]
    fn primal_dual_takes_the_leaves_of_an_expensive_hub() {
        // Star with a heavy hub: tight leaves are the optimum; the
        // prune must not drop them for the hub.
        let g = gen::star(6).with_weights(vec![100, 1, 1, 1, 1, 1]).unwrap();
        let pd = primal_dual_cover(&g);
        assert_eq!(pd.cover, vec![1, 2, 3, 4, 5]);
        assert_eq!(pd.weight, 5);
        assert_eq!(pd.dual, 5);
    }

    #[test]
    fn primal_dual_prunes_redundant_tight_vertices() {
        // An edge with equal weights drives both endpoints tight; the
        // prune keeps only one (the heavier-or-lower-id goes first and
        // is dropped while its partner still covers).
        let g = CsrGraph::from_edges(2, &[(0, 1)])
            .unwrap()
            .with_weights(vec![3, 3])
            .unwrap();
        let pd = primal_dual_cover(&g);
        assert_eq!(pd.cover.len(), 1, "one endpoint suffices");
        assert_eq!(pd.weight, 3);
    }

    #[test]
    fn primal_dual_on_unweighted_graphs_is_a_plain_two_approx() {
        for seed in 0..6 {
            let g = gen::gnp(30, 0.15, seed);
            let pd = primal_dual_cover(&g);
            assert!(is_cover(&g, &pd.cover), "seed {seed}");
            assert!(pd.weight <= 2 * pd.dual, "seed {seed}");
            assert!(
                pd.dual >= greedy_maximal_matching(&g).len() as u64,
                "seed {seed}: on unit weights every maximal-matching \
                 edge contributes a unit dual"
            );
        }
    }

    #[test]
    fn handshake_matching_is_maximal_and_bounded_rounds() {
        for seed in 0..6 {
            for compress in [0, 8, usize::MAX] {
                let g = gen::gnp(60, 0.1, seed);
                let rm = handshake_matching(&g, compress);
                let mut matched = [false; 60];
                for &(u, v) in &rm.matching {
                    assert!(u < v, "seed {seed}: pair order");
                    assert!(g.has_edge(u, v), "seed {seed}");
                    assert!(!matched[u as usize] && !matched[v as usize], "seed {seed}");
                    matched[u as usize] = true;
                    matched[v as usize] = true;
                }
                for (u, v) in g.edges() {
                    assert!(
                        matched[u as usize] || matched[v as usize],
                        "seed {seed}: edge {u}-{v} extendable"
                    );
                }
                assert!(rm.rounds as usize <= 60 / 2 + 1, "seed {seed}");
                if compress == usize::MAX && g.num_edges() > 0 {
                    assert!(rm.compressed, "everything compresses at usize::MAX");
                    assert_eq!(rm.rounds, 1);
                }
            }
        }
    }

    #[test]
    fn handshake_compression_changes_rounds_not_maximality() {
        let g = gen::barabasi_albert(200, 2, 7);
        let full = handshake_matching(&g, 0);
        let squeezed = handshake_matching(&g, 64);
        assert!(!full.compressed);
        assert!(squeezed.compressed);
        assert!(squeezed.rounds <= full.rounds);
        // Both are maximal matchings, so both 2x covers of each other.
        assert!(squeezed.matching.len() <= 2 * full.matching.len());
        assert!(full.matching.len() <= 2 * squeezed.matching.len());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert!(greedy_maximal_matching(&g).is_empty());
        assert_eq!(konig_cover(&g).unwrap(), Vec::<u32>::new());
        let e = CsrGraph::from_edges(5, &[]).unwrap();
        assert_eq!(konig_cover(&e).unwrap(), Vec::<u32>::new());
    }
}
