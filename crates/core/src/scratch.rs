//! Per-block scratch: the per-phase delta buffers of the phase-split
//! engine.
//!
//! Node processing is organized as flat passes over the immutable CSR
//! adjacency (see `ARCHITECTURE.md` § "The phase contract"): a
//! *classify* pass gathers candidate vertices into a delta buffer, an
//! *apply* pass walks that buffer serially in ascending id (the §IV-D
//! tie-break), a *bound* pass scans the residual. None of those passes
//! owns hidden mutable state — everything they write between phases
//! lives here, allocated once per block and reused across rounds,
//! tree nodes, and nested sub-searches, so the hot loop stays
//! allocation-free after warm-up.

use parvc_simgpu::exec::ChunkSlots;

/// The reusable per-block buffers of the phase-split passes.
///
/// One instance per block thread (and one per nested sub-search
/// context); never shared across threads, only the per-chunk `slots`
/// interior is touched by pool workers during a dispatched pass.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Classify-phase delta buffer: the vertex ids the flat scan
    /// gathered, consumed in ascending order by the apply phase.
    pub candidates: Vec<u32>,
    /// Per-chunk gather slots for pooled classify passes.
    pub slots: ChunkSlots,
    /// Bound-phase endpoint flags for the residual matching bound.
    pub matched: Vec<bool>,
    /// Domination-rule neighborhood marks.
    pub mark: Vec<bool>,
}

impl BlockScratch {
    /// Fresh, empty scratch; buffers grow to instance size on first
    /// use and are retained afterwards.
    pub fn new() -> Self {
        BlockScratch::default()
    }

    /// `matched`, cleared and sized to `n` without reallocation after
    /// the first call at a given size.
    pub fn matched_for(&mut self, n: usize) -> &mut Vec<bool> {
        self.matched.clear();
        self.matched.resize(n, false);
        &mut self.matched
    }

    /// `mark`, cleared and sized to `n` without reallocation after the
    /// first call at a given size.
    pub fn mark_for(&mut self, n: usize) -> &mut Vec<bool> {
        self.mark.clear();
        self.mark.resize(n, false);
        &mut self.mark
    }
}
