//! The public solver façade.
//!
//! ```
//! use parvc_core::{Algorithm, Solver};
//! use parvc_graph::gen;
//!
//! let g = gen::petersen();
//! let solver = Solver::builder().algorithm(Algorithm::Hybrid).build();
//! let result = solver.solve_mvc(&g);
//! assert_eq!(result.size, 6);
//! ```

use std::time::Instant;

use parvc_graph::CsrGraph;
use parvc_simgpu::counters::LaunchReport;
use parvc_simgpu::occupancy::{select_launch, LaunchRequest};
use parvc_simgpu::{CostModel, DeviceSpec, KernelVariant, LaunchConfig};

use crate::extensions::Extensions;
use crate::greedy::greedy_mvc;
use crate::hybrid::HybridParams;
use crate::shared::{Deadline, RawParallel, RawParallelPvc};
use crate::stats::{MvcResult, PvcResult, SolveStats};
use crate::stackonly::StackOnlyParams;
use crate::{hybrid, sequential, stackonly};

/// Which traversal scheme to run — the three code versions of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Single-CPU-thread branch-and-reduce (the reference baseline).
    Sequential,
    /// Prior work's fixed-depth sub-tree distribution with per-block
    /// local stacks.
    StackOnly {
        /// Depth of the sub-tree roots (`2^start_depth` sub-trees).
        start_depth: u32,
    },
    /// The paper's hybrid local-stack + global-worklist scheme.
    Hybrid,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Sequential => write!(f, "Sequential"),
            Algorithm::StackOnly { start_depth } => write!(f, "StackOnly(d={start_depth})"),
            Algorithm::Hybrid => write!(f, "Hybrid"),
        }
    }
}

/// Builder for [`Solver`].
#[derive(Debug, Clone)]
pub struct SolverBuilder {
    algorithm: Algorithm,
    device: DeviceSpec,
    cost: CostModel,
    hybrid: HybridParams,
    force_variant: Option<KernelVariant>,
    force_block_size: Option<u32>,
    grid_limit: Option<u32>,
    deadline: Option<std::time::Duration>,
    ext: Extensions,
    record_trace: bool,
}

impl Default for SolverBuilder {
    fn default() -> Self {
        SolverBuilder {
            algorithm: Algorithm::Hybrid,
            // 8 SMs keeps a resident grid a sane number of OS threads on
            // laptop-class hosts; use DeviceSpec::v100() to model the
            // paper's full device.
            device: DeviceSpec::scaled(8),
            cost: CostModel::default(),
            hybrid: HybridParams::default(),
            force_variant: None,
            force_block_size: None,
            grid_limit: Some(32),
            deadline: None,
            ext: Extensions::NONE,
            record_trace: false,
        }
    }
}

impl SolverBuilder {
    /// Selects the traversal scheme (default: Hybrid).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Selects the simulated device (default: an 8-SM V100 slice).
    pub fn device(mut self, d: DeviceSpec) -> Self {
        self.device = d;
        self
    }

    /// Overrides the cycle cost model.
    pub fn cost_model(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Global worklist capacity in entries (Hybrid; default 16384).
    pub fn worklist_capacity(mut self, entries: usize) -> Self {
        self.hybrid.worklist_capacity = entries;
        self
    }

    /// Donation threshold as a fraction of capacity (Hybrid;
    /// default 0.75).
    pub fn threshold_frac(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "threshold fraction must be in [0,1]");
        self.hybrid.threshold_frac = frac;
        self
    }

    /// Starved-block poll sleep (Hybrid; default 50µs).
    pub fn poll_sleep(mut self, d: std::time::Duration) -> Self {
        self.hybrid.poll_sleep = d;
        self
    }

    /// Forces the shared- or global-memory kernel variant instead of
    /// the §IV-E automatic choice.
    pub fn kernel_variant(mut self, v: KernelVariant) -> Self {
        self.force_variant = Some(v);
        self
    }

    /// Forces a block size instead of the §IV-E automatic choice.
    pub fn block_size(mut self, threads: u32) -> Self {
        self.force_block_size = Some(threads);
        self
    }

    /// Caps the number of thread blocks (OS threads) per launch.
    /// `None` launches the device's full resident capacity.
    pub fn grid_limit(mut self, limit: Option<u32>) -> Self {
        self.grid_limit = limit;
        self
    }

    /// Wall-clock budget per solve. When it expires the solve returns
    /// best-so-far with [`SolveStats::timed_out`] set — the mechanism
    /// behind the paper's ">2 hrs" table cells.
    pub fn deadline(mut self, limit: Option<std::time::Duration>) -> Self {
        self.deadline = limit;
        self
    }

    /// Records per-charge activity spans during parallel launches for
    /// timeline rendering with [`parvc_simgpu::trace`].
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enables the optional extensions beyond the paper's rules
    /// (see [`Extensions`]); default: all off (paper-faithful).
    pub fn extensions(mut self, ext: Extensions) -> Self {
        self.ext = ext;
        self
    }

    /// Enables the domination reduction rule.
    pub fn domination_rule(mut self, on: bool) -> Self {
        self.ext.domination_rule = on;
        self
    }

    /// Enables maximal-matching lower-bound pruning.
    pub fn matching_lower_bound(mut self, on: bool) -> Self {
        self.ext.matching_lower_bound = on;
        self
    }

    /// Finalizes the solver.
    pub fn build(self) -> Solver {
        Solver { cfg: self }
    }
}

/// A configured vertex-cover solver. See [`Solver::builder`].
pub struct Solver {
    cfg: SolverBuilder,
}

impl Solver {
    /// Starts building a solver.
    pub fn builder() -> SolverBuilder {
        SolverBuilder::default()
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.cfg.algorithm
    }

    /// The launch configuration this solver would use for `g` with the
    /// given search-depth bound (exposed for the evaluation harness).
    pub fn plan_launch(&self, g: &CsrGraph, stack_depth: u32) -> LaunchConfig {
        let mut cfg = select_launch(&self.cfg.device, &self.launch_request(g, stack_depth))
            .unwrap_or_else(|e| panic!("cannot launch on {}: {e}", self.cfg.device.name));
        if let Some(limit) = self.cfg.grid_limit {
            cfg.grid_blocks = cfg.grid_blocks.min(limit.max(1));
        }
        cfg.record_trace = self.cfg.record_trace;
        cfg
    }

    fn launch_request(&self, g: &CsrGraph, stack_depth: u32) -> LaunchRequest {
        LaunchRequest {
            num_vertices: g.num_vertices(),
            stack_depth,
            worklist_entries: match self.cfg.algorithm {
                Algorithm::Hybrid => self.cfg.hybrid.worklist_capacity as u64,
                _ => 0,
            },
            force_variant: self.cfg.force_variant,
            force_block_size: self.cfg.force_block_size,
        }
    }

    /// Solves MINIMUM VERTEX COVER on `g`.
    ///
    /// # Panics
    ///
    /// Panics if the graph's per-block state cannot fit the simulated
    /// device's global memory (the §III-C limit; use a larger
    /// [`DeviceSpec`]).
    pub fn solve_mvc(&self, g: &CsrGraph) -> MvcResult {
        let start = Instant::now();
        let deadline = Deadline::new(self.cfg.deadline);
        let greedy = greedy_mvc(g);
        let greedy_size = greedy.0;

        if g.num_edges() == 0 {
            return MvcResult {
                size: 0,
                cover: Vec::new(),
                stats: self.trivial_stats(start, greedy_size),
            };
        }

        match self.cfg.algorithm {
            Algorithm::Sequential => {
                let out = sequential::solve_mvc(g, &self.cfg.cost, greedy, &deadline, self.cfg.ext);
                let report = LaunchReport::new(&DeviceSpec::scaled(1), vec![out.counters]);
                MvcResult {
                    size: out.best_size,
                    cover: out.best_cover,
                    stats: SolveStats {
                        wall_time: start.elapsed(),
                        tree_nodes: out.tree_nodes,
                        device_cycles: report.device_cycles,
                        launch: None,
                        report,
                        greedy_size,
                        timed_out: deadline.was_hit(),
                    },
                }
            }
            Algorithm::StackOnly { start_depth } => {
                let launch = self.plan_launch(g, greedy_size + 2);
                let raw = stackonly::solve_mvc(
                    g,
                    &self.cfg.device,
                    &launch,
                    &self.cfg.cost,
                    StackOnlyParams { start_depth },
                    greedy,
                    &deadline,
                    self.cfg.ext,
                );
                self.assemble_mvc(start, greedy_size, launch, raw, &deadline)
            }
            Algorithm::Hybrid => {
                let launch = self.plan_launch(g, greedy_size + 2);
                let raw = hybrid::solve_mvc(
                    g,
                    &self.cfg.device,
                    &launch,
                    &self.cfg.cost,
                    &self.cfg.hybrid,
                    greedy,
                    &deadline,
                    self.cfg.ext,
                );
                self.assemble_mvc(start, greedy_size, launch, raw, &deadline)
            }
        }
    }

    /// Solves PARAMETERIZED VERTEX COVER on `g` with parameter `k`.
    ///
    /// # Panics
    ///
    /// Same memory-capacity panic as [`solve_mvc`](Self::solve_mvc).
    pub fn solve_pvc(&self, g: &CsrGraph, k: u32) -> PvcResult {
        let start = Instant::now();
        let deadline = Deadline::new(self.cfg.deadline);

        if g.num_edges() == 0 {
            return PvcResult {
                k,
                cover: Some(Vec::new()),
                stats: self.trivial_stats(start, 0),
            };
        }

        let depth = k.min(g.num_vertices()) + 2;
        match self.cfg.algorithm {
            Algorithm::Sequential => {
                let out = sequential::solve_pvc(g, &self.cfg.cost, k, &deadline, self.cfg.ext);
                let found = out.best_size != u32::MAX;
                let report = LaunchReport::new(&DeviceSpec::scaled(1), vec![out.counters]);
                PvcResult {
                    k,
                    cover: found.then_some(out.best_cover),
                    stats: SolveStats {
                        wall_time: start.elapsed(),
                        tree_nodes: out.tree_nodes,
                        device_cycles: report.device_cycles,
                        launch: None,
                        report,
                        greedy_size: 0,
                        timed_out: deadline.was_hit(),
                    },
                }
            }
            Algorithm::StackOnly { start_depth } => {
                let launch = self.plan_launch(g, depth);
                let raw = stackonly::solve_pvc(
                    g,
                    &self.cfg.device,
                    &launch,
                    &self.cfg.cost,
                    StackOnlyParams { start_depth },
                    k,
                    &deadline,
                    self.cfg.ext,
                );
                self.assemble_pvc(start, k, launch, raw, &deadline)
            }
            Algorithm::Hybrid => {
                let launch = self.plan_launch(g, depth);
                let raw = hybrid::solve_pvc(
                    g,
                    &self.cfg.device,
                    &launch,
                    &self.cfg.cost,
                    &self.cfg.hybrid,
                    k,
                    &deadline,
                    self.cfg.ext,
                );
                self.assemble_pvc(start, k, launch, raw, &deadline)
            }
        }
    }

    fn assemble_mvc(
        &self,
        start: Instant,
        greedy_size: u32,
        launch: LaunchConfig,
        raw: RawParallel,
        deadline: &Deadline,
    ) -> MvcResult {
        let report = LaunchReport::new(&self.cfg.device, raw.blocks);
        MvcResult {
            size: raw.best_size,
            cover: raw.best_cover,
            stats: SolveStats {
                wall_time: start.elapsed(),
                tree_nodes: report.total_tree_nodes,
                device_cycles: report.device_cycles,
                launch: Some(launch),
                report,
                greedy_size,
                timed_out: deadline.was_hit(),
            },
        }
    }

    fn assemble_pvc(
        &self,
        start: Instant,
        k: u32,
        launch: LaunchConfig,
        raw: RawParallelPvc,
        deadline: &Deadline,
    ) -> PvcResult {
        let report = LaunchReport::new(&self.cfg.device, raw.blocks);
        PvcResult {
            k,
            cover: raw.cover,
            stats: SolveStats {
                wall_time: start.elapsed(),
                tree_nodes: report.total_tree_nodes,
                device_cycles: report.device_cycles,
                launch: Some(launch),
                report,
                greedy_size: 0,
                timed_out: deadline.was_hit(),
            },
        }
    }

    fn trivial_stats(&self, start: Instant, greedy_size: u32) -> SolveStats {
        SolveStats {
            wall_time: start.elapsed(),
            tree_nodes: 0,
            device_cycles: 0,
            launch: None,
            report: LaunchReport::new(&DeviceSpec::scaled(1), Vec::new()),
            greedy_size,
            timed_out: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;

    fn solvers() -> Vec<Solver> {
        vec![
            Solver::builder().algorithm(Algorithm::Sequential).build(),
            Solver::builder()
                .algorithm(Algorithm::StackOnly { start_depth: 4 })
                .grid_limit(Some(8))
                .build(),
            Solver::builder().algorithm(Algorithm::Hybrid).grid_limit(Some(8)).build(),
        ]
    }

    #[test]
    fn all_algorithms_agree_with_brute_force() {
        for seed in 0..4 {
            let g = gen::gnp(13, 0.35, seed);
            let (opt, _) = brute_force_mvc(&g);
            for solver in solvers() {
                let r = solver.solve_mvc(&g);
                assert_eq!(r.size, opt, "{} seed {seed}", solver.algorithm());
                assert!(is_vertex_cover(&g, &r.cover), "{} seed {seed}", solver.algorithm());
                assert_eq!(r.cover.len() as u32, r.size);
            }
        }
    }

    #[test]
    fn pvc_three_instances_all_algorithms() {
        let g = gen::gnp(14, 0.3, 77);
        let min = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g)
            .size;
        assert!(min >= 1);
        for solver in solvers() {
            let below = solver.solve_pvc(&g, min - 1);
            assert!(!below.found(), "{}: found below-optimal cover", solver.algorithm());
            for dk in 0..2 {
                let r = solver.solve_pvc(&g, min + dk);
                let cover = r.cover.unwrap_or_else(|| {
                    panic!("{}: no cover at k = min + {dk}", solver.algorithm())
                });
                assert!(cover.len() as u32 <= min + dk);
                assert!(is_vertex_cover(&g, &cover));
            }
        }
    }

    #[test]
    fn edgeless_and_empty_graphs() {
        for solver in solvers() {
            let empty = CsrGraph::from_edges(0, &[]).unwrap();
            assert_eq!(solver.solve_mvc(&empty).size, 0);
            let edgeless = CsrGraph::from_edges(7, &[]).unwrap();
            assert_eq!(solver.solve_mvc(&edgeless).size, 0);
            assert_eq!(solver.solve_pvc(&edgeless, 0).cover, Some(vec![]));
        }
    }

    #[test]
    fn hybrid_on_denser_graph() {
        let g = gen::p_hat_complement(40, 3, 5);
        let seq = Solver::builder().algorithm(Algorithm::Sequential).build().solve_mvc(&g);
        let hyb = Solver::builder().algorithm(Algorithm::Hybrid).grid_limit(Some(8)).build();
        let r = hyb.solve_mvc(&g);
        assert_eq!(r.size, seq.size);
        assert!(is_vertex_cover(&g, &r.cover));
        assert!(r.stats.tree_nodes > 0);
    }

    #[test]
    fn stats_are_populated_for_parallel_runs() {
        let g = gen::gnp(30, 0.25, 9);
        let solver = Solver::builder().algorithm(Algorithm::Hybrid).grid_limit(Some(4)).build();
        let r = solver.solve_mvc(&g);
        assert!(r.stats.launch.is_some());
        assert!(r.stats.device_cycles > 0);
        assert!(r.stats.tree_nodes > 0);
        assert_eq!(r.stats.report.blocks.len(), 4);
        let total: f64 = r.stats.report.activity_breakdown().iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-6, "breakdown sums to {total}");
    }

    #[test]
    fn pvc_k_zero_and_k_huge() {
        let g = gen::cycle(6);
        for solver in solvers() {
            assert!(!solver.solve_pvc(&g, 0).found(), "{}", solver.algorithm());
            let r = solver.solve_pvc(&g, 100);
            assert!(r.found());
            assert!(is_vertex_cover(&g, &r.cover.unwrap()));
        }
    }

    #[test]
    fn threshold_zero_and_one_still_correct() {
        // threshold 0 → never donate (degenerates toward StackOnly-ish
        // single-consumer); threshold 1.0 → donate until full.
        let g = gen::gnp(16, 0.4, 21);
        let (opt, _) = brute_force_mvc(&g);
        for frac in [0.0, 1.0] {
            let solver = Solver::builder()
                .algorithm(Algorithm::Hybrid)
                .threshold_frac(frac)
                .grid_limit(Some(4))
                .build();
            assert_eq!(solver.solve_mvc(&g).size, opt, "frac {frac}");
        }
    }

    #[test]
    fn forced_variants_agree() {
        let g = gen::gnp(15, 0.3, 33);
        let (opt, _) = brute_force_mvc(&g);
        for v in [KernelVariant::SharedMem, KernelVariant::GlobalMem] {
            let solver = Solver::builder()
                .algorithm(Algorithm::Hybrid)
                .kernel_variant(v)
                .grid_limit(Some(4))
                .build();
            assert_eq!(solver.solve_mvc(&g).size, opt, "variant {v}");
        }
    }
}
