//! The public solver façade.
//!
//! ```
//! use parvc_core::{Algorithm, Solver};
//! use parvc_graph::gen;
//!
//! let g = gen::petersen();
//! let solver = Solver::builder().algorithm(Algorithm::Hybrid).build();
//! let result = solver.solve_mvc(&g);
//! assert_eq!(result.size, 6);
//! ```

use std::sync::Arc;
use std::time::Instant;

use parvc_graph::CsrGraph;
use parvc_prep::PrepConfig;
use parvc_simgpu::counters::{BlockCounters, LaunchReport};
use parvc_simgpu::exec::{ExecutorSpec, ParallelExecutor};
use parvc_simgpu::occupancy::{select_launch, LaunchRequest};
use parvc_simgpu::{CostModel, DeviceSpec, KernelVariant, LaunchConfig};

use crate::batch::{BatchFactory, DEFAULT_BATCH};
use crate::compsteal::CompStealFactory;
use parvc_obs::{RecordingSink, Sink, SpanTimer};

use crate::engine::{Engine, EngineObs, PolicyFactory, SearchMode, SearchOutcome};
use crate::extensions::Extensions;
use crate::greedy::{greedy_mvc_bounded, greedy_weighted_mvc_bounded};
use crate::hybrid::{HybridFactory, HybridParams};
use crate::sequential::SequentialFactory;
use crate::shared::Deadline;
use crate::split::SplitParams;
use crate::stackonly::{StackOnlyFactory, StackOnlyParams};
use crate::stats::{MvcResult, PvcResult, SolveStats};
use crate::stealing::{StealFactory, StealParams};

/// Kernel components smaller than this run inline on the calling
/// thread (single block, same scheduling policy): spawning a resident
/// grid of OS threads per 20-vertex component would cost more than the
/// whole sub-search.
const PREP_INLINE_BELOW: u32 = 64;

/// Which scheduling policy drives the engine — the three code versions
/// of §V-A plus the work-stealing extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Single-CPU-thread branch-and-reduce (the reference baseline).
    Sequential,
    /// Prior work's fixed-depth sub-tree distribution with per-block
    /// local stacks.
    StackOnly {
        /// Depth of the sub-tree roots (`2^start_depth` sub-trees).
        start_depth: u32,
    },
    /// The paper's hybrid local-stack + global-worklist scheme.
    Hybrid,
    /// Per-block deques with steal-based balancing (beyond the paper;
    /// see [`crate::stealing`]).
    WorkStealing,
    /// Hybrid's worklist with donations amortized in batches of `k`
    /// children per queue negotiation (see [`crate::batch`]) — the
    /// ROADMAP's *batched sub-tree hand-off* follow-on.
    Batched,
    /// Work stealing where adopted component-sum nodes donate **whole
    /// components** to the steal pool — the natural work unit of
    /// arXiv 2512.18334 (see [`crate::compsteal`]). Implies in-search
    /// component branching: [`SolverBuilder::build`] enables it with
    /// default [`SplitParams`] unless configured explicitly.
    ComponentSteal,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Sequential => write!(f, "Sequential"),
            Algorithm::StackOnly { start_depth } => write!(f, "StackOnly(d={start_depth})"),
            Algorithm::Hybrid => write!(f, "Hybrid"),
            Algorithm::WorkStealing => write!(f, "WorkStealing"),
            Algorithm::Batched => write!(f, "Batched"),
            Algorithm::ComponentSteal => write!(f, "ComponentSteal"),
        }
    }
}

/// Builder for [`Solver`].
///
/// Every knob defaults to the paper-faithful configuration; the
/// extensions opt in per solve. The full pipeline — kernelization in
/// front, work stealing with whole-component donation, in-search
/// splitting, a wall-clock budget — composes like this:
///
/// ```
/// use std::time::Duration;
/// use parvc_core::{Algorithm, PrepConfig, Solver, is_vertex_cover};
/// use parvc_graph::gen;
///
/// let g = gen::sparse_components(120, 12, 0.5, 3);
/// let solver = Solver::builder()
///     .algorithm(Algorithm::ComponentSteal)   // implies component branching
///     .preprocess(PrepConfig::default())      // kernelize + decompose up front
///     .deadline(Some(Duration::from_secs(5))) // ">2 hrs" cells, in miniature
///     .grid_limit(Some(4))                    // cap the resident grid
///     .build();
///
/// let r = solver.solve_mvc(&g);
/// assert!(is_vertex_cover(&g, &r.cover));
/// assert!(!r.stats.timed_out, "this instance finishes well within budget");
/// assert!(r.stats.prep.is_some(), "kernelization stats are reported");
/// ```
#[derive(Debug, Clone)]
pub struct SolverBuilder {
    algorithm: Algorithm,
    device: DeviceSpec,
    cost: CostModel,
    hybrid: HybridParams,
    steal: StealParams,
    force_variant: Option<KernelVariant>,
    force_block_size: Option<u32>,
    grid_limit: Option<u32>,
    deadline: Option<std::time::Duration>,
    ext: Extensions,
    record_trace: bool,
    prep: Option<PrepConfig>,
    pub(crate) weighted: bool,
    batch_size: usize,
    executor: ExecutorSpec,
    telemetry: Option<parvc_obs::TelemetryConfig>,
    progress: Option<std::time::Duration>,
    /// Whether the caller explicitly configured component branching
    /// (so `build()` can tell "disabled on purpose" from "never set"
    /// when ComponentSteal implies a default).
    split_configured: bool,
}

impl Default for SolverBuilder {
    fn default() -> Self {
        SolverBuilder {
            algorithm: Algorithm::Hybrid,
            // 8 SMs keeps a resident grid a sane number of OS threads on
            // laptop-class hosts; use DeviceSpec::v100() to model the
            // paper's full device.
            device: DeviceSpec::scaled(8),
            cost: CostModel::default(),
            hybrid: HybridParams::default(),
            steal: StealParams::default(),
            force_variant: None,
            force_block_size: None,
            grid_limit: Some(32),
            deadline: None,
            ext: Extensions::NONE,
            record_trace: false,
            prep: None,
            weighted: false,
            batch_size: DEFAULT_BATCH,
            executor: ExecutorSpec::default(),
            telemetry: None,
            progress: None,
            split_configured: false,
        }
    }
}

impl SolverBuilder {
    /// Selects the scheduling policy (default: Hybrid).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Selects the simulated device (default: an 8-SM V100 slice).
    pub fn device(mut self, d: DeviceSpec) -> Self {
        self.device = d;
        self
    }

    /// Overrides the cycle cost model.
    pub fn cost_model(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Global worklist capacity in entries (Hybrid; default 16384).
    pub fn worklist_capacity(mut self, entries: usize) -> Self {
        self.hybrid.worklist_capacity = entries;
        self
    }

    /// Donation threshold as a fraction of capacity (Hybrid;
    /// default 0.75).
    pub fn threshold_frac(mut self, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "threshold fraction must be in [0,1]"
        );
        self.hybrid.threshold_frac = frac;
        self
    }

    /// Starved-block poll sleep (Hybrid and WorkStealing; default
    /// 50µs).
    pub fn poll_sleep(mut self, d: std::time::Duration) -> Self {
        self.hybrid.poll_sleep = d;
        self.steal.poll_sleep = d;
        self
    }

    /// Forces the shared- or global-memory kernel variant instead of
    /// the §IV-E automatic choice.
    pub fn kernel_variant(mut self, v: KernelVariant) -> Self {
        self.force_variant = Some(v);
        self
    }

    /// Forces a block size instead of the §IV-E automatic choice.
    pub fn block_size(mut self, threads: u32) -> Self {
        self.force_block_size = Some(threads);
        self
    }

    /// Caps the number of thread blocks (OS threads) per launch.
    /// `None` launches the device's full resident capacity.
    pub fn grid_limit(mut self, limit: Option<u32>) -> Self {
        self.grid_limit = limit;
        self
    }

    /// Wall-clock budget per solve. When it expires the solve returns
    /// best-so-far with [`SolveStats::timed_out`] set — the mechanism
    /// behind the paper's ">2 hrs" table cells.
    pub fn deadline(mut self, limit: Option<std::time::Duration>) -> Self {
        self.deadline = limit;
        self
    }

    /// Records per-charge activity spans during parallel launches for
    /// timeline rendering with [`parvc_simgpu::trace`].
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enables the optional extensions beyond the paper's rules
    /// (see [`Extensions`]); default: all off (paper-faithful).
    ///
    /// Component branching configured earlier on this builder (via
    /// [`component_branching`](Self::component_branching)) survives
    /// unless `ext` sets its own — the two toggles compose in either
    /// order.
    pub fn extensions(mut self, ext: Extensions) -> Self {
        let keep_split = self.ext.component_branching;
        self.ext = ext;
        if self.ext.component_branching.is_none() {
            self.ext.component_branching = keep_split;
        }
        self
    }

    /// Runs the `parvc-prep` kernelization + component-decomposition
    /// pipeline before every solve: the instance is shrunk once, the
    /// residual split into connected components, and each component
    /// scheduled as an independent [`Engine::solve`] sub-search under
    /// the configured policy and the shared wall-clock budget. The
    /// per-component results are lifted back to a cover of the
    /// original graph (optimal when every sub-search finished).
    ///
    /// Default: off (paper-faithful per-node reduction only).
    pub fn preprocess(mut self, cfg: PrepConfig) -> Self {
        self.prep = Some(cfg);
        self
    }

    /// Solves the **vertex-weighted** MVC variant: the objective
    /// becomes the total weight of the cover under the graph's weight
    /// channel ([`parvc_graph::CsrGraph::with_weights`]), the engine's
    /// bound arithmetic and reduction thresholds run in weight units,
    /// and [`MvcResult::weight`] carries the minimized objective.
    /// Every scheduling policy works unchanged; on a graph without
    /// weights (all weights 1) the result matches the cardinality
    /// solve exactly. When preprocessing is configured, only
    /// weight-sound kernelization rules run (see
    /// [`PrepConfig::weighted`]).
    ///
    /// ```
    /// use parvc_core::{Algorithm, Solver, is_vertex_cover};
    /// use parvc_graph::gen;
    ///
    /// // A star whose hub costs more than all five leaves together:
    /// // the cardinality optimum {hub} is the weighted pessimum.
    /// let g = gen::star(6)
    ///     .with_weights(vec![100, 1, 1, 1, 1, 1])
    ///     .unwrap();
    ///
    /// let weighted = Solver::builder().weighted().build().solve_mvc(&g);
    /// assert_eq!(weighted.weight, 5); // the five leaves
    /// assert_eq!(weighted.size, 5);
    /// assert!(is_vertex_cover(&g, &weighted.cover));
    ///
    /// let cardinality = Solver::builder().build().solve_mvc(&g);
    /// assert_eq!(cardinality.size, 1); // the hub
    /// assert_eq!(cardinality.weight, 100);
    /// ```
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Selects how each block's intra-block flat passes execute
    /// (default: [`ExecutorSpec::Serial`], inline on the block's own
    /// thread). [`ExecutorSpec::Pooled`] runs the phase-split kernels —
    /// the reduce-fixpoint degree scan, the LP-bound BFS layers, the
    /// connectivity diff scan — chunked across a shared worker pool.
    /// Results, tree shape, and model-cycle counters are identical
    /// under every executor (see `parvc_simgpu::exec`); only wall-clock
    /// changes.
    pub fn executor(mut self, spec: ExecutorSpec) -> Self {
        self.executor = spec;
        self
    }

    /// Records structured telemetry on every solve: wall-clock spans
    /// across prep → engine → split → executor, the metrics registry,
    /// and (when [`TelemetryConfig::model_cycles`] is set, the
    /// default) the per-block model-cycle span log bridged onto a
    /// synthetic trace track. The snapshot lands in
    /// [`SolveStats::telemetry`]; export it as Chrome trace-event JSON
    /// or a flat metrics table. Observation only — results, tree
    /// shape, and counters are identical with telemetry on or off.
    ///
    /// ```
    /// use parvc_core::{Solver, TelemetryConfig};
    /// use parvc_graph::gen;
    ///
    /// let solver = Solver::builder()
    ///     .telemetry(TelemetryConfig::default())
    ///     .build();
    /// let r = solver.solve_mvc(&gen::petersen());
    /// let snap = r.stats.telemetry.expect("telemetry was on");
    /// assert!(snap.span_categories().contains("engine"));
    /// let trace = snap.chrome_trace(); // open in Perfetto
    /// assert!(trace.starts_with("{\"traceEvents\":["));
    /// ```
    ///
    /// [`TelemetryConfig`]: parvc_obs::TelemetryConfig
    /// [`TelemetryConfig::model_cycles`]: parvc_obs::TelemetryConfig::model_cycles
    pub fn telemetry(mut self, cfg: parvc_obs::TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Prints a progress heartbeat to stderr every `interval` during
    /// solves: best-so-far bound, tree nodes visited, and nodes/sec.
    /// Clock checks are strided exactly like the deadline machinery's,
    /// so the heartbeat does not perturb the search.
    pub fn progress(mut self, interval: std::time::Duration) -> Self {
        self.progress = Some(interval);
        self
    }

    /// Children handed off per queue negotiation by the
    /// [`Algorithm::Batched`] policy (default 8; clamped to >= 1).
    pub fn batch_size(mut self, k: usize) -> Self {
        self.batch_size = k.max(1);
        self
    }

    /// Selects the initial-bound algorithm (default
    /// [`SeedStrategy::Greedy`](crate::approx::SeedStrategy::Greedy)):
    /// the reduction-driven greedy seeds, or
    /// [`SeedStrategy::Approx`](crate::approx::SeedStrategy::Approx) —
    /// the linear-time 2-approximation
    /// tier ([`crate::approx`]), whose covers come with a matching /
    /// primal-dual lower-bound certificate. The seed only moves the
    /// search's starting upper bound; the optimum is unaffected.
    pub fn seed(mut self, strategy: crate::approx::SeedStrategy) -> Self {
        self.ext.seed_strategy = strategy;
        self
    }

    /// Enables the domination reduction rule.
    pub fn domination_rule(mut self, on: bool) -> Self {
        self.ext.domination_rule = on;
        self
    }

    /// Enables maximal-matching lower-bound pruning.
    pub fn matching_lower_bound(mut self, on: bool) -> Self {
        self.ext.matching_lower_bound = on;
        self
    }

    /// Enables in-search component branching with default
    /// [`SplitParams`]: whenever a tree node's reduction fixpoint
    /// disconnects the residual graph, the node is split into
    /// independent per-component sub-searches whose optima sum (see
    /// [`crate::split`]). Works under every scheduling policy; the
    /// [`Algorithm::ComponentSteal`] policy additionally donates the
    /// components to its steal pool.
    ///
    /// Default: off (paper-faithful single-residual traversal).
    pub fn component_branching(mut self, on: bool) -> Self {
        self.ext.component_branching = on.then(SplitParams::default);
        self.split_configured = true;
        self
    }

    /// Like [`component_branching`](Self::component_branching), with
    /// explicit trigger/recursion parameters.
    pub fn component_branching_params(mut self, params: SplitParams) -> Self {
        self.ext.component_branching = Some(params);
        self.split_configured = true;
        self
    }

    /// Finalizes the solver.
    pub fn build(mut self) -> Solver {
        // ComponentSteal without the split hook would never see a
        // component to donate — it implies the default parameters,
        // unless the caller explicitly turned splitting off (then it
        // degrades to plain work stealing).
        if self.algorithm == Algorithm::ComponentSteal
            && self.ext.component_branching.is_none()
            && !self.split_configured
        {
            self.ext.component_branching = Some(SplitParams::default());
        }
        // The synthetic model-cycle trace track is built from the
        // per-block span logs, so asking for it implies recording them.
        if let Some(t) = &self.telemetry {
            self.record_trace |= t.model_cycles;
        }
        Solver {
            exec: self.executor.build(),
            cfg: self,
        }
    }
}

/// A configured vertex-cover solver. See [`Solver::builder`].
pub struct Solver {
    pub(crate) cfg: SolverBuilder,
    /// The built intra-block executor (shared by every launch of this
    /// solver; the pooled backend keeps its workers warm across
    /// solves).
    exec: Arc<dyn ParallelExecutor>,
}

impl Solver {
    /// Starts building a solver.
    pub fn builder() -> SolverBuilder {
        SolverBuilder::default()
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.cfg.algorithm
    }

    /// A solver with this solver's exact configuration but a different
    /// wall-clock budget, **sharing the built executor** (the pooled
    /// backend's warm workers are reused, not respawned). This is the
    /// per-request deadline hook the serving tier rides: one solver is
    /// configured at startup and each request that carries its own
    /// budget derives a view instead of rebuilding.
    pub fn with_deadline(&self, limit: Option<std::time::Duration>) -> Solver {
        let mut cfg = self.cfg.clone();
        cfg.deadline = limit;
        Solver {
            cfg,
            exec: Arc::clone(&self.exec),
        }
    }

    /// The launch configuration this solver would use for `g` with the
    /// given search-depth bound (exposed for the evaluation harness).
    pub fn plan_launch(&self, g: &CsrGraph, stack_depth: u32) -> LaunchConfig {
        self.try_plan_launch(g, stack_depth)
            .unwrap_or_else(|e| panic!("cannot launch on {}: {e}", self.cfg.device.name))
    }

    /// [`plan_launch`](Self::plan_launch) without the panic: `Err`
    /// when the graph's per-block state cannot fit the device (the
    /// §III-C limit the engine degrades to inline execution on).
    fn try_plan_launch(
        &self,
        g: &CsrGraph,
        stack_depth: u32,
    ) -> Result<LaunchConfig, parvc_simgpu::occupancy::LaunchError> {
        let mut cfg = select_launch(&self.cfg.device, &self.launch_request(g, stack_depth))?;
        if let Some(limit) = self.cfg.grid_limit {
            cfg.grid_blocks = cfg.grid_blocks.min(limit.max(1));
        }
        cfg.record_trace = self.cfg.record_trace;
        Ok(cfg)
    }

    fn launch_request(&self, g: &CsrGraph, stack_depth: u32) -> LaunchRequest {
        LaunchRequest {
            num_vertices: g.num_vertices(),
            stack_depth,
            worklist_entries: match self.cfg.algorithm {
                Algorithm::Hybrid | Algorithm::Batched => self.cfg.hybrid.worklist_capacity as u64,
                _ => 0,
            },
            force_variant: self.cfg.force_variant,
            force_block_size: self.cfg.force_block_size,
        }
    }

    /// Solves MINIMUM VERTEX COVER on `g` — minimum cardinality by
    /// default, minimum *weight* when the solver was built with
    /// [`SolverBuilder::weighted`].
    ///
    /// When the graph's per-block state cannot fit the simulated
    /// device's global memory (the §III-C limit) no resident grid can
    /// be launched and the solve degrades to single-block inline
    /// execution — enable [`SolverBuilder::preprocess`] (or use a
    /// larger [`DeviceSpec`]) for instances of that scale.
    pub fn solve_mvc(&self, g: &CsrGraph) -> MvcResult {
        let (sink, heartbeat) = self.solve_observers();
        let obs = SolveObs::new(sink.as_ref(), heartbeat.as_ref());
        let mut r = self.solve_mvc_with(g, None, obs);
        self.finish_telemetry(sink, &mut r.stats);
        r
    }

    /// [`solve_mvc`](Self::solve_mvc) with caller-supplied observers
    /// and an optional **warm incumbent**: a valid cover of `g` (the
    /// incremental re-solve driver's patched previous cover) that
    /// replaces the greedy seed when its objective is better, so the
    /// search starts with the tight upper bound churn usually leaves
    /// intact. The kernelized path ignores the seed (prep relabels the
    /// instance under the warm cover's feet); callers that need the
    /// guarantee take the min with their warm cover afterwards.
    /// [`SolveStats::greedy_size`] always reports the greedy's own
    /// size, so the stat stays comparable across warm and cold solves.
    pub(crate) fn solve_mvc_with(
        &self,
        g: &CsrGraph,
        warm: Option<&[u32]>,
        obs: SolveObs<'_>,
    ) -> MvcResult {
        let start = Instant::now();
        if g.num_edges() == 0 {
            return MvcResult {
                size: 0,
                weight: 0,
                cover: Vec::new(),
                stats: self.trivial_stats(start, 0),
            };
        }
        let deadline = Deadline::new(self.cfg.deadline);

        if let Some(prep_cfg) = &self.cfg.prep {
            return self.solve_mvc_prep(g, prep_cfg, start, &deadline, obs);
        }

        if self.cfg.weighted {
            let mut greedy = self.seed_weighted(g, &deadline);
            let greedy_size = greedy.1.len() as u32;
            if let Some(seed) = warm {
                let seed_weight = g.cover_weight(seed);
                if seed_weight < greedy.0 {
                    greedy = (seed_weight, seed.to_vec());
                }
            }
            let (outcome, launch) = self.run_engine(
                g,
                SearchMode::WeightedMvc { initial: greedy },
                &deadline,
                false,
                obs,
            );
            let raw = match outcome {
                SearchOutcome::Weighted(raw) => raw,
                _ => unreachable!("weighted mode returns a weighted outcome"),
            };
            let report = self.launch_report(launch.is_some(), raw.blocks);
            return MvcResult {
                size: raw.best_cover.len() as u32,
                weight: raw.best_weight,
                cover: raw.best_cover,
                stats: SolveStats {
                    wall_time: start.elapsed(),
                    tree_nodes: report.total_tree_nodes,
                    device_cycles: report.device_cycles,
                    launch,
                    report,
                    greedy_size,
                    timed_out: deadline.was_hit(),
                    prep: None,
                    telemetry: None,
                },
            };
        }

        let mut greedy = self.seed_unweighted(g, &deadline);
        let greedy_size = greedy.0;
        if let Some(seed) = warm {
            if (seed.len() as u32) < greedy.0 {
                greedy = (seed.len() as u32, seed.to_vec());
            }
        }
        let (outcome, launch) = self.run_engine(
            g,
            SearchMode::Mvc { initial: greedy },
            &deadline,
            false,
            obs,
        );
        let raw = match outcome {
            SearchOutcome::Mvc(raw) => raw,
            _ => unreachable!("MVC mode returns an MVC outcome"),
        };
        let report = self.launch_report(launch.is_some(), raw.blocks);
        MvcResult {
            size: raw.best_size,
            weight: g.cover_weight(&raw.best_cover),
            cover: raw.best_cover,
            stats: SolveStats {
                wall_time: start.elapsed(),
                tree_nodes: report.total_tree_nodes,
                device_cycles: report.device_cycles,
                launch,
                report,
                greedy_size,
                timed_out: deadline.was_hit(),
                prep: None,
                telemetry: None,
            },
        }
    }

    /// Solves PARAMETERIZED VERTEX COVER on `g` with parameter `k`.
    /// PVC is a cardinality question ("is there a cover of ≤ k
    /// *vertices*?"), so [`SolverBuilder::weighted`] does not change
    /// it.
    ///
    /// Degrades to inline execution on over-sized graphs exactly like
    /// [`solve_mvc`](Self::solve_mvc).
    pub fn solve_pvc(&self, g: &CsrGraph, k: u32) -> PvcResult {
        let (sink, heartbeat) = self.solve_observers();
        let obs = SolveObs::new(sink.as_ref(), heartbeat.as_ref());
        let mut r = self.solve_pvc_with(g, k, obs);
        self.finish_telemetry(sink, &mut r.stats);
        r
    }

    fn solve_pvc_with(&self, g: &CsrGraph, k: u32, obs: SolveObs<'_>) -> PvcResult {
        let start = Instant::now();

        if g.num_edges() == 0 {
            return PvcResult {
                k,
                cover: Some(Vec::new()),
                stats: self.trivial_stats(start, 0),
            };
        }
        let deadline = Deadline::new(self.cfg.deadline);

        if let Some(prep_cfg) = &self.cfg.prep {
            return self.solve_pvc_prep(g, prep_cfg, k, start, &deadline, obs);
        }

        let (outcome, launch) = self.run_engine(g, SearchMode::Pvc { k }, &deadline, false, obs);
        let raw = match outcome {
            SearchOutcome::Pvc(raw) => raw,
            _ => unreachable!("PVC mode returns a PVC outcome"),
        };
        let report = self.launch_report(launch.is_some(), raw.blocks);
        PvcResult {
            k,
            cover: raw.cover,
            stats: SolveStats {
                wall_time: start.elapsed(),
                tree_nodes: report.total_tree_nodes,
                device_cycles: report.device_cycles,
                launch,
                report,
                greedy_size: 0,
                timed_out: deadline.was_hit(),
                prep: None,
                telemetry: None,
            },
        }
    }

    /// MVC through the kernelization pipeline: preprocess once, solve
    /// each kernel component as an independent engine sub-search under
    /// the shared deadline, and lift the sub-covers back to the
    /// original graph. In weighted mode the pipeline runs with
    /// [`PrepConfig::weighted`] forced on, so only weight-sound rules
    /// fire, and each component sub-search minimizes weight.
    fn solve_mvc_prep(
        &self,
        g: &CsrGraph,
        prep_cfg: &PrepConfig,
        start: Instant,
        deadline: &Deadline,
        obs: SolveObs<'_>,
    ) -> MvcResult {
        let mut prep_cfg = prep_cfg.clone();
        prep_cfg.weighted |= self.cfg.weighted;
        let kernel = parvc_prep::preprocess_traced(g, &prep_cfg, obs.sink);
        let (sub_covers, agg) = self.solve_components(&kernel, deadline, self.cfg.weighted, obs);
        let cover = kernel.lift(&sub_covers);
        let report = self.launch_report(agg.launch.is_some(), agg.blocks);
        MvcResult {
            size: cover.len() as u32,
            weight: g.cover_weight(&cover),
            cover,
            stats: SolveStats {
                wall_time: start.elapsed(),
                tree_nodes: report.total_tree_nodes,
                device_cycles: report.device_cycles,
                launch: agg.launch,
                report,
                greedy_size: agg.greedy_total,
                timed_out: deadline.was_hit(),
                prep: Some(kernel.stats),
                telemetry: None,
            },
        }
    }

    /// PVC through the kernelization pipeline. The rules preserve the
    /// optimum, so `forced > k` is a conclusive *no*; otherwise the
    /// component optima (each a per-component MVC sub-search) are
    /// summed against the remaining budget.
    fn solve_pvc_prep(
        &self,
        g: &CsrGraph,
        prep_cfg: &PrepConfig,
        k: u32,
        start: Instant,
        deadline: &Deadline,
        obs: SolveObs<'_>,
    ) -> PvcResult {
        let kernel = parvc_prep::preprocess_traced(g, prep_cfg, obs.sink);
        let forced = kernel.trace.forced.len() as u32;
        if forced > k {
            let mut stats = self.trivial_stats(start, forced);
            stats.prep = Some(kernel.stats);
            return PvcResult {
                k,
                cover: None,
                stats,
            };
        }
        let (sub_covers, agg) = self.solve_components(&kernel, deadline, false, obs);
        let total = forced as u64 + sub_covers.iter().map(|c| c.len() as u64).sum::<u64>();
        let cover = (total <= k as u64).then(|| kernel.lift(&sub_covers));
        let report = self.launch_report(agg.launch.is_some(), agg.blocks);
        PvcResult {
            k,
            cover,
            stats: SolveStats {
                wall_time: start.elapsed(),
                tree_nodes: report.total_tree_nodes,
                device_cycles: report.device_cycles,
                launch: agg.launch,
                report,
                greedy_size: agg.greedy_total,
                timed_out: deadline.was_hit(),
                prep: Some(kernel.stats),
                telemetry: None,
            },
        }
    }

    /// The launch seed under the configured
    /// [`SeedStrategy`](crate::approx::SeedStrategy): `(size, cover)`
    /// in cardinality mode. The approx tier ignores the deadline — it
    /// is `O(|V| + |E|)` per round with a bounded round count, the
    /// very property that makes it the massive-instance seed. It still
    /// runs the greedy sweep and keeps the better of the two covers:
    /// the certificate caps the result at twice the optimum, and
    /// taking a minimum only tightens it, so the approx strategy never
    /// starts from a worse incumbent than greedy would.
    fn seed_unweighted(&self, g: &CsrGraph, deadline: &Deadline) -> (u32, Vec<u32>) {
        match self.cfg.ext.seed_strategy {
            crate::approx::SeedStrategy::Greedy => greedy_mvc_bounded(g, deadline),
            crate::approx::SeedStrategy::Approx => {
                let mut counters = parvc_simgpu::counters::BlockCounters::new(u32::MAX);
                let a = crate::approx::matching_cover_exec(g, &*self.exec, &mut counters);
                let (gsize, gcover) = greedy_mvc_bounded(g, deadline);
                if u64::from(gsize) < a.cost {
                    (gsize, gcover)
                } else {
                    (a.cost as u32, a.cover)
                }
            }
        }
    }

    /// Weighted twin of [`seed_unweighted`](Self::seed_unweighted):
    /// `(weight, cover)`, with the approx tier running the primal-dual
    /// pass (again keeping the greedy cover when it happens to be
    /// lighter — the 2× band is a ceiling, not a target).
    fn seed_weighted(&self, g: &CsrGraph, deadline: &Deadline) -> (u64, Vec<u32>) {
        match self.cfg.ext.seed_strategy {
            crate::approx::SeedStrategy::Greedy => greedy_weighted_mvc_bounded(g, deadline),
            crate::approx::SeedStrategy::Approx => {
                let mut counters = parvc_simgpu::counters::BlockCounters::new(u32::MAX);
                let a = crate::approx::weighted_approx_cover(g, &mut counters);
                let (gweight, gcover) = greedy_weighted_mvc_bounded(g, deadline);
                if gweight < a.cost {
                    (gweight, gcover)
                } else {
                    (a.cost, a.cover)
                }
            }
        }
    }

    /// Solves every kernel component's MVC under the shared deadline —
    /// the budget coordination that makes the per-component bests sum
    /// into a global bound. Components below [`PREP_INLINE_BELOW`]
    /// vertices run inline (single block, same policy); larger ones get
    /// a full resident-grid launch.
    fn solve_components(
        &self,
        kernel: &parvc_prep::Kernel,
        deadline: &Deadline,
        weighted: bool,
        obs: SolveObs<'_>,
    ) -> (Vec<Vec<u32>>, ComponentAggregate) {
        let mut agg = ComponentAggregate {
            blocks: Vec::new(),
            launch: None,
            greedy_total: kernel.trace.forced.len() as u32,
        };
        let mut sub_covers = Vec::with_capacity(kernel.components.len());
        for (idx, inst) in kernel.components.iter().enumerate() {
            if inst.graph.num_edges() == 0 {
                sub_covers.push(Vec::new());
                continue;
            }
            let t_comp = SpanTimer::start(obs.sink);
            obs.sink.counter("component.sub_searches", 1);
            let inline = inst.graph.num_vertices() < PREP_INLINE_BELOW;
            // The component graphs carry the original's vertex weights
            // through the prep relabeling, so a weighted sub-search
            // minimizes exactly the lifted objective.
            let (outcome, launch, best_cover);
            if weighted {
                let greedy = self.seed_weighted(&inst.graph, deadline);
                agg.greedy_total += greedy.1.len() as u32;
                let mode = SearchMode::WeightedMvc { initial: greedy };
                (outcome, launch) = self.run_engine(&inst.graph, mode, deadline, inline, obs);
                best_cover = match outcome {
                    SearchOutcome::Weighted(raw) => {
                        agg.blocks.extend(raw.blocks);
                        raw.best_cover
                    }
                    _ => unreachable!("weighted mode returns a weighted outcome"),
                };
            } else {
                let greedy = self.seed_unweighted(&inst.graph, deadline);
                agg.greedy_total += greedy.0;
                let mode = SearchMode::Mvc { initial: greedy };
                (outcome, launch) = self.run_engine(&inst.graph, mode, deadline, inline, obs);
                best_cover = match outcome {
                    SearchOutcome::Mvc(raw) => {
                        agg.blocks.extend(raw.blocks);
                        raw.best_cover
                    }
                    _ => unreachable!("MVC mode returns an MVC outcome"),
                };
            }
            if agg.launch.is_none() {
                agg.launch = launch;
            }
            sub_covers.push(best_cover);
            t_comp.finish(obs.sink, "component", "sub-search", 0, idx as u64);
        }
        (sub_covers, agg)
    }

    /// The one parameterized dispatch: builds the policy factory for
    /// the configured [`Algorithm`] and hands `mode` to the engine.
    /// `inline` forces single-block execution on the calling thread
    /// (used for small kernel components); Sequential always runs
    /// inline.
    fn run_engine(
        &self,
        g: &CsrGraph,
        mode: SearchMode,
        deadline: &Deadline,
        inline: bool,
        obs: SolveObs<'_>,
    ) -> (SearchOutcome, Option<LaunchConfig>) {
        let depth_bound = mode.depth_bound(g);
        let launch = match self.cfg.algorithm {
            Algorithm::Sequential => None,
            _ if inline => None,
            // §III-C: when the per-block state cannot fit the device's
            // memory, a resident grid cannot be planned — degrade to
            // single-block inline execution instead of failing the
            // whole solve (the occupancy-aware memory planner is
            // follow-on work; the kernelized path avoids this entirely
            // by shrinking the instance first). The degrade is counted
            // so operators see it: the serving tier surfaces
            // `engine.oversize_inline` in `STATS`, and the gauge keeps
            // the size of the last offender visible in metrics dumps.
            _ => match self.try_plan_launch(g, depth_bound as u32) {
                Ok(cfg) => Some(cfg),
                Err(_) => {
                    obs.sink.counter("engine.oversize_inline", 1);
                    obs.sink
                        .gauge("engine.oversize_last_vertices", u64::from(g.num_vertices()));
                    None
                }
            },
        };
        let factory: Box<dyn PolicyFactory> = match self.cfg.algorithm {
            Algorithm::Sequential => Box::new(SequentialFactory::new()),
            Algorithm::StackOnly { start_depth } => {
                Box::new(StackOnlyFactory::new(StackOnlyParams { start_depth }))
            }
            Algorithm::Hybrid => Box::new(HybridFactory::new(&self.cfg.hybrid)),
            Algorithm::Batched => {
                Box::new(BatchFactory::new(&self.cfg.hybrid, self.cfg.batch_size))
            }
            Algorithm::WorkStealing => {
                let workers = launch.as_ref().map_or(1, |l| l.grid_blocks);
                Box::new(StealFactory::new(
                    workers as usize,
                    depth_bound,
                    &self.cfg.steal,
                ))
            }
            Algorithm::ComponentSteal => {
                let workers = launch.as_ref().map_or(1, |l| l.grid_blocks);
                Box::new(CompStealFactory::new(
                    workers as usize,
                    depth_bound,
                    &self.cfg.steal,
                ))
            }
        };
        let engine = Engine {
            graph: g,
            device: &self.cfg.device,
            config: launch.as_ref(),
            cost: &self.cfg.cost,
            deadline,
            ext: self.cfg.ext,
            exec: &*self.exec,
            obs: EngineObs {
                sink: obs.sink,
                progress: obs.progress,
                model_trace: self.cfg.record_trace,
            },
        };
        let outcome = engine.solve(factory.as_ref(), mode);
        (outcome, launch)
    }

    fn launch_report(
        &self,
        parallel: bool,
        blocks: Vec<parvc_simgpu::counters::BlockCounters>,
    ) -> LaunchReport {
        if parallel {
            LaunchReport::new(&self.cfg.device, blocks)
        } else {
            LaunchReport::new(&DeviceSpec::scaled(1), blocks)
        }
    }

    pub(crate) fn trivial_stats(&self, start: Instant, greedy_size: u32) -> SolveStats {
        SolveStats {
            wall_time: start.elapsed(),
            tree_nodes: 0,
            device_cycles: 0,
            launch: None,
            report: LaunchReport::new(&DeviceSpec::scaled(1), Vec::new()),
            greedy_size,
            timed_out: false,
            prep: None,
            telemetry: None,
        }
    }

    /// Builds the per-solve observers from the builder configuration:
    /// a [`RecordingSink`] when telemetry was requested, a
    /// [`Heartbeat`](crate::progress::Heartbeat) when progress
    /// reporting was. Both `None` on the default build, keeping the
    /// hot path on the no-op sink.
    pub(crate) fn solve_observers(
        &self,
    ) -> (Option<RecordingSink>, Option<crate::progress::Heartbeat>) {
        (
            self.cfg.telemetry.as_ref().map(RecordingSink::new),
            self.cfg.progress.map(crate::progress::Heartbeat::new),
        )
    }

    /// Drains the recording sink (if any) into `stats.telemetry`,
    /// bridging the per-block model-cycle span logs onto the synthetic
    /// model lane.
    pub(crate) fn finish_telemetry(&self, sink: Option<RecordingSink>, stats: &mut SolveStats) {
        let Some(sink) = sink else { return };
        let mut snap = sink.into_snapshot();
        if self.cfg.telemetry.as_ref().is_some_and(|t| t.model_cycles) {
            snap.push_spans(parvc_simgpu::obs::model_cycle_records(&stats.report.blocks));
            let dropped: u64 = stats.report.blocks.iter().map(|b| b.trace_dropped).sum();
            if dropped > 0 {
                snap.gauges.insert("model.spans_dropped", dropped);
            }
        }
        stats.telemetry = Some(snap);
    }
}

/// The per-solve observation context threaded from the public entry
/// points down to the engine: a borrowed sink (the no-op static when
/// telemetry is off) plus the optional progress heartbeat.
#[derive(Clone, Copy)]
pub(crate) struct SolveObs<'a> {
    pub(crate) sink: &'a dyn Sink,
    pub(crate) progress: Option<&'a crate::progress::Heartbeat>,
}

impl<'a> SolveObs<'a> {
    pub(crate) fn new(
        sink: Option<&'a RecordingSink>,
        progress: Option<&'a crate::progress::Heartbeat>,
    ) -> Self {
        SolveObs {
            sink: sink.map_or(&parvc_obs::NOOP as &dyn Sink, |s| s as &dyn Sink),
            progress,
        }
    }
}

/// Accumulated instrumentation across the per-component sub-searches of
/// a preprocessed solve.
struct ComponentAggregate {
    blocks: Vec<BlockCounters>,
    launch: Option<LaunchConfig>,
    greedy_total: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;

    fn solvers() -> Vec<Solver> {
        vec![
            Solver::builder().algorithm(Algorithm::Sequential).build(),
            Solver::builder()
                .algorithm(Algorithm::StackOnly { start_depth: 4 })
                .grid_limit(Some(8))
                .build(),
            Solver::builder()
                .algorithm(Algorithm::Hybrid)
                .grid_limit(Some(8))
                .build(),
            Solver::builder()
                .algorithm(Algorithm::WorkStealing)
                .grid_limit(Some(8))
                .build(),
            Solver::builder()
                .algorithm(Algorithm::Batched)
                .grid_limit(Some(8))
                .build(),
            Solver::builder()
                .algorithm(Algorithm::ComponentSteal)
                .grid_limit(Some(8))
                .build(),
        ]
    }

    #[test]
    fn all_algorithms_agree_with_brute_force() {
        for seed in 0..4 {
            let g = gen::gnp(13, 0.35, seed);
            let (opt, _) = brute_force_mvc(&g);
            for solver in solvers() {
                let r = solver.solve_mvc(&g);
                assert_eq!(r.size, opt, "{} seed {seed}", solver.algorithm());
                assert!(
                    is_vertex_cover(&g, &r.cover),
                    "{} seed {seed}",
                    solver.algorithm()
                );
                assert_eq!(r.cover.len() as u32, r.size);
            }
        }
    }

    #[test]
    fn pvc_three_instances_all_algorithms() {
        let g = gen::gnp(14, 0.3, 77);
        let min = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g)
            .size;
        assert!(min >= 1);
        for solver in solvers() {
            let below = solver.solve_pvc(&g, min - 1);
            assert!(
                !below.found(),
                "{}: found below-optimal cover",
                solver.algorithm()
            );
            for dk in 0..2 {
                let r = solver.solve_pvc(&g, min + dk);
                let cover = r.cover.unwrap_or_else(|| {
                    panic!("{}: no cover at k = min + {dk}", solver.algorithm())
                });
                assert!(cover.len() as u32 <= min + dk);
                assert!(is_vertex_cover(&g, &cover));
            }
        }
    }

    #[test]
    fn edgeless_and_empty_graphs() {
        for solver in solvers() {
            let empty = CsrGraph::from_edges(0, &[]).unwrap();
            assert_eq!(solver.solve_mvc(&empty).size, 0);
            let edgeless = CsrGraph::from_edges(7, &[]).unwrap();
            assert_eq!(solver.solve_mvc(&edgeless).size, 0);
            assert_eq!(solver.solve_pvc(&edgeless, 0).cover, Some(vec![]));
        }
    }

    #[test]
    fn hybrid_on_denser_graph() {
        let g = gen::p_hat_complement(40, 3, 5);
        let seq = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        let hyb = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(8))
            .build();
        let r = hyb.solve_mvc(&g);
        assert_eq!(r.size, seq.size);
        assert!(is_vertex_cover(&g, &r.cover));
        assert!(r.stats.tree_nodes > 0);
    }

    #[test]
    fn work_stealing_on_denser_graph() {
        // Large enough a tree (~400 nodes) that stealing must engage.
        let g = gen::p_hat_complement(60, 2, 5);
        let seq = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        let ws = Solver::builder()
            .algorithm(Algorithm::WorkStealing)
            .grid_limit(Some(8))
            .build();
        let r = ws.solve_mvc(&g);
        assert_eq!(r.size, seq.size);
        assert!(is_vertex_cover(&g, &r.cover));
        // Steals show up in the worklist-consumption counter, proving
        // the balancing actually engaged.
        let stolen: u64 = r
            .stats
            .report
            .blocks
            .iter()
            .map(|b| b.nodes_from_worklist)
            .sum();
        assert!(stolen > 0, "no block ever stole on a non-trivial instance");
    }

    #[test]
    fn stats_are_populated_for_parallel_runs() {
        let g = gen::gnp(30, 0.25, 9);
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(4))
            .build();
        let r = solver.solve_mvc(&g);
        assert!(r.stats.launch.is_some());
        assert!(r.stats.device_cycles > 0);
        assert!(r.stats.tree_nodes > 0);
        assert_eq!(r.stats.report.blocks.len(), 4);
        let total: f64 = r
            .stats
            .report
            .activity_breakdown()
            .iter()
            .map(|(_, s)| s)
            .sum();
        assert!((total - 1.0).abs() < 1e-6, "breakdown sums to {total}");
    }

    #[test]
    fn pvc_k_zero_and_k_huge() {
        let g = gen::cycle(6);
        for solver in solvers() {
            assert!(!solver.solve_pvc(&g, 0).found(), "{}", solver.algorithm());
            let r = solver.solve_pvc(&g, 100);
            assert!(r.found());
            assert!(is_vertex_cover(&g, &r.cover.unwrap()));
        }
    }

    #[test]
    fn threshold_zero_and_one_still_correct() {
        // threshold 0 → never donate (degenerates toward StackOnly-ish
        // single-consumer); threshold 1.0 → donate until full.
        let g = gen::gnp(16, 0.4, 21);
        let (opt, _) = brute_force_mvc(&g);
        for frac in [0.0, 1.0] {
            let solver = Solver::builder()
                .algorithm(Algorithm::Hybrid)
                .threshold_frac(frac)
                .grid_limit(Some(4))
                .build();
            assert_eq!(solver.solve_mvc(&g).size, opt, "frac {frac}");
        }
    }

    #[test]
    fn preprocessed_solves_agree_with_brute_force() {
        for seed in 0..4 {
            let g = gen::gnp(13, 0.35, seed);
            let (opt, _) = brute_force_mvc(&g);
            for solver in solvers() {
                let solver = solver.cfg.preprocess(PrepConfig::default()).build();
                let r = solver.solve_mvc(&g);
                assert_eq!(r.size, opt, "{} seed {seed} (prep)", solver.algorithm());
                assert!(is_vertex_cover(&g, &r.cover));
                assert_eq!(r.cover.len() as u32, r.size);
                assert!(r.stats.prep.is_some(), "prep stats must be reported");
            }
        }
    }

    #[test]
    fn preprocessed_pvc_is_exact() {
        let g = gen::gnp(14, 0.3, 77);
        let min = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g)
            .size;
        let solver = Solver::builder()
            .algorithm(Algorithm::WorkStealing)
            .grid_limit(Some(4))
            .preprocess(PrepConfig::default())
            .build();
        assert!(!solver.solve_pvc(&g, min - 1).found());
        let r = solver.solve_pvc(&g, min);
        let cover = r.cover.expect("k = min is feasible");
        assert!(cover.len() as u32 <= min);
        assert!(is_vertex_cover(&g, &cover));
    }

    #[test]
    fn preprocessing_splits_component_instances() {
        // Many independent communities: the kernel must split, and the
        // lifted cover must match the unpreprocessed optimum.
        let g = gen::sparse_components(120, 12, 0.5, 3);
        let plain = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        let solver = Solver::builder()
            .algorithm(Algorithm::WorkStealing)
            .grid_limit(Some(4))
            .preprocess(PrepConfig::default())
            .build();
        let r = solver.solve_mvc(&g);
        assert_eq!(r.size, plain.size);
        assert!(is_vertex_cover(&g, &r.cover));
        let prep = r.stats.prep.expect("prep stats present");
        assert!(prep.elimination() > 0.0);
    }

    #[test]
    fn preprocessing_with_rules_disabled_still_exact() {
        let g = gen::gnp(12, 0.3, 5);
        let (opt, _) = brute_force_mvc(&g);
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(4))
            .preprocess(PrepConfig::split_only())
            .build();
        let r = solver.solve_mvc(&g);
        assert_eq!(r.size, opt);
        assert!(is_vertex_cover(&g, &r.cover));
    }

    #[test]
    fn component_branching_agrees_and_splits() {
        // Loosely-coupled communities disconnect under reduction:
        // splitting must fire, and every policy must stay exact.
        let g = gen::sparse_components(120, 12, 0.5, 3);
        let opt = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g)
            .size;
        for base in solvers() {
            let solver = base.cfg.component_branching(true).build();
            let r = solver.solve_mvc(&g);
            assert_eq!(r.size, opt, "{} (split on)", solver.algorithm());
            assert!(is_vertex_cover(&g, &r.cover));
            let splits = r.stats.report.split_totals();
            assert!(
                splits.taken >= 1,
                "{}: no split taken on a components graph",
                solver.algorithm()
            );
            assert_eq!(
                splits.size_hist.iter().sum::<u64>(),
                splits.components,
                "histogram must partition the component count"
            );
        }
    }

    #[test]
    fn component_branching_explores_fewer_nodes() {
        let g = gen::sparse_components(80, 10, 0.5, 7);
        let off = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        let on = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .component_branching(true)
            .build()
            .solve_mvc(&g);
        assert_eq!(on.size, off.size);
        assert!(
            on.stats.tree_nodes < off.stats.tree_nodes,
            "splitting must shrink the tree on a components graph ({} >= {})",
            on.stats.tree_nodes,
            off.stats.tree_nodes
        );
    }

    #[test]
    fn component_steal_with_splitting_explicitly_disabled() {
        // ComponentSteal implies splitting by default, but an explicit
        // disable wins: the policy degrades to plain work stealing
        // (useful for A/B-ing the scheduling alone).
        let g = gen::sparse_components(60, 10, 0.5, 3);
        let seq = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        let solver = Solver::builder()
            .algorithm(Algorithm::ComponentSteal)
            .component_branching(false)
            .grid_limit(Some(4))
            .build();
        let r = solver.solve_mvc(&g);
        assert_eq!(r.size, seq.size);
        assert!(is_vertex_cover(&g, &r.cover));
        assert_eq!(
            r.stats.report.split_totals().checks,
            0,
            "explicit disable must suppress the split hook entirely"
        );
    }

    #[test]
    fn component_steal_donates_components() {
        let g = gen::sparse_components(80, 10, 0.5, 5);
        let seq = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .build()
            .solve_mvc(&g);
        let solver = Solver::builder()
            .algorithm(Algorithm::ComponentSteal)
            .grid_limit(Some(8))
            .build();
        let r = solver.solve_mvc(&g);
        assert_eq!(r.size, seq.size);
        assert!(is_vertex_cover(&g, &r.cover));
        let donated: u64 = r.stats.report.blocks.iter().map(|b| b.nodes_donated).sum();
        assert!(donated > 0, "ComponentSteal never donated a component");
        assert!(r.stats.report.split_totals().taken >= 1);
    }

    #[test]
    fn forced_variants_agree() {
        let g = gen::gnp(15, 0.3, 33);
        let (opt, _) = brute_force_mvc(&g);
        for v in [KernelVariant::SharedMem, KernelVariant::GlobalMem] {
            for algorithm in [Algorithm::Hybrid, Algorithm::WorkStealing] {
                let solver = Solver::builder()
                    .algorithm(algorithm)
                    .kernel_variant(v)
                    .grid_limit(Some(4))
                    .build();
                assert_eq!(solver.solve_mvc(&g).size, opt, "{algorithm} variant {v}");
            }
        }
    }

    #[test]
    fn with_deadline_shares_executor_and_changes_budget_only() {
        let g = gen::gnp(13, 0.3, 9);
        let base = Solver::builder().algorithm(Algorithm::Hybrid).build();
        let derived = base.with_deadline(Some(std::time::Duration::from_secs(30)));
        assert!(
            Arc::ptr_eq(&base.exec, &derived.exec),
            "derived solver must reuse the built executor"
        );
        assert_eq!(base.cfg.deadline, None);
        assert_eq!(
            derived.cfg.deadline,
            Some(std::time::Duration::from_secs(30))
        );
        // Same configuration otherwise: identical outcomes.
        assert_eq!(base.solve_mvc(&g).size, derived.solve_mvc(&g).size);
        // Clearing the budget again round-trips.
        assert_eq!(derived.with_deadline(None).cfg.deadline, None);
    }

    #[test]
    fn oversize_degrade_is_counted() {
        // An instance whose per-block stack state exceeds the tiny
        // device's global memory (stack bytes grow with n·depth, so a
        // 600-vertex cycle oversizes the 1 MiB device while staying
        // trivially reducible): the §III-C degrade path must run
        // inline AND surface the operator-visible counter.
        let g = gen::cycle(600);
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .device(parvc_simgpu::DeviceSpec::test_tiny())
            .telemetry(parvc_obs::TelemetryConfig {
                spans: false,
                metrics: true,
                ..Default::default()
            })
            .build();
        let r = solver.solve_mvc(&g);
        assert!(is_vertex_cover(&g, &r.cover));
        assert!(
            r.stats.launch.is_none(),
            "oversize instance must degrade to inline execution"
        );
        let snap = r.stats.telemetry.as_ref().expect("telemetry requested");
        assert!(
            snap.counters.get("engine.oversize_inline").copied() >= Some(1),
            "degrade path must be counted; got {:?}",
            snap.counters
        );
        assert!(snap.gauges.contains_key("engine.oversize_last_vertices"));

        // A device that fits the instance must NOT count a degrade.
        let fits = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(4))
            .telemetry(parvc_obs::TelemetryConfig {
                spans: false,
                metrics: true,
                ..Default::default()
            })
            .build();
        let r2 = fits.solve_mvc(&g);
        let snap2 = r2.stats.telemetry.as_ref().unwrap();
        assert!(!snap2.counters.contains_key("engine.oversize_inline"));
        assert_eq!(r2.size, r.size, "degraded solve stays exact");
    }
}
