//! The reduction rules (§II-B) with the paper's parallel-round conflict
//! resolution (§IV-D).
//!
//! On the GPU all threads of a block scan the degree array
//! simultaneously; the races the paper enumerates — two adjacent
//! degree-one vertices, two degree-two vertices in the same triangle, a
//! neighbor shared by several rule applications — are resolved by
//! "smaller vertex id wins / remove only once". We reproduce those exact
//! semantics deterministically: each *round* snapshots the eligible
//! vertices, then applies them in ascending id with a liveness/degree
//! recheck. A vertex invalidated by an earlier (smaller-id) application
//! is skipped, which is precisely the paper's tie-break.

use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::exec::gather_indices;

use crate::bound::SearchBound;
use crate::ops::Kernel;
use crate::scratch::BlockScratch;
use crate::TreeNode;

/// Statistics from one `reduce` fixpoint (how much each rule fired).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Vertices covered by the degree-one rule.
    pub degree_one: u64,
    /// Vertices covered by the degree-two-triangle rule.
    pub degree_two_triangle: u64,
    /// Vertices covered by the high-degree rule.
    pub high_degree: u64,
    /// Fixpoint iterations of the outer loop.
    pub rounds: u32,
}

impl<'a> Kernel<'a> {
    /// Applies all three rules until the graph stops changing
    /// (Figure 1's `reduce`, lines 14–30). Mutates `node` in place.
    /// Each round is phase-split: a flat **classify** pass over the
    /// degree array gathers the eligible vertices into
    /// `scratch.candidates` (executed through the kernel's
    /// [`ParallelExecutor`](parvc_simgpu::exec::ParallelExecutor) —
    /// this is the reduce-fixpoint degree scan, the hottest flat pass
    /// in the engine), then a serial **apply** pass walks the buffer
    /// in ascending id with the liveness recheck. `scratch` holds the
    /// per-block delta buffers, reused across rounds and tree nodes.
    pub fn reduce(
        &self,
        node: &mut TreeNode,
        bound: SearchBound,
        scratch: &mut BlockScratch,
        counters: &mut BlockCounters,
    ) -> ReduceStats {
        let mut stats = ReduceStats::default();
        loop {
            stats.rounds += 1;
            let mut changed = false;
            // Figure 1 applies each rule to ITS OWN fixpoint before the
            // next (the inner `while ∃v` loops), then repeats all three
            // while anything changed.
            while self.degree_one_round(node, bound, scratch, counters, &mut stats) {
                changed = true;
            }
            while self.degree_two_triangle_round(node, bound, scratch, counters, &mut stats) {
                changed = true;
            }
            while self.high_degree_round(node, bound, scratch, counters, &mut stats) {
                changed = true;
            }
            if self.ext.domination_rule {
                while self.domination_round(node, bound.is_weighted(), scratch, counters) {
                    changed = true;
                }
            }
            if !changed {
                return stats;
            }
        }
    }

    /// One parallel round of the degree-one rule: for a degree-one
    /// vertex `v` with neighbor `u`, taking `u` is never worse than
    /// taking `v`. Returns whether anything changed.
    ///
    /// **Weighted gate**: the swap argument (`u` covers a superset of
    /// `v`'s edges) only bounds the cover weight when `w(u) ≤ w(v)`;
    /// a weighted search skips applications that fail that test — the
    /// leaf may genuinely be the cheaper endpoint (a weight-1 leaf on
    /// a weight-100 hub belongs in the optimum).
    fn degree_one_round(
        &self,
        node: &mut TreeNode,
        bound: SearchBound,
        scratch: &mut BlockScratch,
        counters: &mut BlockCounters,
        stats: &mut ReduceStats,
    ) -> bool {
        // Classify: all threads scan the degree array for d(v) == 1
        // (one wave, chunked across the executor).
        counters.charge(
            Activity::DegreeOneRule,
            self.cost
                .parallel_op(node.len() as u64, self.block_size, self.variant),
        );
        gather_indices(
            self.exec,
            node.len() as usize,
            &|v| node.degree(v) == 1,
            &mut scratch.slots,
            &mut scratch.candidates,
        );
        let mut changed = false;
        // Apply: ascending id with recheck (the §IV-D tie-break).
        for &v in &scratch.candidates {
            // Recheck: an earlier (smaller-id) application may have
            // removed v's neighbor or v itself — the §IV-D tie-break.
            if node.degree(v) != 1 {
                continue;
            }
            let u = node
                .live_neighbor(self.graph, v)
                .expect("degree-one vertex has a live neighbor");
            if bound.is_weighted() && self.graph.weight(u) > self.graph.weight(v) {
                continue;
            }
            self.remove_vertex(node, u, Activity::DegreeOneRule, counters);
            stats.degree_one += 1;
            changed = true;
        }
        changed
    }

    /// One parallel round of the degree-two-triangle rule: if
    /// `N(v) = {u, w}` and `uw ∈ E`, two of the triangle's vertices must
    /// be covered and `{u, w}` is never worse. Returns whether anything
    /// changed.
    ///
    /// **Weighted gate**: swapping `v` out for whichever of `{u, w}` a
    /// cover is missing only bounds the weight when both partners cost
    /// at most `w(v)`; a weighted search skips the rest.
    fn degree_two_triangle_round(
        &self,
        node: &mut TreeNode,
        bound: SearchBound,
        scratch: &mut BlockScratch,
        counters: &mut BlockCounters,
        stats: &mut ReduceStats,
    ) -> bool {
        counters.charge(
            Activity::DegreeTwoTriangleRule,
            self.cost
                .parallel_op(node.len() as u64, self.block_size, self.variant),
        );
        gather_indices(
            self.exec,
            node.len() as usize,
            &|v| node.degree(v) == 2,
            &mut scratch.slots,
            &mut scratch.candidates,
        );
        let mut changed = false;
        for &v in &scratch.candidates {
            if node.degree(v) != 2 {
                continue;
            }
            let mut live = node.live_neighbors(self.graph, v);
            let u = live
                .next()
                .expect("degree-two vertex has two live neighbors");
            let w = live
                .next()
                .expect("degree-two vertex has two live neighbors");
            drop(live);
            // Adjacency test against the ORIGINAL graph: u and w are
            // both live, so the edge survives iff it existed originally.
            counters.charge(
                Activity::DegreeTwoTriangleRule,
                self.cost.parallel_op(1, self.block_size, self.variant),
            );
            if bound.is_weighted()
                && self.graph.weight(u).max(self.graph.weight(w)) > self.graph.weight(v)
            {
                continue;
            }
            if self.graph.has_edge(u, w) {
                self.remove_vertex(node, u, Activity::DegreeTwoTriangleRule, counters);
                self.remove_vertex(node, w, Activity::DegreeTwoTriangleRule, counters);
                stats.degree_two_triangle += 2;
                changed = true;
            }
        }
        changed
    }

    /// One parallel round of the high-degree rule: a live vertex whose
    /// degree exceeds the remaining cover budget can never be covered
    /// "from the other side" within the bound, so it joins the cover.
    /// Returns whether anything changed. Under a weighted bound the
    /// budget is in weight units, which only strengthens the argument:
    /// `d` forced neighbors cost at least `d` weight (each weight ≥ 1).
    ///
    /// When the budget is already negative the rule is skipped — the
    /// stopping condition prunes such nodes right after `reduce`
    /// (Figure 1 line 5), and a negative threshold would degenerate the
    /// rule into "remove everything".
    fn high_degree_round(
        &self,
        node: &mut TreeNode,
        bound: SearchBound,
        scratch: &mut BlockScratch,
        counters: &mut BlockCounters,
        stats: &mut ReduceStats,
    ) -> bool {
        counters.charge(
            Activity::HighDegreeRule,
            self.cost
                .parallel_op(node.len() as u64, self.block_size, self.variant),
        );
        let Some(threshold) = bound.high_degree_threshold(bound.node_cost(node)) else {
            return false;
        };
        gather_indices(
            self.exec,
            node.len() as usize,
            &|v| node.degree(v) as i64 > threshold,
            &mut scratch.slots,
            &mut scratch.candidates,
        );
        let mut changed = false;
        for &v in &scratch.candidates {
            // The budget shrinks as the rule fires; recompute like the
            // serial `while ∃v s.t. d(v) > best − |S| − 1` does.
            let Some(threshold) = bound.high_degree_threshold(bound.node_cost(node)) else {
                break;
            };
            if node.degree(v) < 0 || (node.degree(v) as i64) <= threshold {
                continue;
            }
            self.remove_vertex(node, v, Activity::HighDegreeRule, counters);
            stats.high_degree += 1;
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::{gen, CsrGraph};
    use parvc_simgpu::CostModel;

    fn run_reduce(g: &CsrGraph, bound: SearchBound) -> (TreeNode, ReduceStats) {
        let cost = CostModel::default();
        let k = Kernel {
            block_size: 32,
            ..Kernel::sequential(g, &cost)
        };
        let mut node = TreeNode::root(g);
        let mut c = BlockCounters::new(0);
        let stats = k.reduce(&mut node, bound, &mut BlockScratch::new(), &mut c);
        node.check_consistency(g).unwrap();
        (node, stats)
    }

    #[test]
    fn degree_one_solves_paths_completely() {
        // A path reduces to nothing by repeated degree-one application.
        let g = gen::path(10);
        let (node, stats) = run_reduce(&g, SearchBound::Mvc { best: u32::MAX });
        assert!(node.is_edgeless());
        assert_eq!(node.cover_size(), 5); // optimal for P10
        assert!(stats.degree_one >= 1);
    }

    #[test]
    fn degree_one_takes_the_neighbor_not_the_leaf() {
        let g = gen::star(6);
        let (node, _) = run_reduce(&g, SearchBound::Mvc { best: u32::MAX });
        assert!(node.is_removed(0), "the hub must join the cover");
        assert_eq!(node.cover_size(), 1);
        assert!(node.is_edgeless());
    }

    #[test]
    fn isolated_edge_covers_exactly_one_endpoint() {
        // Both endpoints are degree-one; §IV-D: only one application
        // fires (smaller id acts, removing its neighbor).
        let g = CsrGraph::from_edges(2, &[(0, 1)]).unwrap();
        let (node, stats) = run_reduce(&g, SearchBound::Mvc { best: u32::MAX });
        assert_eq!(node.cover_size(), 1);
        assert!(
            node.is_removed(1),
            "vertex 0 acts first, covering its neighbor 1"
        );
        assert!(!node.is_removed(0));
        assert_eq!(stats.degree_one, 1);
    }

    #[test]
    fn shared_neighbor_removed_once() {
        // Two leaves hanging off the same hub: one removal suffices.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let (node, stats) = run_reduce(&g, SearchBound::Mvc { best: u32::MAX });
        assert_eq!(node.cover_size(), 1);
        assert!(node.is_removed(2));
        assert_eq!(stats.degree_one, 1);
    }

    #[test]
    fn triangle_rule_takes_the_two_outer_vertices() {
        // Triangle {0,1,2} where 0 has degree 2: rule covers {1, 2}.
        // Extra pendant edges off 1 and 2 keep their degrees at 3 so the
        // degree-one rule (on 3 and 4) fires first in a different shape;
        // build it so only the triangle rule applies initially.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
        // Degrees: 0:2, 1:3, 2:3, 3:2, 4:2 — no degree-one vertices.
        let (node, stats) = run_reduce(&g, SearchBound::Mvc { best: u32::MAX });
        assert!(node.is_edgeless());
        assert!(stats.degree_two_triangle >= 2);
        assert!(
            node.is_removed(1) && node.is_removed(2),
            "triangle partners of 0 join"
        );
    }

    #[test]
    fn two_triangle_vertices_conflict_resolved_by_id() {
        // K3: every vertex has degree 2 and all are in one triangle.
        // Only the smallest id (0) applies; its neighbors {1,2} join.
        let g = gen::complete(3);
        let (node, stats) = run_reduce(&g, SearchBound::Mvc { best: u32::MAX });
        assert_eq!(node.cover_size(), 2);
        assert!(node.is_removed(1) && node.is_removed(2));
        assert!(!node.is_removed(0));
        assert_eq!(stats.degree_two_triangle, 2);
    }

    #[test]
    fn high_degree_rule_fires_against_tight_bound() {
        // Star K_{1,5} with best = 3: hub degree 5 > 3-0-1 = 2 → hub
        // joins the cover immediately; graph becomes edgeless.
        let g = gen::star(6);
        let (node, stats) = run_reduce(&g, SearchBound::Mvc { best: 3 });
        assert!(node.is_removed(0));
        assert!(node.is_edgeless());
        // The degree-one rule may get there first (it also targets the
        // hub); accept either attribution but require the hub covered.
        assert!(stats.high_degree + stats.degree_one >= 1);
    }

    #[test]
    fn high_degree_skipped_when_budget_negative() {
        let g = gen::complete(4);
        let cost = CostModel::default();
        let k = Kernel {
            block_size: 32,
            ..Kernel::sequential(&g, &cost)
        };
        let mut node = TreeNode::root(&g);
        // Burn the budget: cover 2 vertices with best = 1.
        node.remove_into_cover(&g, 0);
        node.remove_into_cover(&g, 1);
        let mut c = BlockCounters::new(0);
        let before = node.cover_size();
        k.reduce(
            &mut node,
            SearchBound::Mvc { best: 1 },
            &mut BlockScratch::new(),
            &mut c,
        );
        // Remaining K2 on {2,3} triggers degree-one, but high-degree
        // must not mass-remove with a negative threshold.
        assert!(node.cover_size() <= before + 1);
    }

    #[test]
    fn reduction_preserves_optimal_cover_size() {
        // Safety of the rules: opt(G) = |S_reduce| + opt(G_reduced).
        // Verified by brute force on random graphs.
        for seed in 0..10 {
            let g = gen::gnp(12, 0.3, seed);
            let opt = crate::brute::brute_force_mvc(&g).0;
            let (node, _) = run_reduce(&g, SearchBound::Mvc { best: u32::MAX });
            let residual = residual_graph(&g, &node);
            let opt_rest = crate::brute::brute_force_mvc(&residual).0;
            assert_eq!(
                node.cover_size() + opt_rest,
                opt,
                "seed {seed}: reduction changed the optimum"
            );
        }
    }

    /// The intermediate graph as a standalone CSR (for oracle checks).
    fn residual_graph(g: &CsrGraph, node: &TreeNode) -> CsrGraph {
        let edges: Vec<(u32, u32)> = g
            .edges()
            .filter(|&(u, v)| !node.is_removed(u) && !node.is_removed(v))
            .collect();
        CsrGraph::from_edges(g.num_vertices(), &edges).unwrap()
    }

    #[test]
    fn pvc_bound_threshold_used() {
        // PVC k: threshold is k - |S| (one more than MVC's best-|S|-1).
        // Star hub degree 5: with k = 5 the threshold is 5 → no fire;
        // with k = 4 threshold 4 → fires.
        let g = gen::star(7); // hub degree 6
        let (node_k6, _) = run_reduce(&g, SearchBound::Pvc { k: 6 });
        assert!(node_k6.is_edgeless());
        let (node_k4, stats_k4) = run_reduce(&g, SearchBound::Pvc { k: 4 });
        assert!(node_k4.is_removed(0));
        assert!(stats_k4.high_degree + stats_k4.degree_one >= 1);
    }
}
