//! The Sequential baseline — Figure 1, iteratively.
//!
//! A single CPU thread traverses the search tree depth-first with an
//! explicit stack (matching the paper's evaluation baseline on the EPYC
//! host). Child order follows the recursion in Figure 1: the
//! remove-`vmax` child (line 11) is explored before the
//! remove-`N(vmax)` child (line 12).

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::CostModel;

use crate::bound::SearchBound;
use crate::extensions::Extensions;
use crate::ops::Kernel;
use crate::shared::Deadline;
use crate::TreeNode;

/// Outcome of a sequential traversal.
#[derive(Debug)]
pub struct SequentialOutcome {
    /// Best cover size found (MVC) — `u32::MAX` if PVC found nothing.
    pub best_size: u32,
    /// Witness cover (empty if PVC found nothing).
    pub best_cover: Vec<VertexId>,
    /// Tree nodes visited.
    pub tree_nodes: u64,
    /// Cycle accounting (informational for the baseline).
    pub counters: BlockCounters,
}

/// Sequential MVC (Figure 1). `initial` is the greedy approximation
/// `(size, cover)` that seeds `best`.
pub fn solve_mvc(
    g: &CsrGraph,
    cost: &CostModel,
    initial: (u32, Vec<VertexId>),
    deadline: &Deadline,
    ext: Extensions,
) -> SequentialOutcome {
    let kernel = Kernel { ext, ..Kernel::sequential(g, cost) };
    let mut counters = BlockCounters::new(0);
    let (mut best, mut best_cover) = initial;
    let mut tree_nodes = 0u64;
    let mut stack = vec![TreeNode::root(g)];

    while let Some(mut node) = stack.pop() {
        if deadline.expired() {
            break;
        }
        tree_nodes += 1;
        let bound = SearchBound::Mvc { best };
        kernel.reduce(&mut node, bound, &mut counters);
        let bound = SearchBound::Mvc { best };
        if kernel.prune(&node, bound) {
            continue;
        }
        match kernel.find_max_degree(&node, &mut counters) {
            None => {
                // Zero-vertex graph: the empty set covers it.
                if node.cover_size() < best {
                    best = node.cover_size();
                    best_cover = node.cover_vertices();
                }
            }
            Some(vmax) if node.degree(vmax) == 0 => {
                // Edgeless: new best (strictly better — prune passed).
                best = node.cover_size();
                best_cover = node.cover_vertices();
            }
            Some(vmax) => {
                let mut left = node.clone();
                kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, &mut counters);
                kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, &mut counters);
                stack.push(left);
                stack.push(node); // popped first: Figure 1's child order
            }
        }
    }
    SequentialOutcome { best_size: best, best_cover, tree_nodes, counters }
}

/// Sequential PVC: finds any cover of size ≤ `k`, stopping at the first.
pub fn solve_pvc(
    g: &CsrGraph,
    cost: &CostModel,
    k: u32,
    deadline: &Deadline,
    ext: Extensions,
) -> SequentialOutcome {
    let kernel = Kernel { ext, ..Kernel::sequential(g, cost) };
    let mut counters = BlockCounters::new(0);
    let mut tree_nodes = 0u64;
    let mut stack = vec![TreeNode::root(g)];
    let bound = SearchBound::Pvc { k };

    while let Some(mut node) = stack.pop() {
        if deadline.expired() {
            break;
        }
        tree_nodes += 1;
        kernel.reduce(&mut node, bound, &mut counters);
        if kernel.prune(&node, bound) {
            continue;
        }
        match kernel.find_max_degree(&node, &mut counters) {
            None => {
                return SequentialOutcome {
                    best_size: node.cover_size(),
                    best_cover: node.cover_vertices(),
                    tree_nodes,
                    counters,
                };
            }
            Some(vmax) if node.degree(vmax) == 0 => {
                // Found a cover of size ≤ k: stop immediately (§II-B).
                return SequentialOutcome {
                    best_size: node.cover_size(),
                    best_cover: node.cover_vertices(),
                    tree_nodes,
                    counters,
                };
            }
            Some(vmax) => {
                let mut left = node.clone();
                kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, &mut counters);
                kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, &mut counters);
                stack.push(left);
                stack.push(node);
            }
        }
    }
    SequentialOutcome { best_size: u32::MAX, best_cover: Vec::new(), tree_nodes, counters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::greedy::greedy_mvc;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;

    fn mvc(g: &CsrGraph) -> SequentialOutcome {
        solve_mvc(g, &CostModel::default(), greedy_mvc(g), &Deadline::new(None), Extensions::NONE)
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..12 {
            let g = gen::gnp(14, 0.35, seed);
            let out = mvc(&g);
            let (opt, _) = brute_force_mvc(&g);
            assert_eq!(out.best_size, opt, "seed {seed}");
            assert!(is_vertex_cover(&g, &out.best_cover));
            assert_eq!(out.best_cover.len() as u32, out.best_size);
        }
    }

    #[test]
    fn known_instances() {
        assert_eq!(mvc(&gen::petersen()).best_size, 6);
        assert_eq!(mvc(&gen::cycle(9)).best_size, 5);
        assert_eq!(mvc(&gen::complete(8)).best_size, 7);
        assert_eq!(mvc(&gen::paper_example()).best_size, 3);
        assert_eq!(mvc(&gen::grid2d(4, 4)).best_size, 8);
    }

    #[test]
    fn handles_edgeless_and_empty() {
        let empty = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(mvc(&empty).best_size, 0);
        let edgeless = CsrGraph::from_edges(5, &[]).unwrap();
        assert_eq!(mvc(&edgeless).best_size, 0);
    }

    #[test]
    fn pvc_agreement_with_mvc_size() {
        for seed in 0..6 {
            let g = gen::gnp(13, 0.3, seed + 100);
            let min = mvc(&g).best_size;
            let cost = CostModel::default();
            // k = min - 1: infeasible (exhaustive search, no solution).
            if min > 0 {
                let below = solve_pvc(&g, &cost, min - 1, &Deadline::new(None), Extensions::NONE);
                assert_eq!(below.best_size, u32::MAX, "seed {seed}: found sub-optimal cover");
            }
            // k = min and k = min + 1: feasible, returns a valid cover.
            for dk in 0..2 {
                let out = solve_pvc(&g, &cost, min + dk, &Deadline::new(None), Extensions::NONE);
                assert!(out.best_size <= min + dk, "seed {seed}");
                assert!(is_vertex_cover(&g, &out.best_cover));
            }
        }
    }

    #[test]
    fn pvc_large_k_trivially_feasible() {
        let g = gen::complete(6);
        let out = solve_pvc(&g, &CostModel::default(), 100, &Deadline::new(None), Extensions::NONE);
        assert!(out.best_size <= 6);
        assert!(is_vertex_cover(&g, &out.best_cover));
    }

    #[test]
    fn pvc_k_zero_on_nonempty_graph_fails() {
        let g = gen::path(4);
        let out = solve_pvc(&g, &CostModel::default(), 0, &Deadline::new(None), Extensions::NONE);
        assert_eq!(out.best_size, u32::MAX);
    }

    #[test]
    fn greedy_optimum_is_confirmed_not_degraded() {
        // When greedy is already optimal the search must return it.
        let g = gen::star(12);
        let out = mvc(&g);
        assert_eq!(out.best_size, 1);
        assert!(is_vertex_cover(&g, &out.best_cover));
    }

    #[test]
    fn visits_fewer_nodes_with_tighter_initial_bound() {
        let g = gen::gnp(18, 0.4, 3);
        let greedy = greedy_mvc(&g);
        let loose = solve_mvc(&g, &CostModel::default(), (u32::MAX, (0..18).collect()), &Deadline::new(None), Extensions::NONE);
        let tight = solve_mvc(&g, &CostModel::default(), greedy, &Deadline::new(None), Extensions::NONE);
        assert_eq!(loose.best_size, tight.best_size);
        assert!(
            tight.tree_nodes <= loose.tree_nodes,
            "greedy seeding must not increase work ({} > {})",
            tight.tree_nodes,
            loose.tree_nodes
        );
    }
}
