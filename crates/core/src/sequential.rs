//! The Sequential baseline (Figure 1) as a [`SchedulePolicy`].
//!
//! A single block (one CPU thread, `B = 1`) traverses the search tree
//! depth-first with a plain unbounded stack. Child order follows the
//! recursion in Figure 1: the remove-`vmax` child (line 11) is
//! explored before the remove-`N(vmax)` child (line 12). No cycle
//! costs are charged for stack traffic — the baseline is reported in
//! wall time and its counters are informational.

use parvc_simgpu::counters::BlockCounters;
use parvc_simgpu::runtime::BlockCtx;

use crate::engine::{ExitCause, PolicyFactory, SchedulePolicy};
use crate::ops::Kernel;
use crate::shared::BoundSrc;
use crate::TreeNode;

/// The single-thread DFS policy: an unbounded LIFO, nothing shared.
pub struct SequentialPolicy {
    stack: Vec<TreeNode>,
}

impl SchedulePolicy for SequentialPolicy {
    fn next(
        &mut self,
        _kernel: &Kernel<'_>,
        _bound: BoundSrc<'_>,
        _counters: &mut BlockCounters,
    ) -> Option<TreeNode> {
        self.stack.pop()
    }

    fn dispose(&mut self, child: TreeNode, _kernel: &Kernel<'_>, _counters: &mut BlockCounters) {
        self.stack.push(child);
    }

    fn on_exit(&mut self, _cause: ExitCause, _kernel: &Kernel<'_>, _counters: &mut BlockCounters) {}
}

/// Factory for [`SequentialPolicy`]: holds the root until the (single)
/// block claims it.
pub struct SequentialFactory {
    root: parking_lot::Mutex<Option<TreeNode>>,
}

impl SequentialFactory {
    /// A fresh factory (one per solve).
    pub fn new() -> Self {
        SequentialFactory {
            root: parking_lot::Mutex::new(None),
        }
    }
}

impl Default for SequentialFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyFactory for SequentialFactory {
    fn seed(&self, root: TreeNode) {
        *self.root.lock() = Some(root);
    }

    fn block_policy<'s>(
        &'s self,
        ctx: BlockCtx,
        _depth_bound: usize,
    ) -> Box<dyn SchedulePolicy + 's> {
        assert_eq!(
            ctx.block_id, 0,
            "the Sequential policy is single-block by definition"
        );
        let stack = self.root.lock().take().into_iter().collect();
        Box::new(SequentialPolicy { stack })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::engine::Engine;
    use crate::extensions::Extensions;
    use crate::greedy::greedy_mvc;
    use crate::shared::{Deadline, RawParallel, RawParallelPvc};
    use crate::verify::is_vertex_cover;
    use parvc_graph::{gen, CsrGraph};
    use parvc_simgpu::{CostModel, DeviceSpec};

    fn solve_mvc(g: &CsrGraph, initial: (u32, Vec<u32>)) -> RawParallel {
        let device = DeviceSpec::scaled(1);
        let cost = CostModel::default();
        let deadline = Deadline::new(None);
        let engine = Engine {
            graph: g,
            device: &device,
            config: None,
            cost: &cost,
            deadline: &deadline,
            ext: Extensions::NONE,
            exec: &parvc_simgpu::exec::SERIAL,
            obs: crate::engine::EngineObs::OFF,
        };
        engine.solve_mvc(&SequentialFactory::new(), initial)
    }

    fn solve_pvc(g: &CsrGraph, k: u32) -> RawParallelPvc {
        let device = DeviceSpec::scaled(1);
        let cost = CostModel::default();
        let deadline = Deadline::new(None);
        let engine = Engine {
            graph: g,
            device: &device,
            config: None,
            cost: &cost,
            deadline: &deadline,
            ext: Extensions::NONE,
            exec: &parvc_simgpu::exec::SERIAL,
            obs: crate::engine::EngineObs::OFF,
        };
        engine.solve_pvc(&SequentialFactory::new(), k)
    }

    fn mvc(g: &CsrGraph) -> RawParallel {
        solve_mvc(g, greedy_mvc(g))
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..12 {
            let g = gen::gnp(14, 0.35, seed);
            let out = mvc(&g);
            let (opt, _) = brute_force_mvc(&g);
            assert_eq!(out.best_size, opt, "seed {seed}");
            assert!(is_vertex_cover(&g, &out.best_cover));
            assert_eq!(out.best_cover.len() as u32, out.best_size);
        }
    }

    #[test]
    fn known_instances() {
        assert_eq!(mvc(&gen::petersen()).best_size, 6);
        assert_eq!(mvc(&gen::cycle(9)).best_size, 5);
        assert_eq!(mvc(&gen::complete(8)).best_size, 7);
        assert_eq!(mvc(&gen::paper_example()).best_size, 3);
        assert_eq!(mvc(&gen::grid2d(4, 4)).best_size, 8);
    }

    #[test]
    fn handles_edgeless_and_empty() {
        let empty = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(mvc(&empty).best_size, 0);
        let edgeless = CsrGraph::from_edges(5, &[]).unwrap();
        assert_eq!(mvc(&edgeless).best_size, 0);
    }

    #[test]
    fn pvc_agreement_with_mvc_size() {
        for seed in 0..6 {
            let g = gen::gnp(13, 0.3, seed + 100);
            let min = mvc(&g).best_size;
            // k = min - 1: infeasible (exhaustive search, no solution).
            if min > 0 {
                let below = solve_pvc(&g, min - 1);
                assert!(
                    below.cover.is_none(),
                    "seed {seed}: found sub-optimal cover"
                );
            }
            // k = min and k = min + 1: feasible, returns a valid cover.
            for dk in 0..2 {
                let out = solve_pvc(&g, min + dk);
                let cover = out.cover.expect("feasible k");
                assert!(cover.len() as u32 <= min + dk, "seed {seed}");
                assert!(is_vertex_cover(&g, &cover));
            }
        }
    }

    #[test]
    fn pvc_large_k_trivially_feasible() {
        let g = gen::complete(6);
        let out = solve_pvc(&g, 100);
        let cover = out.cover.unwrap();
        assert!(cover.len() <= 6);
        assert!(is_vertex_cover(&g, &cover));
    }

    #[test]
    fn pvc_k_zero_on_nonempty_graph_fails() {
        let g = gen::path(4);
        assert!(solve_pvc(&g, 0).cover.is_none());
    }

    #[test]
    fn greedy_optimum_is_confirmed_not_degraded() {
        // When greedy is already optimal the search must return it.
        let g = gen::star(12);
        let out = mvc(&g);
        assert_eq!(out.best_size, 1);
        assert!(is_vertex_cover(&g, &out.best_cover));
    }

    #[test]
    fn visits_fewer_nodes_with_tighter_initial_bound() {
        let g = gen::gnp(18, 0.4, 3);
        let greedy = greedy_mvc(&g);
        let loose = solve_mvc(&g, (u32::MAX, (0..18).collect()));
        let tight = solve_mvc(&g, greedy);
        assert_eq!(loose.best_size, tight.best_size);
        let nodes = |raw: &RawParallel| raw.blocks[0].tree_nodes_visited;
        assert!(
            nodes(&tight) <= nodes(&loose),
            "greedy seeding must not increase work ({} > {})",
            nodes(&tight),
            nodes(&loose)
        );
    }
}
