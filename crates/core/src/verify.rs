//! Solution verification against the original graph.

use parvc_graph::{CsrGraph, VertexId};

/// Whether `cover` is a vertex cover of `g`: every edge has at least one
/// endpoint in the set. `O(|V| + |E|)`.
pub fn is_vertex_cover(g: &CsrGraph, cover: &[VertexId]) -> bool {
    let mut in_cover = vec![false; g.num_vertices() as usize];
    for &v in cover {
        if v >= g.num_vertices() {
            return false;
        }
        in_cover[v as usize] = true;
    }
    g.edges()
        .all(|(u, v)| in_cover[u as usize] || in_cover[v as usize])
}

/// Whether `set` is an independent set of `g`: no edge joins two of its
/// members. (The complement of a vertex cover; see [`crate::mis`].)
pub fn is_independent_set(g: &CsrGraph, set: &[VertexId]) -> bool {
    let mut in_set = vec![false; g.num_vertices() as usize];
    for &v in set {
        if v >= g.num_vertices() {
            return false;
        }
        in_set[v as usize] = true;
    }
    g.edges()
        .all(|(u, v)| !(in_set[u as usize] && in_set[v as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    #[test]
    fn accepts_valid_cover() {
        let g = gen::cycle(4);
        assert!(is_vertex_cover(&g, &[0, 2]));
        assert!(is_vertex_cover(&g, &[0, 1, 2, 3]));
    }

    #[test]
    fn rejects_uncovered_edge() {
        let g = gen::cycle(4);
        assert!(!is_vertex_cover(&g, &[0]));
        assert!(!is_vertex_cover(&g, &[]));
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let g = gen::path(3);
        assert!(!is_vertex_cover(&g, &[7]));
    }

    #[test]
    fn empty_cover_ok_for_edgeless() {
        let g = parvc_graph::CsrGraph::from_edges(4, &[]).unwrap();
        assert!(is_vertex_cover(&g, &[]));
    }

    #[test]
    fn independence_is_cover_complement() {
        let g = gen::petersen();
        let cover = crate::brute::brute_force_mvc(&g).1;
        let rest: Vec<u32> = (0..10).filter(|v| !cover.contains(v)).collect();
        assert!(is_vertex_cover(&g, &cover));
        assert!(is_independent_set(&g, &rest));
        assert!(!is_independent_set(&g, &[0, 1])); // adjacent on outer ring
    }
}
