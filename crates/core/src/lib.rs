//! # parvc-core — branch-and-reduce vertex cover solvers
//!
//! The primary contribution of *"Parallel Vertex Cover Algorithms on
//! GPUs"* (IPDPS 2022), reproduced on the `parvc-simgpu` execution
//! model:
//!
//! * [`TreeNode`] — the degree-array intermediate graph (§IV-B):
//!   compact and self-contained, so tree nodes can move through the
//!   global worklist.
//! * [`ops::Kernel`] — block-cooperative graph operations with Figure 6
//!   cycle accounting; [`reduce`] adds the three reduction rules with
//!   the §IV-D parallel conflict-resolution semantics.
//! * [`engine`] — the shared branch-and-reduce traversal loop, with
//!   scheduling delegated to a [`SchedulePolicy`] and MVC / weighted
//!   MVC / PVC termination unified by [`SearchMode`]. Every algorithm
//!   is a thin policy over this one engine; the weighted variant
//!   ([`SolverBuilder::weighted`]) changes only the bound arithmetic
//!   and the reduction rules' inclusion gates to weight units (see
//!   [`bound::SearchBound::WeightedMvc`]), so every policy solves
//!   it unchanged.
//! * [`sequential`], [`stackonly`], [`hybrid`] — the paper's three
//!   code versions as policies: the CPU baseline (Figure 1), prior
//!   work's fixed-depth sub-tree scheme, and the contribution — local
//!   stacks plus a threshold-gated global worklist (Figure 4).
//! * [`stealing`] — a fourth policy beyond the paper: per-block
//!   work-stealing deques, demonstrating the engine's extension seam.
//! * [`batch`] — batched sub-tree hand-off ([`Algorithm::Batched`]):
//!   Hybrid's worklist with donations amortized `k` children per
//!   queue negotiation.
//! * [`connect`] — the incremental union-find residual-connectivity
//!   tracker behind [`split`]'s default backend.
//! * [`split`] — in-search component branching (arXiv 2512.18334):
//!   when reductions disconnect the intermediate graph, the node
//!   becomes a *component-sum node* whose per-component optima are
//!   summed by independent budgeted sub-searches. Available under every
//!   policy via [`SolverBuilder::component_branching`].
//! * [`compsteal`] — the component-donating policy,
//!   [`Algorithm::ComponentSteal`]: work stealing where adopted
//!   component-sum nodes donate whole components to the steal pool.
//! * [`Solver`] — the public façade: pick an [`Algorithm`], a
//!   [`parvc_simgpu::DeviceSpec`], and call
//!   [`solve_mvc`](Solver::solve_mvc) / [`solve_pvc`](Solver::solve_pvc)
//!   (or [`Solver::solve_mis`] via the MVC↔MIS equivalence).
//!   [`SolverBuilder::preprocess`] additionally runs the `parvc-prep`
//!   kernelization + component-decomposition pipeline up front and
//!   schedules each kernel component as an independent engine
//!   sub-search under any of the policies.
//! * [`resolve`] — incremental re-solve for dynamic graphs: apply an
//!   [`parvc_graph::EditScript`] batch, keep every untouched
//!   component's cached optimum, and re-solve only the dirty region
//!   under warm bounds seeded from the previous result.
//! * [`approx`] — the ultra-fast approximate tier: round-compressed
//!   maximal matching through the executor seam and the primal-dual
//!   weighted cover, both provably within 2× of the optimum and both
//!   carrying a lower-bound certificate. Selectable as the solve seed
//!   via [`SolverBuilder::seed`].
//! * [`greedy`] (the initial bounds, cardinality and weighted),
//!   [`brute`] (the test oracles, including
//!   [`brute::weighted_brute_force`]), [`verify`] (solution checking).
//!
//! The cross-crate picture — engine contract, component-sum node
//! lifecycle, prep→solve→lift flow — is documented in
//! `ARCHITECTURE.md` at the repository root.

#![warn(missing_docs)]

pub mod approx;
pub mod batch;
pub mod bound;
pub mod brute;
pub mod compsteal;
pub mod connect;
pub mod engine;
pub mod extensions;
pub mod greedy;
pub mod hybrid;
pub mod mis;
mod node;
pub mod ops;
pub mod progress;
pub mod reduce;
pub mod resolve;
pub mod scratch;
pub mod sequential;
pub mod shared;
mod solver;
pub mod split;
pub mod stackonly;
mod stats;
pub mod stealing;
pub mod verify;

pub use approx::{ApproxCover, SeedStrategy};
pub use connect::{ConnPool, Connectivity};
pub use engine::{
    Engine, EngineObs, ExitCause, PolicyFactory, SchedulePolicy, SearchMode, SearchOutcome,
};
pub use extensions::Extensions;
pub use node::{TreeNode, REMOVED};
pub use parvc_obs::{RecordingSink, Sink, TelemetryConfig, TelemetrySnapshot};
pub use parvc_prep::{PrepConfig, PrepStats};
pub use parvc_simgpu::exec::ExecutorSpec;
pub use progress::Heartbeat;
pub use resolve::{ResolveSession, ResolveStats, Resolved};
pub use scratch::BlockScratch;
pub use solver::{Algorithm, Solver, SolverBuilder};
pub use split::{PendingSplit, SplitBackend, SplitBound, SplitParams, SubInstance};
pub use stats::{MisResult, MvcResult, PvcResult, SolveStats};
pub use verify::{is_independent_set, is_vertex_cover};
