//! The unified branch-and-reduce engine with pluggable scheduling.
//!
//! The paper's three code versions (Sequential, StackOnly, Hybrid —
//! §V-A) run the *same* traversal step on every tree node — reduce,
//! check the bound, find `vmax`, branch — and differ **only** in where
//! the next node comes from and where the branched child goes. This
//! module owns that shared loop ([`drive_block`]) and delegates the
//! scheduling decisions to a [`SchedulePolicy`]:
//!
//! * [`SchedulePolicy::next`] — *acquire*: produce the block's next
//!   tree node (local stack, fixed-depth sub-tree descent, global
//!   worklist, stolen from a peer, …) or signal that the block is out
//!   of work for good.
//! * [`SchedulePolicy::dispose`] — *distribute*: place the branched
//!   remove-`N(vmax)` child (push it, donate it, leave it stealable).
//! * [`SchedulePolicy::on_exit`] — *quiesce*: propagate termination to
//!   peers and settle the block's Figure 5/6 accounting.
//!
//! MVC and PVC share the loop too: [`SearchMode`] carries what differs
//! (the bound, the solution sink, and whether the first solution ends
//! the search), and [`Engine::solve`] is the one parameterized entry
//! point every [`Algorithm`](crate::Algorithm) goes through.
//!
//! Adding a scheme — component-aware branching, weighted variants,
//! batched sub-tree hand-off — is now a ~50-line policy file (see
//! [`stealing`](crate::stealing) for the template) instead of a fork
//! of the whole traversal.

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::exec::ParallelExecutor;
use parvc_simgpu::obs::ObservedExec;
use parvc_simgpu::runtime::{run_blocks, BlockCtx};
use parvc_simgpu::{CostModel, DeviceSpec, LaunchConfig};

use crate::connect::{ConnPool, Connectivity};
use crate::extensions::Extensions;
use crate::ops::Kernel;
use crate::scratch::BlockScratch;
use crate::shared::{
    BoundKind, BoundSrc, Deadline, GlobalBest, PvcFound, RawParallel, RawParallelPvc, RawWeighted,
    WeightedBest,
};
use crate::split::{self, PendingSplit, SplitVerdict};
use crate::TreeNode;

/// Which problem a traversal solves, and what ends it: MVC (weighted
/// or not) improves a global best until the tree is exhausted; PVC
/// stops at the first cover of size ≤ `k` (§II-B).
#[derive(Debug, Clone)]
pub enum SearchMode {
    /// Minimum vertex cover, seeded with an initial `(size, cover)`
    /// upper bound (normally the greedy approximation, Figure 1
    /// line 1).
    Mvc {
        /// The seed `(size, witness)` for the global best.
        initial: (u32, Vec<VertexId>),
    },
    /// Minimum **weight** vertex cover over the graph's weight channel
    /// ([`CsrGraph::weight`]), seeded with an initial
    /// `(weight, cover)` upper bound (normally
    /// [`greedy_weighted_mvc`](crate::greedy::greedy_weighted_mvc)).
    /// The traversal loop is byte-for-byte the MVC loop; only the
    /// bound arithmetic and the reduction rules' inclusion gates run
    /// in weight units (see [`crate::bound::SearchBound::WeightedMvc`]).
    /// On a graph without weights this degenerates to MVC exactly.
    WeightedMvc {
        /// The seed `(weight, witness)` for the global best.
        initial: (u64, Vec<VertexId>),
    },
    /// Parameterized vertex cover: find any cover of size ≤ `k`.
    Pvc {
        /// The parameter `k`.
        k: u32,
    },
}

impl SearchMode {
    /// The §IV-E per-block stack depth bound: the search can add at
    /// most `budget + 1` branch levels below the root (and never more
    /// than `|V|` — in weighted mode a weight budget of `t` admits at
    /// most `t` vertices, each weighing ≥ 1), so pre-allocating this
    /// much can never overflow.
    pub fn depth_bound(&self, g: &CsrGraph) -> usize {
        let budget: u64 = match *self {
            SearchMode::Mvc { initial: (size, _) } => size as u64,
            SearchMode::WeightedMvc {
                initial: (weight, _),
            } => weight,
            SearchMode::Pvc { k } => k as u64,
        };
        budget.min(g.num_vertices() as u64) as usize + 2
    }

    /// Whether this mode's bound runs in weight units.
    pub fn is_weighted(&self) -> bool {
        matches!(self, SearchMode::WeightedMvc { .. })
    }
}

/// What [`Engine::solve`] returns: the raw launch result of the mode
/// it ran.
pub enum SearchOutcome {
    /// Result of a [`SearchMode::Mvc`] run.
    Mvc(RawParallel),
    /// Result of a [`SearchMode::WeightedMvc`] run.
    Weighted(RawWeighted),
    /// Result of a [`SearchMode::Pvc`] run.
    Pvc(RawParallelPvc),
}

/// Why a block's traversal loop ended — policies translate this into
/// their termination protocol (signal peers, charge the Figure 6
/// `Terminate` activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCause {
    /// The deadline expired or a peer ended the search (PVC found
    /// flag) — checked at the top of every iteration, like the
    /// paper's extra PVC condition "before line 4".
    Aborted,
    /// [`SchedulePolicy::next`] produced nothing: this block can never
    /// obtain work again.
    Exhausted,
    /// This block's own solution ended the whole search (PVC).
    SolutionFound,
}

/// Where the next tree node comes from and where branched children go
/// — the *only* thing that distinguishes the paper's code versions.
///
/// One policy instance exists per thread block and lives for the whole
/// launch; shared scheduling state (worklists, steal targets, sub-tree
/// counters) lives in the corresponding [`PolicyFactory`].
pub trait SchedulePolicy {
    /// Produces the block's next tree node, or `None` when the block
    /// is permanently out of work. May traverse on its own account
    /// (StackOnly's root-to-sub-tree descent does, charging its visits
    /// to `counters`) and may block (the Hybrid worklist's §IV-C wait
    /// loop does).
    fn next(
        &mut self,
        kernel: &Kernel<'_>,
        bound: BoundSrc<'_>,
        counters: &mut BlockCounters,
    ) -> Option<TreeNode>;

    /// Places the branched remove-`N(vmax)` child produced by the last
    /// acquired node. Called while the block still owns in-flight work,
    /// so queue-based policies may rely on their outstanding-work token
    /// being held.
    fn dispose(&mut self, child: TreeNode, kernel: &Kernel<'_>, counters: &mut BlockCounters);

    /// The block is exiting for `cause`; settle termination signalling
    /// and final accounting.
    fn on_exit(&mut self, cause: ExitCause, kernel: &Kernel<'_>, counters: &mut BlockCounters);

    /// Offered a tree node whose residual graph disconnected (a
    /// **component-sum node** — see [`crate::split`]), before the
    /// engine solves its components inline.
    ///
    /// Return `Ok(())` to take ownership: the policy must then ensure
    /// every component is eventually solved and the combined solution
    /// re-enters the traversal (the `ComponentSteal` policy queues the
    /// components as stealable work units). Return `Err(split)` — the
    /// default — to decline, and the engine solves the components
    /// inline on this block.
    fn adopt_split(
        &mut self,
        split: PendingSplit,
        _kernel: &Kernel<'_>,
        _counters: &mut BlockCounters,
    ) -> Result<(), PendingSplit> {
        Err(split)
    }
}

/// Per-launch constructor and shared state of a scheduling scheme.
///
/// The engine calls [`seed`](PolicyFactory::seed) once with the root
/// tree node before any block runs, then
/// [`block_policy`](PolicyFactory::block_policy) once per block.
pub trait PolicyFactory: Sync {
    /// Receives the root node before launch. Queue-backed policies
    /// enqueue it; policies that re-derive roots (StackOnly descends
    /// from the root itself) drop it.
    fn seed(&self, root: TreeNode);

    /// Builds the per-block policy. `depth_bound` is the §IV-E stack
    /// sizing (see [`SearchMode::depth_bound`]).
    fn block_policy<'s>(
        &'s self,
        ctx: BlockCtx,
        depth_bound: usize,
    ) -> Box<dyn SchedulePolicy + 's>;
}

/// Observation hooks threaded through the engine (and into every
/// block's [`Kernel`]): the telemetry sink, the progress heartbeat,
/// and whether blocks record their model-cycle span log. Pure
/// observation — results, charges, and counters are identical whether
/// these are on or [`OFF`](EngineObs::OFF) (the telemetry-safety suite
/// pins this).
#[derive(Clone, Copy)]
pub struct EngineObs<'a> {
    /// Telemetry sink for wall-clock spans and metrics.
    pub sink: &'a dyn parvc_obs::Sink,
    /// Progress heartbeat, ticked once per tree node.
    pub progress: Option<&'a crate::progress::Heartbeat>,
    /// Record per-block model-cycle span logs
    /// ([`BlockCounters::enable_tracing`]) even on inline single-block
    /// runs, where no [`LaunchConfig`] carries the flag.
    pub model_trace: bool,
}

impl EngineObs<'static> {
    /// Everything off: the no-op sink, no heartbeat, no model trace.
    pub const OFF: EngineObs<'static> = EngineObs {
        sink: &parvc_obs::NOOP,
        progress: None,
        model_trace: false,
    };
}

impl Default for EngineObs<'static> {
    fn default() -> Self {
        EngineObs::OFF
    }
}

/// One block's whole traversal: the Figure 1 / Figure 4 loop with the
/// scheduling decisions delegated to `policy`.
///
/// Child order follows Figure 1: the remove-`N(vmax)` child is handed
/// to [`SchedulePolicy::dispose`] and the block continues in place
/// with the remove-`vmax` child.
pub fn drive_block(
    kernel: &Kernel<'_>,
    bound: BoundSrc<'_>,
    policy: &mut dyn SchedulePolicy,
    counters: &mut BlockCounters,
) {
    let mut current: Option<TreeNode> = None;
    // The block's incremental connectivity tracker (the union-find
    // split backend): stays warm along in-place descents, falls back
    // to a rebuild when a policy-acquired node jumps elsewhere in the
    // tree. Unused (and never updated) by the BFS backend.
    let mut conn = Connectivity::new();
    // Per-block phase scratch and the tracker-reuse pool for nested
    // component sub-searches: allocated once per block, reused across
    // every tree node this block processes.
    let mut scratch = BlockScratch::new();
    let mut pool = ConnPool::new();
    loop {
        if bound.should_abort() {
            policy.on_exit(ExitCause::Aborted, kernel, counters);
            return;
        }
        // Next node: the in-flight remove-vmax child, else ask the
        // policy (Figure 4 lines 4–10).
        let mut node = match current.take() {
            Some(n) => n,
            None => match policy.next(kernel, bound, counters) {
                Some(n) => n,
                None => {
                    policy.on_exit(ExitCause::Exhausted, kernel, counters);
                    return;
                }
            },
        };

        // The shared step: reduce, check, branch (lines 11 onward).
        counters.tree_nodes_visited += 1;
        if let Some(hb) = kernel.progress {
            hb.tick(&bound);
        }
        let track = counters.block_id + 1;
        let t_reduce = parvc_obs::SpanTimer::start(kernel.sink);
        kernel.reduce(&mut node, bound.bound(), &mut scratch, counters);
        t_reduce.finish(kernel.sink, "engine", "reduce", track, node.len() as u64);
        if kernel.prune(&node, bound.bound(), &mut scratch) {
            continue;
        }
        // Component-sum nodes (see [`crate::split`]): when the
        // reductions disconnected the residual graph, the components
        // are independent sub-problems whose optima sum. The policy may
        // adopt the split (donate components as work units); otherwise
        // the block solves them inline and the combined cover flows
        // through the ordinary solution machinery.
        if let Some(params) = kernel.ext.component_branching {
            if let Some(comps) = split::detect_components(
                kernel,
                &node,
                params,
                &mut conn,
                counters,
                bound.bound().is_weighted(),
            ) {
                let pending = PendingSplit {
                    parent: node,
                    comps,
                };
                match policy.adopt_split(pending, kernel, counters) {
                    Ok(()) => continue,
                    Err(pending) => {
                        let verdict = split::solve_split(
                            kernel,
                            &pending.parent,
                            bound.bound(),
                            &pending.comps,
                            &mut || bound.should_abort(),
                            &mut scratch,
                            &mut pool,
                            counters,
                            params.max_depth,
                        );
                        if let SplitVerdict::Solved(combined) = verdict {
                            if !kernel.prune(&combined, bound.bound(), &mut scratch)
                                && bound.on_solution(&combined)
                            {
                                policy.on_exit(ExitCause::SolutionFound, kernel, counters);
                                return;
                            }
                        }
                        continue;
                    }
                }
            }
        }
        let vmax = match kernel.find_max_degree(&node, counters) {
            // Zero-vertex graph, or an edgeless intermediate graph:
            // S is a cover (Figure 4 lines 17–19).
            None => {
                if bound.on_solution(&node) {
                    policy.on_exit(ExitCause::SolutionFound, kernel, counters);
                    return;
                }
                continue;
            }
            Some(v) if node.degree(v) == 0 => {
                if bound.on_solution(&node) {
                    policy.on_exit(ExitCause::SolutionFound, kernel, counters);
                    return;
                }
                continue;
            }
            Some(v) => v,
        };

        // Branch (lines 20–29): the remove-N(vmax) child goes to the
        // policy, the remove-vmax child continues in place.
        let t_branch = parvc_obs::SpanTimer::start(kernel.sink);
        let mut left = node.clone();
        kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, counters);
        policy.dispose(left, kernel, counters);
        kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, counters);
        t_branch.finish(kernel.sink, "engine", "branch", track, vmax as u64);
        current = Some(node);
    }
}

/// The parameterized solve entry point: a graph, an execution shape,
/// and a scheduling policy.
///
/// `config: None` runs a single block inline on the calling thread
/// with `B = 1` (the Sequential baseline's execution shape);
/// `config: Some(_)` launches the full resident grid via
/// [`run_blocks`].
pub struct Engine<'a> {
    /// The immutable original graph.
    pub graph: &'a CsrGraph,
    /// The simulated device (SM count feeds per-SM aggregation).
    pub device: &'a DeviceSpec,
    /// The launch shape, or `None` for inline single-block execution.
    pub config: Option<&'a LaunchConfig>,
    /// Cycle prices.
    pub cost: &'a CostModel,
    /// Wall-clock budget shared by every block.
    pub deadline: &'a Deadline,
    /// Optional reduction/pruning extensions.
    pub ext: Extensions,
    /// How each block's intra-block flat passes actually execute
    /// ([`crate::ExecutorSpec`]): inline, or chunked across a worker
    /// pool. Purely a wall-clock knob — results and counters are
    /// executor-invariant by the `parvc_simgpu::exec` contract.
    pub exec: &'a dyn ParallelExecutor,
    /// Observation hooks ([`EngineObs::OFF`] = fully silent).
    pub obs: EngineObs<'a>,
}

impl Engine<'_> {
    /// Runs `mode` under `factory`'s scheduling scheme.
    ///
    /// This is the layer below [`Solver`](crate::Solver): you pick the
    /// policy factory and execution shape yourself. Inline single-block
    /// execution with the Sequential policy is the minimal setup:
    ///
    /// ```
    /// use parvc_core::engine::{Engine, SearchMode, SearchOutcome};
    /// use parvc_core::greedy::greedy_mvc;
    /// use parvc_core::sequential::SequentialFactory;
    /// use parvc_core::shared::Deadline;
    /// use parvc_core::Extensions;
    /// use parvc_graph::gen;
    /// use parvc_simgpu::{CostModel, DeviceSpec};
    ///
    /// let g = gen::petersen();
    /// let (device, cost) = (DeviceSpec::scaled(1), CostModel::default());
    /// let deadline = Deadline::new(None);
    /// let engine = Engine {
    ///     graph: &g,
    ///     device: &device,
    ///     config: None, // single block, inline on this thread
    ///     cost: &cost,
    ///     deadline: &deadline,
    ///     ext: Extensions::NONE,
    ///     exec: &parvc_simgpu::exec::SERIAL,
    ///     obs: parvc_core::engine::EngineObs::OFF,
    /// };
    /// let mode = SearchMode::Mvc { initial: greedy_mvc(&g) };
    /// let SearchOutcome::Mvc(raw) = engine.solve(&SequentialFactory::new(), mode) else {
    ///     unreachable!("MVC mode returns an MVC outcome");
    /// };
    /// assert_eq!(raw.best_size, 6); // Petersen's minimum vertex cover
    /// ```
    pub fn solve(&self, factory: &dyn PolicyFactory, mode: SearchMode) -> SearchOutcome {
        let depth_bound = mode.depth_bound(self.graph);
        match mode {
            SearchMode::Mvc { initial } => {
                let best = GlobalBest::new(initial.0, initial.1);
                let bound = BoundSrc {
                    kind: BoundKind::Mvc(&best),
                    deadline: self.deadline,
                };
                let blocks = self.run(factory, bound, depth_bound);
                let (best_size, best_cover) = best.into_result();
                SearchOutcome::Mvc(RawParallel {
                    best_size,
                    best_cover,
                    blocks,
                })
            }
            SearchMode::WeightedMvc { initial } => {
                let best = WeightedBest::new(initial.0, initial.1);
                let bound = BoundSrc {
                    kind: BoundKind::WeightedMvc(&best),
                    deadline: self.deadline,
                };
                let blocks = self.run(factory, bound, depth_bound);
                let (best_weight, best_cover) = best.into_result();
                SearchOutcome::Weighted(RawWeighted {
                    best_weight,
                    best_cover,
                    blocks,
                })
            }
            SearchMode::Pvc { k } => {
                let found = PvcFound::new();
                let bound = BoundSrc {
                    kind: BoundKind::Pvc { k, found: &found },
                    deadline: self.deadline,
                };
                let blocks = self.run(factory, bound, depth_bound);
                SearchOutcome::Pvc(RawParallelPvc {
                    cover: found.into_result(),
                    blocks,
                })
            }
        }
    }

    /// [`solve`](Self::solve) for MVC, unwrapped.
    pub fn solve_mvc(
        &self,
        factory: &dyn PolicyFactory,
        initial: (u32, Vec<VertexId>),
    ) -> RawParallel {
        match self.solve(factory, SearchMode::Mvc { initial }) {
            SearchOutcome::Mvc(raw) => raw,
            _ => unreachable!("MVC mode returns an MVC outcome"),
        }
    }

    /// [`solve`](Self::solve) for weighted MVC, unwrapped.
    pub fn solve_weighted_mvc(
        &self,
        factory: &dyn PolicyFactory,
        initial: (u64, Vec<VertexId>),
    ) -> RawWeighted {
        match self.solve(factory, SearchMode::WeightedMvc { initial }) {
            SearchOutcome::Weighted(raw) => raw,
            _ => unreachable!("weighted mode returns a weighted outcome"),
        }
    }

    /// [`solve`](Self::solve) for PVC, unwrapped.
    pub fn solve_pvc(&self, factory: &dyn PolicyFactory, k: u32) -> RawParallelPvc {
        match self.solve(factory, SearchMode::Pvc { k }) {
            SearchOutcome::Pvc(raw) => raw,
            _ => unreachable!("PVC mode returns a PVC outcome"),
        }
    }

    fn run(
        &self,
        factory: &dyn PolicyFactory,
        bound: BoundSrc<'_>,
        depth_bound: usize,
    ) -> Vec<BlockCounters> {
        factory.seed(TreeNode::root(self.graph));
        let obs = self.obs;
        match self.config {
            None => {
                // Observed runs route the executor through the
                // recording decorator; disabled runs keep the bare
                // reference — zero extra hops on the default path.
                let oexec;
                let exec: &dyn ParallelExecutor = if obs.sink.enabled() {
                    oexec = ObservedExec::new(self.exec, obs.sink, 1);
                    &oexec
                } else {
                    self.exec
                };
                let kernel = Kernel {
                    ext: self.ext,
                    exec,
                    sink: obs.sink,
                    progress: obs.progress,
                    ..Kernel::sequential(self.graph, self.cost)
                };
                let ctx = BlockCtx {
                    block_id: 0,
                    sm_id: 0,
                    block_size: 1,
                };
                let mut counters = BlockCounters::new(0);
                if obs.model_trace {
                    counters.enable_tracing();
                }
                let mut policy = factory.block_policy(ctx, depth_bound);
                let t_block = parvc_obs::SpanTimer::start(obs.sink);
                drive_block(&kernel, bound, policy.as_mut(), &mut counters);
                t_block.finish(obs.sink, "engine", "block", 1, counters.tree_nodes_visited);
                obs.sink
                    .counter("engine.nodes", counters.tree_nodes_visited);
                vec![counters]
            }
            Some(config) => run_blocks(self.device, config, |ctx, counters| {
                let oexec;
                let exec: &dyn ParallelExecutor = if obs.sink.enabled() {
                    oexec = ObservedExec::new(self.exec, obs.sink, ctx.block_id + 1);
                    &oexec
                } else {
                    self.exec
                };
                let kernel = Kernel {
                    graph: self.graph,
                    cost: self.cost,
                    block_size: ctx.block_size,
                    variant: config.variant,
                    ext: self.ext,
                    exec,
                    sink: obs.sink,
                    progress: obs.progress,
                };
                let mut policy = factory.block_policy(ctx, depth_bound);
                let t_block = parvc_obs::SpanTimer::start(obs.sink);
                drive_block(&kernel, bound, policy.as_mut(), counters);
                t_block.finish(
                    obs.sink,
                    "engine",
                    "block",
                    ctx.block_id + 1,
                    counters.tree_nodes_visited,
                );
                obs.sink
                    .counter("engine.nodes", counters.tree_nodes_visited);
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::greedy::greedy_mvc;
    use crate::sequential::SequentialFactory;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;
    use parvc_simgpu::exec::SERIAL;

    fn engine<'a>(
        g: &'a CsrGraph,
        device: &'a DeviceSpec,
        cost: &'a CostModel,
        deadline: &'a Deadline,
    ) -> Engine<'a> {
        Engine {
            graph: g,
            device,
            config: None,
            cost,
            deadline,
            ext: Extensions::NONE,
            exec: &SERIAL,
            obs: EngineObs::OFF,
        }
    }

    fn seq_mvc(g: &CsrGraph, initial: (u32, Vec<u32>)) -> RawParallel {
        let device = DeviceSpec::scaled(1);
        let cost = CostModel::default();
        let deadline = Deadline::new(None);
        engine(g, &device, &cost, &deadline).solve_mvc(&SequentialFactory::new(), initial)
    }

    #[test]
    fn depth_bound_caps_at_vertex_count() {
        let g = gen::cycle(6);
        let mode = SearchMode::Mvc {
            initial: (u32::MAX, (0..6).collect()),
        };
        assert_eq!(mode.depth_bound(&g), 8);
        assert_eq!(SearchMode::Pvc { k: 2 }.depth_bound(&g), 4);
    }

    #[test]
    fn engine_matches_brute_force_through_sequential_policy() {
        for seed in 0..8 {
            let g = gen::gnp(13, 0.35, seed);
            let (opt, _) = brute_force_mvc(&g);
            let raw = seq_mvc(&g, greedy_mvc(&g));
            assert_eq!(raw.best_size, opt, "seed {seed}");
            assert!(is_vertex_cover(&g, &raw.best_cover));
        }
    }

    #[test]
    fn pvc_mode_stops_at_first_cover() {
        let g = gen::petersen();
        let device = DeviceSpec::scaled(1);
        let cost = CostModel::default();
        let deadline = Deadline::new(None);
        let raw = engine(&g, &device, &cost, &deadline).solve_pvc(&SequentialFactory::new(), 6);
        let cover = raw.cover.expect("petersen has a 6-cover");
        assert!(cover.len() <= 6);
        assert!(is_vertex_cover(&g, &cover));
        let none = engine(&g, &device, &cost, &deadline).solve_pvc(&SequentialFactory::new(), 5);
        assert!(none.cover.is_none(), "petersen has no 5-cover");
    }

    #[test]
    fn expired_deadline_returns_the_seed_bound() {
        let g = gen::p_hat_complement(60, 2, 5);
        let device = DeviceSpec::scaled(1);
        let cost = CostModel::default();
        let deadline = Deadline::new(Some(std::time::Duration::ZERO));
        let greedy = greedy_mvc(&g);
        let raw = engine(&g, &device, &cost, &deadline)
            .solve_mvc(&SequentialFactory::new(), greedy.clone());
        assert!(deadline.was_hit());
        assert_eq!(
            raw.best_size, greedy.0,
            "no better cover can appear in zero time"
        );
        // At most the root is visited before the abort check fires.
        assert!(raw.blocks[0].tree_nodes_visited <= 1);
    }
}
