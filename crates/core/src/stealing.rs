//! The WorkStealing scheme — per-block deques with steal-based
//! balancing — as a [`SchedulePolicy`].
//!
//! The proof that the engine's policy seam is real: this entire fourth
//! scheme (beyond the paper's three) is the ~50 lines below plus the
//! [`StealPool`] substrate. Each block's DFS stack *is* its deque —
//! every branched child pushed to the back is implicitly donated,
//! because a starving peer can steal it from the front (the
//! shallowest, and therefore largest, pending sub-tree). Compared to
//! the Hybrid worklist there is no donation threshold to tune and no
//! single queue to contend on; the price is synchronization on the
//! owner's own push/pop path.
//!
//! Counter semantics mirror the other parallel policies so Figures 5
//! and 6 stay comparable: own-deque traffic is charged as stack
//! pushes/pops, steals as worklist removes, and successful steals
//! count toward `nodes_from_worklist`.

use std::time::Duration;

use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::runtime::BlockCtx;
use parvc_worklist::{StealHandle, StealOutcome, StealPool, StealSource};

use crate::engine::{ExitCause, PolicyFactory, SchedulePolicy};
use crate::ops::Kernel;
use crate::shared::BoundSrc;
use crate::TreeNode;

/// WorkStealing tuning knobs.
#[derive(Debug, Clone)]
pub struct StealParams {
    /// Starved-block poll sleep between steal scans.
    pub poll_sleep: Duration,
}

impl Default for StealParams {
    fn default() -> Self {
        StealParams {
            poll_sleep: Duration::from_micros(50),
        }
    }
}

/// Shared state: one deque per block in the launch grid.
pub struct StealFactory {
    pool: StealPool<TreeNode>,
}

impl StealFactory {
    /// A fresh factory for a launch of `workers` blocks (one per
    /// solve). `depth_hint` pre-sizes each deque (§IV-E).
    pub fn new(workers: usize, depth_hint: usize, params: &StealParams) -> Self {
        let mut pool = StealPool::new(workers, depth_hint);
        pool.set_poll_sleep(params.poll_sleep);
        StealFactory { pool }
    }
}

impl PolicyFactory for StealFactory {
    fn seed(&self, root: TreeNode) {
        self.pool.seed(0, root);
    }

    fn block_policy<'s>(
        &'s self,
        ctx: BlockCtx,
        _depth_bound: usize,
    ) -> Box<dyn SchedulePolicy + 's> {
        Box::new(StealPolicy {
            pool: &self.pool,
            handle: self.pool.handle(ctx.block_id as usize),
        })
    }
}

/// One block's view: its own deque plus its peers as steal targets.
pub struct StealPolicy<'a> {
    pool: &'a StealPool<TreeNode>,
    handle: StealHandle<'a, TreeNode>,
}

impl SchedulePolicy for StealPolicy<'_> {
    fn next(
        &mut self,
        kernel: &Kernel<'_>,
        _bound: BoundSrc<'_>,
        counters: &mut BlockCounters,
    ) -> Option<TreeNode> {
        let (outcome, stats) = self.handle.pop_with_stats();
        match outcome {
            StealOutcome::Item(n, StealSource::Own) => {
                kernel.charge_node_copy(n.len(), Activity::PopFromStack, counters);
                Some(n)
            }
            StealOutcome::Item(n, StealSource::Stolen { victim }) => {
                // A steal pays like a worklist remove: the scan
                // attempts, the starvation naps, and the node copy.
                counters.charge(
                    Activity::RemoveFromWorklist,
                    stats.attempts * kernel.cost.queue_op + stats.sleeps * kernel.cost.poll_sleep,
                );
                counters.nodes_from_worklist += 1;
                counters.record_steal(victim as u32);
                if kernel.sink.enabled() {
                    parvc_obs::instant(
                        kernel.sink,
                        "steal",
                        "steal",
                        counters.block_id + 1,
                        victim as u64,
                    );
                    kernel.sink.counter("steal.steals", 1);
                }
                kernel.charge_node_copy(n.len(), Activity::RemoveFromWorklist, counters);
                Some(n)
            }
            StealOutcome::Done => {
                counters.charge(
                    Activity::RemoveFromWorklist,
                    stats.attempts * kernel.cost.queue_op + stats.sleeps * kernel.cost.poll_sleep,
                );
                None
            }
        }
    }

    fn dispose(&mut self, child: TreeNode, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        kernel.charge_node_copy(child.len(), Activity::PushToStack, counters);
        counters.charge(Activity::PushToStack, kernel.cost.atomic_op);
        let depth = self.handle.push(child);
        counters.max_stack_depth = counters.max_stack_depth.max(depth as u64);
    }

    fn on_exit(&mut self, cause: ExitCause, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        match cause {
            ExitCause::Aborted => {
                self.pool.signal_done();
                counters.charge(Activity::Terminate, kernel.cost.atomic_op);
            }
            ExitCause::Exhausted => {
                counters.charge(Activity::Terminate, kernel.cost.queue_op);
            }
            ExitCause::SolutionFound => {
                self.pool.signal_done();
            }
        }
    }
}
