//! The degree-array intermediate graph (§IV-B).
//!
//! A tree node `(G', S)` of the vertex-cover search tree is represented
//! *jointly* by a degree array over the original vertices: a live vertex
//! stores its degree in the current intermediate graph; a vertex removed
//! into the solution stores the sentinel [`REMOVED`]. Together with the
//! immutable CSR original this is **self-contained** — any thread block
//! can pick the node up from the global worklist and reconstruct every
//! adjacency — and **compact** (`O(|V|)`), which is what keeps the
//! per-block stacks and the worklist from exhausting device memory.
//!
//! Two counters ride along, both paper optimizations: the cover size
//! `|S|` (instead of counting sentinels with a reduction) and the live
//! edge count `|E'|` (for the stopping condition's edge test).

use parvc_graph::{CsrGraph, VertexId};

/// Sentinel degree marking a vertex removed from the graph and added to
/// the cover.
pub const REMOVED: i32 = -1;

/// One node of the search tree: an intermediate graph plus its partial
/// cover, in degree-array form.
#[derive(Clone, PartialEq, Eq)]
pub struct TreeNode {
    degrees: Box<[i32]>,
    cover_size: u32,
    cover_weight: u64,
    num_edges: u64,
}

impl TreeNode {
    /// The root node: the whole graph, empty cover.
    pub fn root(g: &CsrGraph) -> Self {
        let degrees: Box<[i32]> = g.vertices().map(|v| g.degree(v) as i32).collect();
        TreeNode {
            degrees,
            cover_size: 0,
            cover_weight: 0,
            num_edges: g.num_edges(),
        }
    }

    /// Number of vertex slots (original `|V|`).
    #[inline]
    pub fn len(&self) -> u32 {
        self.degrees.len() as u32
    }

    /// Whether the original graph had no vertices.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Current degree of `v`, or [`REMOVED`].
    #[inline]
    pub fn degree(&self, v: VertexId) -> i32 {
        self.degrees[v as usize]
    }

    /// Whether `v` has been removed into the cover.
    #[inline]
    pub fn is_removed(&self, v: VertexId) -> bool {
        self.degrees[v as usize] == REMOVED
    }

    /// `|S|` — vertices removed into the cover so far.
    #[inline]
    pub fn cover_size(&self) -> u32 {
        self.cover_size
    }

    /// `w(S)` — total weight of the cover so far, maintained from the
    /// graph's weight channel by
    /// [`remove_into_cover`](Self::remove_into_cover). Equals
    /// [`cover_size`](Self::cover_size) on unweighted graphs (every
    /// weight is 1), so weighted and unweighted bound arithmetic share
    /// this one counter.
    #[inline]
    pub fn cover_weight(&self) -> u64 {
        self.cover_weight
    }

    /// `|E'|` — edges remaining in the intermediate graph.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Whether the intermediate graph is edgeless — i.e. `S` is now a
    /// vertex cover (Figure 1 line 7 / Figure 4 line 17).
    #[inline]
    pub fn is_edgeless(&self) -> bool {
        self.num_edges == 0
    }

    /// Removes live vertex `v` into the cover, decrementing its live
    /// neighbors' degrees. Returns the degree `v` had.
    ///
    /// This is the *mechanism* shared by branching and every reduction
    /// rule; callers charge its cost to the appropriate activity.
    pub fn remove_into_cover(&mut self, g: &CsrGraph, v: VertexId) -> u32 {
        let d = self.degrees[v as usize];
        debug_assert!(d >= 0, "removing already-removed vertex {v}");
        self.degrees[v as usize] = REMOVED;
        self.cover_size += 1;
        self.cover_weight += g.weight(v);
        self.num_edges -= d as u64;
        if d > 0 {
            for &u in g.neighbors(v) {
                let du = &mut self.degrees[u as usize];
                if *du >= 0 {
                    *du -= 1;
                }
            }
        }
        d as u32
    }

    /// First live neighbor of `v` (for the degree-one rule), if any.
    pub fn live_neighbor(&self, g: &CsrGraph, v: VertexId) -> Option<VertexId> {
        g.neighbors(v)
            .iter()
            .copied()
            .find(|&u| !self.is_removed(u))
    }

    /// The (up to `cap`) live neighbors of `v`.
    pub fn live_neighbors<'a>(
        &'a self,
        g: &'a CsrGraph,
        v: VertexId,
    ) -> impl Iterator<Item = VertexId> + 'a {
        g.neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| !self.is_removed(u))
    }

    /// The cover vertices (every slot holding [`REMOVED`]).
    pub fn cover_vertices(&self) -> Vec<VertexId> {
        (0..self.len()).filter(|&v| self.is_removed(v)).collect()
    }

    /// Bytes this node occupies — the §III-C memory-pressure quantity.
    pub fn memory_bytes(&self) -> usize {
        self.degrees.len() * std::mem::size_of::<i32>() + 16
    }

    /// Verifies the counters and degrees against a recomputation from
    /// the CSR graph. Test / debug aid.
    pub fn check_consistency(&self, g: &CsrGraph) -> Result<(), String> {
        if g.num_vertices() != self.len() {
            return Err("vertex count mismatch".into());
        }
        let mut edges = 0u64;
        let mut removed = 0u32;
        let mut removed_weight = 0u64;
        for v in g.vertices() {
            if self.is_removed(v) {
                removed += 1;
                removed_weight += g.weight(v);
                continue;
            }
            let live_deg = self.live_neighbors(g, v).count() as i32;
            if live_deg != self.degree(v) {
                return Err(format!(
                    "vertex {v}: stored degree {} but {live_deg} live neighbors",
                    self.degree(v)
                ));
            }
            edges += live_deg as u64;
        }
        if removed != self.cover_size {
            return Err(format!(
                "cover_size {} but {removed} sentinels",
                self.cover_size
            ));
        }
        if removed_weight != self.cover_weight {
            return Err(format!(
                "cover_weight {} but sentinels weigh {removed_weight}",
                self.cover_weight
            ));
        }
        if edges / 2 != self.num_edges {
            return Err(format!(
                "num_edges {} but recount {}",
                self.num_edges,
                edges / 2
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for TreeNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeNode")
            .field("len", &self.len())
            .field("cover_size", &self.cover_size)
            .field("cover_weight", &self.cover_weight)
            .field("num_edges", &self.num_edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    #[test]
    fn root_mirrors_graph() {
        let g = gen::paper_example();
        let n = TreeNode::root(&g);
        assert_eq!(n.len(), 5);
        assert_eq!(n.cover_size(), 0);
        assert_eq!(n.num_edges(), 6);
        assert_eq!(n.degree(2), 4);
        n.check_consistency(&g).unwrap();
    }

    #[test]
    fn remove_updates_neighbors_and_counters() {
        let g = gen::paper_example();
        let mut n = TreeNode::root(&g);
        let d = n.remove_into_cover(&g, 2); // the hub c
        assert_eq!(d, 4);
        assert_eq!(n.cover_size(), 1);
        assert_eq!(n.num_edges(), 2); // ab and de remain
        assert!(n.is_removed(2));
        assert_eq!(n.degree(0), 1);
        assert_eq!(n.degree(3), 1);
        n.check_consistency(&g).unwrap();
    }

    #[test]
    fn removing_all_yields_edgeless() {
        let g = gen::complete(4);
        let mut n = TreeNode::root(&g);
        for v in 0..3 {
            n.remove_into_cover(&g, v);
        }
        assert!(n.is_edgeless());
        assert_eq!(n.cover_size(), 3);
        assert_eq!(n.degree(3), 0); // live but isolated
        assert_eq!(n.cover_vertices(), vec![0, 1, 2]);
        n.check_consistency(&g).unwrap();
    }

    #[test]
    fn cover_weight_tracks_graph_weights() {
        let g = gen::path(4).with_weights(vec![2, 7, 3, 1]).unwrap();
        let mut n = TreeNode::root(&g);
        assert_eq!(n.cover_weight(), 0);
        n.remove_into_cover(&g, 1);
        n.remove_into_cover(&g, 2);
        assert_eq!(n.cover_size(), 2);
        assert_eq!(n.cover_weight(), 10);
        n.check_consistency(&g).unwrap();

        // Unweighted: weight mirrors size.
        let u = gen::path(4);
        let mut n = TreeNode::root(&u);
        n.remove_into_cover(&u, 1);
        assert_eq!(n.cover_weight(), n.cover_size() as u64);
    }

    #[test]
    fn live_neighbor_skips_removed() {
        let g = gen::path(4); // 0-1-2-3
        let mut n = TreeNode::root(&g);
        n.remove_into_cover(&g, 1);
        assert_eq!(n.live_neighbor(&g, 2), Some(3));
        assert_eq!(n.live_neighbor(&g, 0), None);
    }

    #[test]
    fn clone_is_independent() {
        let g = gen::cycle(5);
        let a = TreeNode::root(&g);
        let mut b = a.clone();
        b.remove_into_cover(&g, 0);
        assert_eq!(a.cover_size(), 0);
        assert_eq!(b.cover_size(), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn consistency_catches_corruption() {
        let g = gen::cycle(5);
        let mut n = TreeNode::root(&g);
        n.num_edges = 99;
        assert!(n.check_consistency(&g).is_err());
    }

    #[test]
    fn empty_graph_root() {
        let g = parvc_graph::CsrGraph::from_edges(0, &[]).unwrap();
        let n = TreeNode::root(&g);
        assert!(n.is_empty());
        assert!(n.is_edgeless());
    }
}
