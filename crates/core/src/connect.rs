//! Incremental residual connectivity — the union-find backend of
//! in-search component branching (see [`crate::split`]).
//!
//! The BFS baseline re-derives the residual's component structure from
//! scratch at every candidate node: `O(|V| + |E|)` per check, paid even
//! when the check concludes "still connected" — which is the common
//! case, and exactly the overhead arXiv 2512.18334 identifies as the
//! difference between component-aware branching paying for itself and
//! drowning in bookkeeping.
//!
//! [`Connectivity`] instead *caches* the component labels of the last
//! checked node and updates them incrementally. The engine's traversal
//! has strong locality — after a branch it continues in place with the
//! remove-`vmax` child, so consecutive checks usually see a node whose
//! live set **shrank** from the previous one. The update then is:
//!
//! 1. One scan of the degree array diffs the live sets. Any vertex
//!    that *came back to life* proves the node is not a descendant of
//!    the last-checked one (a stack pop or steal jumped elsewhere in
//!    the tree) — the **checkpoint crossing** — and triggers the
//!    dirty-region fallback: a full label rebuild, counted in
//!    [`SplitCounters::uf_rebuilds`](parvc_simgpu::counters::SplitCounters).
//! 2. Otherwise only vertices *died*. Vertex deletions can only split
//!    the components that contained them, so the re-scan is localized:
//!    the **seeds** — live neighbors of the newly dead vertices — start
//!    a multi-source BFS whose fronts are merged with a union-find
//!    (path compression, `O(α)` amortized per operation).
//! 3. The decisive shortcut: if every affected component's seeds merge
//!    into a single region, the component *provably* did not split —
//!    any two survivors were connected through paths whose dead
//!    detours entered and left the dead set via seeds, and the seeds
//!    are mutually connected — so the scan stops immediately, having
//!    touched only the neighborhoods around the deletions. A deletion
//!    whose dead set has a single live neighbor costs `O(1)` beyond
//!    the diff scan: one seed is trivially "all merged".
//!
//! Only when the seeds remain in ≥ 2 regions after the frontier is
//! exhausted did a component genuinely split, and then the work done
//! equals the work of enumerating the new components — which the
//! caller was about to pay for extraction anyway.
//!
//! Every query returns a component count and per-vertex labels
//! identical (up to renaming) to what the from-scratch BFS reports;
//! `tests/split_safety.rs` pins that equivalence across the generator
//! corpus for MVC, PVC, and weighted traversals.

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::exec::{gather_indices, ChunkSlots, ParallelExecutor};
use std::sync::atomic::{AtomicBool, Ordering};

/// Label of a vertex outside the residual (removed into the cover, or
/// live but isolated — degree ≤ 0 either way).
const DEAD: u32 = u32::MAX;

/// Scratch marker: not visited in the current incremental pass.
const UNSET: u32 = u32::MAX;

/// The incremental connectivity tracker. One instance per traversal
/// driver (thread block or bounded sub-search); it is purely a cache —
/// any node may be queried at any time, and the tracker falls back to
/// a full rebuild whenever its history does not cover the node.
#[derive(Debug)]
pub struct Connectivity {
    /// Component label per vertex as of the last completed check
    /// (`DEAD` = outside the residual). Labels are arbitrary `u32`s,
    /// unique per component, *not* necessarily dense.
    label: Vec<u32>,
    /// Number of components at the last check.
    count: u32,
    /// Next unused label value.
    next_label: u32,
    /// Whether `label`/`count` describe any node at all.
    valid: bool,
    /// Full rebuilds performed (the dirty-region fallback).
    rebuilds: u64,
    /// Scratch: per-vertex region id for the current incremental pass
    /// (`UNSET` = untouched); entries are reset via `touched`.
    region: Vec<u32>,
    /// Scratch: vertices whose `region` entry needs resetting.
    touched: Vec<VertexId>,
    /// Scratch: union-find parents over region ids.
    parent: Vec<u32>,
    /// Scratch: BFS queue.
    queue: Vec<VertexId>,
    /// Scratch: the newly-dead vertices of the current diff scan,
    /// reused across updates.
    dead_buf: Vec<VertexId>,
    /// Scratch: per-chunk gather slots for the pooled diff scan.
    slots: ChunkSlots,
}

impl Connectivity {
    /// A fresh, empty tracker.
    pub fn new() -> Self {
        Connectivity {
            label: Vec::new(),
            count: 0,
            next_label: 0,
            valid: false,
            rebuilds: 0,
            region: Vec::new(),
            touched: Vec::new(),
            parent: Vec::new(),
            queue: Vec::new(),
            dead_buf: Vec::new(),
            slots: ChunkSlots::new(),
        }
    }

    /// Full rebuilds performed so far (drained by the caller into
    /// [`SplitCounters::uf_rebuilds`](parvc_simgpu::counters::SplitCounters)).
    pub fn take_rebuilds(&mut self) -> u64 {
        std::mem::take(&mut self.rebuilds)
    }

    /// Drops the cached labels; the next query rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Updates the tracker to the residual described by `live_degree`
    /// (live = degree ≥ 1 over `graph`'s vertex set) and returns
    /// `(component count, work)`, where `work` is vertex reads plus
    /// adjacency entries traversed — the unit the BFS baseline is
    /// measured in, so the two backends' costs compare directly.
    /// `live_degree(v)` must be the tree node's current degree of `v`;
    /// the tracker is generic over the node representation so bounded
    /// sub-searches on extracted component graphs reuse it.
    ///
    /// After the call, [`label`](Self::label) exposes the per-vertex
    /// component labels.
    pub fn update(
        &mut self,
        graph: &CsrGraph,
        live_degree: impl Fn(VertexId) -> i32 + Sync,
        exec: &dyn ParallelExecutor,
    ) -> (u32, u64) {
        let n = graph.num_vertices() as usize;
        let mut work = n as u64; // the diff / classification scan
        if !self.valid || self.label.len() != n {
            work += self.rebuild(graph, &live_degree);
            return (self.count, work);
        }
        // Diff the live sets: a flat classify pass over the degree
        // array (chunked across the executor; `work` is charged as the
        // full scan either way, so the accounting is path-invariant).
        // A resurrection (live now, dead at last check) means this
        // node is not a descendant of the last-checked one: checkpoint
        // crossed, rebuild.
        let resurrected = AtomicBool::new(false);
        let label = &self.label;
        gather_indices(
            exec,
            n,
            &|v| {
                let live = live_degree(v) > 0;
                let was_live = label[v as usize] != DEAD;
                if live && !was_live {
                    resurrected.store(true, Ordering::Relaxed);
                }
                !live && was_live
            },
            &mut self.slots,
            &mut self.dead_buf,
        );
        if resurrected.load(Ordering::Relaxed) {
            work += self.rebuild(graph, &live_degree);
            return (self.count, work);
        }
        if self.dead_buf.is_empty() {
            return (self.count, work);
        }
        let newly_dead = std::mem::take(&mut self.dead_buf);
        work += self.remove(graph, &live_degree, &newly_dead);
        self.dead_buf = newly_dead; // hand the buffer back for reuse
        (self.count, work)
    }

    /// `v`'s component label as of the last [`update`](Self::update),
    /// or `None` when `v` is outside the residual (or the tracker has
    /// never been updated). Labels are unique per component but not
    /// necessarily dense.
    pub fn label(&self, v: VertexId) -> Option<u32> {
        let l = *self.label.get(v as usize)?;
        (l != DEAD).then_some(l)
    }

    /// From-scratch relabeling: BFS per component over the live
    /// residual. Returns the work performed (adjacency entries).
    fn rebuild(&mut self, graph: &CsrGraph, live_degree: &impl Fn(VertexId) -> i32) -> u64 {
        let n = graph.num_vertices() as usize;
        self.rebuilds += 1;
        self.label.clear();
        self.label.resize(n, DEAD);
        self.region.clear();
        self.region.resize(n, UNSET);
        self.touched.clear();
        self.queue.clear();
        let mut work = 0u64;
        let mut count = 0u32;
        for v in 0..n as u32 {
            if live_degree(v) <= 0 || self.label[v as usize] != DEAD {
                continue;
            }
            self.label[v as usize] = count;
            self.queue.push(v);
            while let Some(w) = self.queue.pop() {
                work += graph.neighbors(w).len() as u64;
                for &u in graph.neighbors(w) {
                    if live_degree(u) > 0 && self.label[u as usize] == DEAD {
                        self.label[u as usize] = count;
                        self.queue.push(u);
                    }
                }
            }
            count += 1;
        }
        self.count = count;
        self.next_label = count;
        self.valid = true;
        work
    }

    /// Incremental update for a pure-deletion diff: localized re-scan
    /// of the neighborhoods the deletions touched. Returns the work
    /// performed.
    fn remove(
        &mut self,
        graph: &CsrGraph,
        live_degree: &impl Fn(VertexId) -> i32,
        newly_dead: &[VertexId],
    ) -> u64 {
        let mut work = 0u64;
        // Which components lost vertices, and the seeds (live
        // neighbors of the dead set) that anchor the re-scan. A
        // component is fully dead when it lost vertices but has no
        // seeds. The per-pass component sets are tiny (deletions
        // between checks touch few components), so linear scans beat
        // hashing.
        let mut affected: Vec<u32> = Vec::new();
        let mut comps_with_seeds: Vec<u32> = Vec::new();
        let mut seed_count = 0usize;
        for &v in newly_dead {
            let old = self.label[v as usize];
            debug_assert_ne!(old, DEAD);
            self.label[v as usize] = DEAD;
            if !affected.contains(&old) {
                affected.push(old);
            }
        }
        self.queue.clear();
        for &v in newly_dead {
            work += graph.neighbors(v).len() as u64;
            for &u in graph.neighbors(v) {
                if live_degree(u) > 0 && self.region[u as usize] == UNSET {
                    let c = self.label[u as usize];
                    debug_assert_ne!(c, DEAD, "live vertex without a label");
                    if !comps_with_seeds.contains(&c) {
                        comps_with_seeds.push(c);
                    }
                    let region = self.parent.len() as u32;
                    self.parent.push(region);
                    self.region[u as usize] = region;
                    self.touched.push(u);
                    self.queue.push(u);
                    seed_count += 1;
                }
            }
        }
        let fully_dead = affected
            .iter()
            .filter(|c| !comps_with_seeds.contains(c))
            .count() as u32;
        // `pending` = unions still needed before every affected
        // component's seeds form a single region — the proof that no
        // component split and the scan can stop.
        let mut pending = seed_count - comps_with_seeds.len();
        let mut head = 0usize;
        while pending > 0 && head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let rv = find(&mut self.parent, self.region[v as usize]);
            work += graph.neighbors(v).len() as u64;
            for &u in graph.neighbors(v) {
                if live_degree(u) <= 0 {
                    continue;
                }
                if self.region[u as usize] == UNSET {
                    self.region[u as usize] = rv;
                    self.touched.push(u);
                    self.queue.push(u);
                } else {
                    let ru = find(&mut self.parent, self.region[u as usize]);
                    let rv = find(&mut self.parent, self.region[v as usize]);
                    if ru != rv {
                        self.parent[ru as usize] = rv;
                        pending -= 1;
                        if pending == 0 {
                            break;
                        }
                    }
                }
            }
        }
        if pending == 0 {
            // Early exit: every affected component's survivors are
            // still mutually connected — labels stay as they were.
            self.count -= fully_dead;
        } else {
            // The frontier is exhausted with ≥ 2 regions somewhere: the
            // affected components' survivors are exactly the visited
            // vertices (every survivor reaches a seed through a path
            // whose first dead vertex has a live predecessor), so the
            // final regions ARE the new components. Relabel them.
            debug_assert_eq!(head, self.queue.len());
            let mut fresh: Vec<(u32, u32)> = Vec::new(); // root → new label
            for i in 0..self.touched.len() {
                let v = self.touched[i];
                let root = find(&mut self.parent, self.region[v as usize]);
                let new = match fresh.iter().find(|(r, _)| *r == root) {
                    Some(&(_, l)) => l,
                    None => {
                        let l = self.next_label;
                        self.next_label += 1;
                        fresh.push((root, l));
                        l
                    }
                };
                self.label[v as usize] = new;
            }
            self.count = self.count - affected.len() as u32 + fresh.len() as u32;
            // Label space is effectively inexhaustible (one label per
            // new region), but fall back to dense labels defensively.
            if self.next_label >= DEAD - 1 {
                self.valid = false;
            }
        }
        // Reset the scratch for the next pass.
        for &v in &self.touched {
            self.region[v as usize] = UNSET;
        }
        self.touched.clear();
        self.queue.clear();
        self.parent.clear();
        work
    }
}

impl Default for Connectivity {
    fn default() -> Self {
        Self::new()
    }
}

/// Union-find root with path compression (halving).
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let grand = parent[parent[x as usize] as usize];
        parent[x as usize] = grand;
        x = grand;
    }
    x
}

/// A reuse pool of [`Connectivity`] trackers for nested sub-searches.
///
/// A budgeted component sub-search ([`crate::split`]) runs on its own
/// extracted graph, so its tracker's *labels* can never be shared with
/// the caller's — but the tracker's backing buffers (labels, union-find
/// scratch, BFS queue, gather slots) can. Acquiring from the pool hands
/// back an invalidated tracker whose first check rebuilds into the
/// already-sized allocations instead of growing fresh `Vec`s, so deeply
/// nested splits (and `ComponentSteal`'s per-component sub-searches)
/// stop paying an allocation storm per sub-search.
#[derive(Debug, Default)]
pub struct ConnPool {
    free: Vec<Connectivity>,
}

impl ConnPool {
    /// An empty pool.
    pub fn new() -> Self {
        ConnPool::default()
    }

    /// A tracker for a new sub-search: recycled when one is free,
    /// freshly built otherwise. Always invalidated — the first
    /// connectivity check on the sub-search's graph rebuilds.
    pub fn acquire(&mut self) -> Connectivity {
        let mut conn = self.free.pop().unwrap_or_default();
        conn.invalidate();
        conn
    }

    /// Returns a tracker (and its allocations) to the pool when its
    /// sub-search finishes.
    pub fn release(&mut self, conn: Connectivity) {
        self.free.push(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeNode;
    use parvc_graph::{gen, ops};
    use parvc_simgpu::exec::SERIAL;

    /// Oracle: component count of the residual via the graph library.
    fn oracle_count(g: &CsrGraph, node: &TreeNode) -> u32 {
        let live: Vec<u32> = (0..node.len()).filter(|&v| node.degree(v) > 0).collect();
        if live.is_empty() {
            return 0;
        }
        let (sub, _) = ops::induced_subgraph(g, &live);
        ops::connected_components(&sub).1
    }

    /// Oracle: the partition of live vertices into component member
    /// sets, canonically ordered.
    fn oracle_partition(g: &CsrGraph, node: &TreeNode) -> Vec<Vec<u32>> {
        let live: Vec<u32> = (0..node.len()).filter(|&v| node.degree(v) > 0).collect();
        let (sub, _) = ops::induced_subgraph(g, &live);
        let (comp, count) = ops::connected_components(&sub);
        let mut members = vec![Vec::new(); count as usize];
        for (i, &v) in live.iter().enumerate() {
            members[comp[i] as usize].push(v);
        }
        members.sort();
        members
    }

    /// The tracker's partition after its latest update, canonically
    /// ordered for comparison with the oracle.
    fn tracker_partition(g: &CsrGraph, conn: &Connectivity) -> Vec<Vec<u32>> {
        let mut by_label: Vec<(u32, Vec<u32>)> = Vec::new();
        for v in 0..g.num_vertices() {
            if let Some(l) = conn.label(v) {
                match by_label.iter_mut().find(|(x, _)| *x == l) {
                    Some((_, m)) => m.push(v),
                    None => by_label.push((l, vec![v])),
                }
            }
        }
        let mut members: Vec<Vec<u32>> = by_label.into_iter().map(|(_, m)| m).collect();
        members.sort();
        members
    }

    #[test]
    fn tracks_a_descent_with_splits() {
        // Two triangles joined by a path: removing the path's middle
        // disconnects.
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut node = TreeNode::root(&g);
        let mut conn = Connectivity::new();
        let (count, _) = conn.update(&g, |v| node.degree(v), &SERIAL);
        assert_eq!(count, 1);
        node.remove_into_cover(&g, 3);
        node.remove_into_cover(&g, 4);
        let (count, _) = conn.update(&g, |v| node.degree(v), &SERIAL);
        assert_eq!(count, 2, "removing the bridge path must split");
        assert_eq!(tracker_partition(&g, &conn), oracle_partition(&g, &node));
    }

    #[test]
    fn resurrection_triggers_the_rebuild_fallback() {
        let g = gen::cycle(8);
        let mut conn = Connectivity::new();
        let mut node = TreeNode::root(&g);
        node.remove_into_cover(&g, 0);
        conn.update(&g, |v| node.degree(v), &SERIAL);
        conn.take_rebuilds();
        // Jump to an unrelated node where vertex 0 is live again.
        let fresh = TreeNode::root(&g);
        let (count, _) = conn.update(&g, |v| fresh.degree(v), &SERIAL);
        assert_eq!(count, 1);
        assert_eq!(conn.take_rebuilds(), 1, "the jump must rebuild");
    }

    #[test]
    fn local_deletions_skip_the_full_scan() {
        // A large grid: removing one interior vertex leaves the grid
        // connected, and its four neighbors reconnect around the hole
        // within a few hops — the incremental pass must stop there
        // instead of re-scanning the whole grid.
        let g = gen::grid2d(16, 16);
        let mut conn = Connectivity::new();
        let mut node = TreeNode::root(&g);
        let (_, full) = conn.update(&g, |v| node.degree(v), &SERIAL);
        node.remove_into_cover(&g, 8 * 16 + 8); // an interior vertex
        let (count, incr) = conn.update(&g, |v| node.degree(v), &SERIAL);
        assert_eq!(count, 1, "a grid minus one vertex stays connected");
        assert_eq!(conn.take_rebuilds(), 1, "only the initial build");
        assert!(
            incr < full / 2,
            "incremental pass ({incr}) must beat the full scan ({full})"
        );
    }

    #[test]
    fn random_descents_match_the_oracle() {
        for seed in 0..12u64 {
            let g = gen::sparse_components(40 + (seed % 13) as u32, 7, 0.4, seed);
            let mut node = TreeNode::root(&g);
            let mut conn = Connectivity::new();
            let mut order: Vec<u32> = (0..g.num_vertices()).collect();
            // Deterministic pseudo-shuffle.
            for i in 0..order.len() {
                let j = (seed as usize * 31 + i * 17) % order.len();
                order.swap(i, j);
            }
            for &v in &order {
                if node.degree(v) >= 0 {
                    node.remove_into_cover(&g, v);
                }
                let (count, _) = conn.update(&g, |v| node.degree(v), &SERIAL);
                assert_eq!(
                    count,
                    oracle_count(&g, &node),
                    "seed {seed}: count diverged"
                );
                assert_eq!(
                    tracker_partition(&g, &conn),
                    oracle_partition(&g, &node),
                    "seed {seed}: partition diverged"
                );
            }
        }
    }

    #[test]
    fn empty_and_isolated_residuals() {
        let g = CsrGraph::from_edges(4, &[]).unwrap();
        let mut conn = Connectivity::new();
        let node = TreeNode::root(&g);
        assert_eq!(conn.update(&g, |v| node.degree(v), &SERIAL).0, 0);

        let g = gen::star(4);
        let mut node = TreeNode::root(&g);
        let mut conn = Connectivity::new();
        assert_eq!(conn.update(&g, |v| node.degree(v), &SERIAL).0, 1);
        node.remove_into_cover(&g, 0); // leaves become isolated
        assert_eq!(
            conn.update(&g, |v| node.degree(v), &SERIAL).0,
            0,
            "isolated survivors are outside the residual"
        );
    }
}
