//! The StackOnly scheme — prior work's traversal (\[14\], \[15\], §III) —
//! as a [`SchedulePolicy`].
//!
//! Sub-trees rooted at a fixed `start_depth` are the units of
//! parallelism: there are `2^start_depth` of them, indexed by the
//! branch bits of the path from the root. Blocks grab sub-tree indices
//! from a shared counter (the GPU's block scheduler draining an
//! oversized grid), **re-descend from the root to their sub-tree** —
//! the redundant work the paper's Challenge #1 calls out — and then
//! traverse the sub-tree depth-first with a per-block local stack.
//! There is no donation: a block stuck with a monster sub-tree keeps
//! it to the end, which is exactly the load imbalance Figure 5 shows.
//!
//! **Component branching** (see [`crate::split`]): the re-descent is
//! where StackOnly used to multiply disconnected residuals — a split
//! at level `l` left `2^(start_depth − l)` sub-tree indices each
//! re-branching across the same independent components. With the
//! split hook enabled, `descend` now probes connectivity after each
//! level's reduction fixpoint and stops at the first component-sum
//! node: the index whose remaining branch bits are all zero *owns* the
//! truncated node (the same single-owner convention as dead paths) and
//! returns it as its sub-tree root, where the engine's ordinary split
//! machinery takes over; every other index skips it.

use std::sync::atomic::{AtomicU64, Ordering};

use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::runtime::BlockCtx;
use parvc_worklist::LocalStack;

use crate::connect::Connectivity;
use crate::engine::{ExitCause, PolicyFactory, SchedulePolicy};
use crate::ops::Kernel;
use crate::scratch::BlockScratch;
use crate::shared::BoundSrc;
use crate::{split, TreeNode};

/// StackOnly tuning: the sub-tree starting depth. The paper tries
/// {8, 12, 16} and reports the best.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackOnlyParams {
    /// Depth of the sub-tree roots; `2^start_depth` sub-trees exist.
    pub start_depth: u32,
}

impl Default for StackOnlyParams {
    fn default() -> Self {
        StackOnlyParams { start_depth: 8 }
    }
}

/// Shared state: the sub-tree index dispenser all blocks drain.
pub struct StackOnlyFactory {
    params: StackOnlyParams,
    subtree_counter: AtomicU64,
}

impl StackOnlyFactory {
    /// A fresh factory (one per launch).
    pub fn new(params: StackOnlyParams) -> Self {
        StackOnlyFactory {
            params,
            subtree_counter: AtomicU64::new(0),
        }
    }
}

impl PolicyFactory for StackOnlyFactory {
    fn seed(&self, _root: TreeNode) {
        // Roots are re-derived by descending from TreeNode::root —
        // the scheme's signature redundancy.
    }

    fn block_policy<'s>(
        &'s self,
        _ctx: BlockCtx,
        depth_bound: usize,
    ) -> Box<dyn SchedulePolicy + 's> {
        Box::new(StackOnlyPolicy {
            subtree_counter: &self.subtree_counter,
            num_subtrees: 1u64 << self.params.start_depth,
            start_depth: self.params.start_depth,
            stack: LocalStack::with_depth_bound(depth_bound),
            conn: Connectivity::new(),
            scratch: BlockScratch::new(),
        })
    }
}

/// One block's view: its local DFS stack plus the shared dispenser.
pub struct StackOnlyPolicy<'a> {
    subtree_counter: &'a AtomicU64,
    num_subtrees: u64,
    start_depth: u32,
    stack: LocalStack<TreeNode>,
    /// Connectivity tracker for the descent's split probes (each
    /// descent restarts from the root, so the first probe rebuilds and
    /// the rest of the path updates incrementally).
    conn: Connectivity,
    /// Phase scratch for the descent's reduce/prune passes, reused
    /// across every descent this block performs.
    scratch: BlockScratch,
}

impl SchedulePolicy for StackOnlyPolicy<'_> {
    fn next(
        &mut self,
        kernel: &Kernel<'_>,
        bound: BoundSrc<'_>,
        counters: &mut BlockCounters,
    ) -> Option<TreeNode> {
        if let Some(n) = self.stack.pop() {
            kernel.charge_node_copy(n.len(), Activity::PopFromStack, counters);
            return Some(n);
        }
        // Local stack empty: the current sub-tree is finished — drain
        // the dispenser for the next one.
        loop {
            if bound.should_abort() {
                return None;
            }
            let idx = self.subtree_counter.fetch_add(1, Ordering::Relaxed);
            if idx >= self.num_subtrees {
                return None;
            }
            if let Some(node) = descend(
                kernel,
                bound,
                idx,
                self.start_depth,
                &mut self.conn,
                &mut self.scratch,
                counters,
            ) {
                return Some(node);
            }
        }
    }

    fn dispose(&mut self, child: TreeNode, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        kernel.charge_node_copy(child.len(), Activity::PushToStack, counters);
        self.stack.push(child).unwrap_or_else(|_| {
            panic!("stack depth bound violated (bound {})", self.stack.bound())
        });
        counters.max_stack_depth = counters.max_stack_depth.max(self.stack.len() as u64);
    }

    fn on_exit(&mut self, _cause: ExitCause, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        counters.charge(Activity::Terminate, kernel.cost.atomic_op);
        counters.max_stack_depth = counters.max_stack_depth.max(self.stack.high_water() as u64);
    }
}

/// Re-walks the path from the root to sub-tree `idx` (bit `l` of `idx`
/// selects the branch at level `l`: 0 = remove `vmax`, 1 = remove
/// `N(vmax)`). Returns the sub-tree root, or `None` if the path dies
/// early — in which case only the block whose remaining index bits are
/// all zero "owns" the truncated node (processes its solution, if any),
/// so dead paths are counted exactly once.
///
/// With component branching enabled, a node whose residual
/// disconnected mid-descent truncates the path the same way: the
/// owning index returns it as its sub-tree root (the engine's split
/// machinery solves it as a component-sum node), every other index
/// skips it — so the components below are explored once instead of
/// once per surviving index suffix.
fn descend(
    kernel: &Kernel<'_>,
    bound: BoundSrc<'_>,
    idx: u64,
    start_depth: u32,
    conn: &mut Connectivity,
    scratch: &mut BlockScratch,
    counters: &mut BlockCounters,
) -> Option<TreeNode> {
    let mut node = TreeNode::root(kernel.graph);
    for level in 0..start_depth {
        let owns = (idx >> level) == 0;
        counters.tree_nodes_visited += 1;
        kernel.reduce(&mut node, bound.bound(), scratch, counters);
        if kernel.prune(&node, bound.bound(), scratch) {
            return None;
        }
        if let Some(params) = kernel.ext.component_branching {
            if split::residual_disconnected(kernel, &node, params, conn, counters) {
                return owns.then_some(node);
            }
        }
        let Some(vmax) = kernel.find_max_degree(&node, counters) else {
            if owns {
                bound.on_solution(&node);
            }
            return None;
        };
        if node.degree(vmax) == 0 {
            if owns {
                bound.on_solution(&node);
            }
            return None;
        }
        if (idx >> level) & 1 == 0 {
            kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, counters);
        } else {
            kernel.remove_neighbors(&mut node, vmax, Activity::RemoveNeighbors, counters);
        }
    }
    Some(node)
}
