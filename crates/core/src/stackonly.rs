//! The StackOnly baseline — prior work's traversal ([14], [15], §III).
//!
//! Sub-trees rooted at a fixed `start_depth` are treated as the units of
//! parallelism: there are `2^start_depth` of them, indexed by the branch
//! bits of the path from the root. Blocks grab sub-tree indices from a
//! shared counter (the GPU's block scheduler draining an oversized
//! grid), **re-descend from the root to their sub-tree** — the redundant
//! work the paper's Challenge #1 calls out — and then traverse the
//! sub-tree depth-first with a per-block local stack. There is no
//! donation: a block stuck with a monster sub-tree keeps it to the end,
//! which is exactly the load imbalance Figure 5 shows.

use std::sync::atomic::{AtomicU64, Ordering};

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::runtime::run_blocks;
use parvc_simgpu::{CostModel, DeviceSpec, LaunchConfig};
use parvc_worklist::LocalStack;

use crate::extensions::Extensions;
use crate::ops::Kernel;
use crate::shared::{BoundKind, BoundSrc, Deadline, GlobalBest, PvcFound, RawParallel, RawParallelPvc};
use crate::TreeNode;

/// StackOnly tuning: the sub-tree starting depth. The paper tries
/// {8, 12, 16} and reports the best.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackOnlyParams {
    /// Depth of the sub-tree roots; `2^start_depth` sub-trees exist.
    pub start_depth: u32,
}

impl Default for StackOnlyParams {
    fn default() -> Self {
        StackOnlyParams { start_depth: 8 }
    }
}

/// Parallel MVC with the StackOnly scheme.
pub fn solve_mvc(
    g: &CsrGraph,
    device: &DeviceSpec,
    config: &LaunchConfig,
    cost: &CostModel,
    params: StackOnlyParams,
    initial: (u32, Vec<VertexId>),
    deadline: &Deadline,
    ext: Extensions,
) -> RawParallel {
    let best = GlobalBest::new(initial.0, initial.1);
    let depth_bound = initial.0 as usize + 2;
    let subtree_counter = AtomicU64::new(0);
    let blocks = run_blocks(device, config, |ctx, counters| {
        let kernel =
            Kernel { graph: g, cost, block_size: ctx.block_size, variant: config.variant, ext };
        let bound_src = BoundSrc { kind: BoundKind::Mvc(&best), deadline };
        block_main(&kernel, bound_src, params, depth_bound, &subtree_counter, counters);
    });
    let (best_size, best_cover) = best.into_result();
    RawParallel { best_size, best_cover, blocks }
}

/// Parallel PVC with the StackOnly scheme.
pub fn solve_pvc(
    g: &CsrGraph,
    device: &DeviceSpec,
    config: &LaunchConfig,
    cost: &CostModel,
    params: StackOnlyParams,
    k: u32,
    deadline: &Deadline,
    ext: Extensions,
) -> RawParallelPvc {
    let found = PvcFound::new();
    let depth_bound = (k as usize).min(g.num_vertices() as usize) + 2;
    let subtree_counter = AtomicU64::new(0);
    let blocks = run_blocks(device, config, |ctx, counters| {
        let kernel =
            Kernel { graph: g, cost, block_size: ctx.block_size, variant: config.variant, ext };
        let bound_src = BoundSrc { kind: BoundKind::Pvc { k, found: &found }, deadline };
        block_main(&kernel, bound_src, params, depth_bound, &subtree_counter, counters);
    });
    RawParallelPvc { cover: found.into_result(), blocks }
}

/// One block's whole execution: drain sub-tree indices, descend, DFS.
/// The shared counter models the GPU scheduler draining an oversized
/// grid of `2^start_depth` logical blocks through the resident set.
fn block_main(
    kernel: &Kernel<'_>,
    bound_src: BoundSrc<'_>,
    params: StackOnlyParams,
    depth_bound: usize,
    subtree_counter: &AtomicU64,
    counters: &mut BlockCounters,
) {
    let num_subtrees = 1u64 << params.start_depth;
    let mut stack: LocalStack<TreeNode> = LocalStack::with_depth_bound(depth_bound);
    loop {
        if bound_src.should_abort() {
            break;
        }
        let idx = subtree_counter.fetch_add(1, Ordering::Relaxed);
        if idx >= num_subtrees {
            break;
        }
        if let Some(node) = descend(kernel, bound_src, idx, params.start_depth, counters) {
            dfs_subtree(kernel, bound_src, node, &mut stack, counters);
        }
    }
    counters.charge(Activity::Terminate, kernel.cost.atomic_op);
    counters.max_stack_depth = counters.max_stack_depth.max(stack.high_water() as u64);
}

/// Re-walks the path from the root to sub-tree `idx` (bit `l` of `idx`
/// selects the branch at level `l`: 0 = remove `vmax`, 1 = remove
/// `N(vmax)`). Returns the sub-tree root, or `None` if the path dies
/// early — in which case only the block whose remaining index bits are
/// all zero "owns" the truncated node (processes its solution, if any),
/// so dead paths are counted exactly once.
fn descend(
    kernel: &Kernel<'_>,
    bound_src: BoundSrc<'_>,
    idx: u64,
    start_depth: u32,
    counters: &mut BlockCounters,
) -> Option<TreeNode> {
    let mut node = TreeNode::root(kernel.graph);
    for level in 0..start_depth {
        let owns = (idx >> level) == 0;
        counters.tree_nodes_visited += 1;
        kernel.reduce(&mut node, bound_src.bound(), counters);
        if kernel.prune(&node, bound_src.bound()) {
            return None;
        }
        let Some(vmax) = kernel.find_max_degree(&node, counters) else {
            if owns {
                bound_src.on_solution(&node);
            }
            return None;
        };
        if node.degree(vmax) == 0 {
            if owns {
                bound_src.on_solution(&node);
            }
            return None;
        }
        if (idx >> level) & 1 == 0 {
            kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, counters);
        } else {
            kernel.remove_neighbors(&mut node, vmax, Activity::RemoveNeighbors, counters);
        }
    }
    Some(node)
}

/// Depth-first traversal of one sub-tree with the local stack. Shared
/// with nothing: this is the whole point of StackOnly — no donation.
pub(crate) fn dfs_subtree(
    kernel: &Kernel<'_>,
    bound_src: BoundSrc<'_>,
    root: TreeNode,
    stack: &mut LocalStack<TreeNode>,
    counters: &mut BlockCounters,
) {
    let mut current = Some(root);
    loop {
        if bound_src.should_abort() {
            return;
        }
        let mut node = match current.take() {
            Some(n) => n,
            None => match stack.pop() {
                Some(n) => {
                    kernel.charge_node_copy(n.len(), Activity::PopFromStack, counters);
                    n
                }
                None => return,
            },
        };
        counters.tree_nodes_visited += 1;
        kernel.reduce(&mut node, bound_src.bound(), counters);
        if kernel.prune(&node, bound_src.bound()) {
            continue;
        }
        let Some(vmax) = kernel.find_max_degree(&node, counters) else {
            if bound_src.on_solution(&node) {
                return;
            }
            continue;
        };
        if node.degree(vmax) == 0 {
            if bound_src.on_solution(&node) {
                return;
            }
            continue;
        }
        // Branch: push the remove-N(vmax) child, continue with the
        // remove-vmax child (Figure 1's order).
        let mut left = node.clone();
        kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, counters);
        kernel.charge_node_copy(left.len(), Activity::PushToStack, counters);
        stack
            .push(left)
            .unwrap_or_else(|_| panic!("stack depth bound violated (bound {})", stack.bound()));
        kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, counters);
        current = Some(node);
        counters.max_stack_depth = counters.max_stack_depth.max(stack.len() as u64);
    }
}
