//! Search bounds: the MVC/PVC stopping conditions and the high-degree
//! rule threshold (§II-B).

use crate::node::TreeNode;

/// The bound driving pruning and the high-degree rule. MVC and PVC
/// differ only here (§II-B): MVC prunes against the best cover found so
/// far, PVC against the fixed parameter `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchBound {
    /// Minimum vertex cover: beat `best` (a snapshot of the global
    /// atomic best at node-visit time, exactly like a kernel reading it
    /// from global memory).
    Mvc {
        /// Size of the best cover known when the node was visited.
        best: u32,
    },
    /// Parameterized vertex cover: find any cover of size ≤ `k`.
    Pvc {
        /// The parameter `k`.
        k: u32,
    },
}

impl SearchBound {
    /// The high-degree rule threshold: a live vertex with degree
    /// strictly greater than this must join the cover. `None` when the
    /// budget is already spent (the node will be pruned by
    /// [`prune`](Self::prune); applying the rule with a negative
    /// threshold would meaninglessly consume the whole graph).
    pub fn high_degree_threshold(&self, cover_size: u32) -> Option<i64> {
        let t = match *self {
            SearchBound::Mvc { best } => best as i64 - cover_size as i64 - 1,
            SearchBound::Pvc { k } => k as i64 - cover_size as i64,
        };
        (t >= 0).then_some(t)
    }

    /// The stopping condition (Figure 1 line 5 / Figure 4 line 12): no
    /// better/feasible solution can exist at this node or below.
    ///
    /// Sub-condition 1: the cover budget is spent. Sub-condition 2: the
    /// high-degree rule capped every live degree at the threshold `t`,
    /// and at most `t` more vertices may be added, so at most `t²` edges
    /// can still be covered — more live edges than that is hopeless.
    pub fn prune(&self, node: &TreeNode) -> bool {
        match *self {
            SearchBound::Mvc { best } => {
                if node.cover_size() >= best {
                    return true;
                }
                let budget = (best - node.cover_size() - 1) as u64;
                node.num_edges() > budget * budget
            }
            SearchBound::Pvc { k } => {
                if node.cover_size() > k {
                    return true;
                }
                let budget = (k - node.cover_size()) as u64;
                node.num_edges() > budget * budget
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    fn node_with(g: &parvc_graph::CsrGraph, removed: &[u32]) -> TreeNode {
        let mut n = TreeNode::root(g);
        for &v in removed {
            n.remove_into_cover(g, v);
        }
        n
    }

    #[test]
    fn mvc_prunes_when_budget_spent() {
        let g = gen::complete(5);
        let n = node_with(&g, &[0, 1]); // |S| = 2
        assert!(SearchBound::Mvc { best: 2 }.prune(&n));
        assert!(SearchBound::Mvc { best: 1 }.prune(&n));
        assert!(!SearchBound::Mvc { best: 5 }.prune(&n));
    }

    #[test]
    fn mvc_edge_test() {
        // K5 minus nothing: 10 edges. With best = 4 and |S| = 0 the edge
        // budget is (4-0-1)² = 9 < 10 → prune even though |S| < best.
        let g = gen::complete(5);
        let n = TreeNode::root(&g);
        assert!(SearchBound::Mvc { best: 4 }.prune(&n));
        assert!(!SearchBound::Mvc { best: 5 }.prune(&n));
    }

    #[test]
    fn pvc_allows_exactly_k() {
        let g = gen::complete(4);
        let n = node_with(&g, &[0, 1, 2]); // edgeless, |S| = 3
        assert!(
            !SearchBound::Pvc { k: 3 }.prune(&n),
            "|S| == k with no edges is a solution"
        );
        assert!(SearchBound::Pvc { k: 2 }.prune(&n));
    }

    #[test]
    fn pvc_edge_test_uses_k_budget() {
        let g = gen::complete(5); // 10 edges
        let n = TreeNode::root(&g);
        assert!(SearchBound::Pvc { k: 3 }.prune(&n)); // 3² = 9 < 10
        assert!(!SearchBound::Pvc { k: 4 }.prune(&n)); // 4² = 16 ≥ 10
    }

    #[test]
    fn thresholds() {
        assert_eq!(
            SearchBound::Mvc { best: 10 }.high_degree_threshold(3),
            Some(6)
        );
        assert_eq!(SearchBound::Pvc { k: 10 }.high_degree_threshold(3), Some(7));
        assert_eq!(SearchBound::Mvc { best: 3 }.high_degree_threshold(3), None);
        assert_eq!(
            SearchBound::Mvc { best: 4 }.high_degree_threshold(3),
            Some(0)
        );
        assert_eq!(SearchBound::Pvc { k: 2 }.high_degree_threshold(5), None);
    }
}
