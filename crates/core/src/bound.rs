//! Search bounds: the MVC/PVC stopping conditions and the high-degree
//! rule threshold (§II-B).

use crate::node::TreeNode;

/// The bound driving pruning and the high-degree rule. MVC, weighted
/// MVC, and PVC differ only here (§II-B): MVC prunes against the best
/// cover found so far, weighted MVC against the best cover *weight*,
/// PVC against the fixed parameter `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchBound {
    /// Minimum vertex cover: beat `best` (a snapshot of the global
    /// atomic best at node-visit time, exactly like a kernel reading it
    /// from global memory).
    Mvc {
        /// Size of the best cover known when the node was visited.
        best: u32,
    },
    /// Minimum *weight* vertex cover: beat `best` weight units. The
    /// loop structure is identical to MVC; only the budget currency
    /// changes — `w(S)` ([`TreeNode::cover_weight`]) replaces `|S|` in
    /// every comparison, and because every weight is ≥ 1, a weight
    /// budget of `t` still admits at most `t` more vertices, keeping
    /// the `t²` edge test and degree-threshold arguments sound.
    WeightedMvc {
        /// Weight of the best cover known when the node was visited.
        best: u64,
    },
    /// Parameterized vertex cover: find any cover of size ≤ `k`.
    Pvc {
        /// The parameter `k`.
        k: u32,
    },
}

impl SearchBound {
    /// Whether this bound runs in weight units — the switch the
    /// reduction rules consult before applying weight-unsound
    /// inclusion shortcuts (see [`crate::reduce`]).
    pub fn is_weighted(&self) -> bool {
        matches!(self, SearchBound::WeightedMvc { .. })
    }

    /// The cost this bound charges `node` with: `w(S)` in weighted
    /// mode, `|S|` otherwise.
    pub fn node_cost(&self, node: &TreeNode) -> u64 {
        if self.is_weighted() {
            node.cover_weight()
        } else {
            node.cover_size() as u64
        }
    }

    /// The high-degree rule threshold: a live vertex with degree
    /// strictly greater than this must join the cover. `spent` is the
    /// node's cost in this bound's units
    /// ([`node_cost`](Self::node_cost)). `None` when the budget is
    /// already spent
    /// (the node will be pruned by [`prune`](Self::prune); applying
    /// the rule with a negative threshold would meaninglessly consume
    /// the whole graph).
    ///
    /// Weighted soundness: excluding a vertex of degree `d` forces its
    /// `d` live neighbors in, costing ≥ `d` weight units (each weight
    /// is ≥ 1) — so `d >` the remaining *weight* budget still forces
    /// the vertex into the cover.
    pub fn high_degree_threshold(&self, spent: u64) -> Option<i64> {
        let t: i128 = match *self {
            SearchBound::Mvc { best } => best as i128 - spent as i128 - 1,
            SearchBound::WeightedMvc { best } => best as i128 - spent as i128 - 1,
            SearchBound::Pvc { k } => k as i128 - spent as i128,
        };
        // Degrees never exceed |V| < 2^32; clamping huge weight budgets
        // to i64 loses nothing the rule could ever compare against.
        (t >= 0).then_some(t.min(i64::MAX as i128) as i64)
    }

    /// The stopping condition (Figure 1 line 5 / Figure 4 line 12): no
    /// better/feasible solution can exist at this node or below.
    ///
    /// Sub-condition 1: the cover budget is spent. Sub-condition 2: the
    /// high-degree rule capped every live degree at the threshold `t`,
    /// and at most `t` more vertices may be added (in weighted mode a
    /// weight budget of `t` admits at most `t` vertices, each of weight
    /// ≥ 1), so at most `t²` edges can still be covered — more live
    /// edges than that is hopeless.
    pub fn prune(&self, node: &TreeNode) -> bool {
        match *self {
            SearchBound::Mvc { best } => {
                if node.cover_size() >= best {
                    return true;
                }
                let budget = (best - node.cover_size() - 1) as u64;
                node.num_edges() > budget * budget
            }
            SearchBound::WeightedMvc { best } => {
                if node.cover_weight() >= best {
                    return true;
                }
                let budget = best - node.cover_weight() - 1;
                node.num_edges() > budget.saturating_mul(budget)
            }
            SearchBound::Pvc { k } => {
                if node.cover_size() > k {
                    return true;
                }
                let budget = (k - node.cover_size()) as u64;
                node.num_edges() > budget * budget
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    fn node_with(g: &parvc_graph::CsrGraph, removed: &[u32]) -> TreeNode {
        let mut n = TreeNode::root(g);
        for &v in removed {
            n.remove_into_cover(g, v);
        }
        n
    }

    #[test]
    fn mvc_prunes_when_budget_spent() {
        let g = gen::complete(5);
        let n = node_with(&g, &[0, 1]); // |S| = 2
        assert!(SearchBound::Mvc { best: 2 }.prune(&n));
        assert!(SearchBound::Mvc { best: 1 }.prune(&n));
        assert!(!SearchBound::Mvc { best: 5 }.prune(&n));
    }

    #[test]
    fn mvc_edge_test() {
        // K5 minus nothing: 10 edges. With best = 4 and |S| = 0 the edge
        // budget is (4-0-1)² = 9 < 10 → prune even though |S| < best.
        let g = gen::complete(5);
        let n = TreeNode::root(&g);
        assert!(SearchBound::Mvc { best: 4 }.prune(&n));
        assert!(!SearchBound::Mvc { best: 5 }.prune(&n));
    }

    #[test]
    fn pvc_allows_exactly_k() {
        let g = gen::complete(4);
        let n = node_with(&g, &[0, 1, 2]); // edgeless, |S| = 3
        assert!(
            !SearchBound::Pvc { k: 3 }.prune(&n),
            "|S| == k with no edges is a solution"
        );
        assert!(SearchBound::Pvc { k: 2 }.prune(&n));
    }

    #[test]
    fn pvc_edge_test_uses_k_budget() {
        let g = gen::complete(5); // 10 edges
        let n = TreeNode::root(&g);
        assert!(SearchBound::Pvc { k: 3 }.prune(&n)); // 3² = 9 < 10
        assert!(!SearchBound::Pvc { k: 4 }.prune(&n)); // 4² = 16 ≥ 10
    }

    #[test]
    fn thresholds() {
        assert_eq!(
            SearchBound::Mvc { best: 10 }.high_degree_threshold(3),
            Some(6)
        );
        assert_eq!(SearchBound::Pvc { k: 10 }.high_degree_threshold(3), Some(7));
        assert_eq!(SearchBound::Mvc { best: 3 }.high_degree_threshold(3), None);
        assert_eq!(
            SearchBound::Mvc { best: 4 }.high_degree_threshold(3),
            Some(0)
        );
        assert_eq!(SearchBound::Pvc { k: 2 }.high_degree_threshold(5), None);
        assert_eq!(
            SearchBound::WeightedMvc { best: 10 }.high_degree_threshold(3),
            Some(6)
        );
        assert_eq!(
            SearchBound::WeightedMvc { best: 3 }.high_degree_threshold(3),
            None
        );
        // The inert greedy-phase bound must not overflow.
        assert_eq!(
            SearchBound::WeightedMvc { best: u64::MAX }.high_degree_threshold(0),
            Some(i64::MAX)
        );
    }

    #[test]
    fn weighted_prune_runs_in_weight_units() {
        let g = gen::complete(5).with_weights(vec![4, 4, 4, 4, 4]).unwrap();
        let n = node_with(&g, &[0]); // w(S) = 4, 6 edges remain
        assert!(SearchBound::WeightedMvc { best: 4 }.prune(&n));
        // Budget 20-4-1 = 15 ≥ #edges-admitting 6 → no prune.
        assert!(!SearchBound::WeightedMvc { best: 20 }.prune(&n));
        // Edge test: budget (8-4-1)=3 → 9 ≥ 6 edges → no prune; budget
        // (7-4-1)=2 → 4 < 6 → prune on edges alone.
        assert!(!SearchBound::WeightedMvc { best: 8 }.prune(&n));
        assert!(SearchBound::WeightedMvc { best: 7 }.prune(&n));
        assert!(
            !SearchBound::WeightedMvc { best: u64::MAX }.prune(&n),
            "the inert bound must not overflow the edge test"
        );
        assert!(SearchBound::WeightedMvc { best: 9 }.is_weighted());
        assert!(!SearchBound::Mvc { best: 9 }.is_weighted());
        assert_eq!(SearchBound::WeightedMvc { best: 9 }.node_cost(&n), 4);
        assert_eq!(SearchBound::Mvc { best: 9 }.node_cost(&n), 1);
    }
}
