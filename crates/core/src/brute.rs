//! Exhaustive exact MVC — the test oracle.
//!
//! Enumerates all `2^n` vertex subsets (so only for small `n`) and
//! returns a minimum vertex cover. Used throughout the test suites to
//! validate the branch-and-reduce solvers and the reduction rules.

use parvc_graph::{CsrGraph, VertexId};

/// Exact minimum vertex cover by subset enumeration. Panics for graphs
/// with more than 24 vertices (the oracle is for tests).
pub fn brute_force_mvc(g: &CsrGraph) -> (u32, Vec<VertexId>) {
    let n = g.num_vertices();
    assert!(
        n <= 24,
        "brute force oracle limited to 24 vertices, got {n}"
    );
    let edges: Vec<(u32, u32)> = g.edges().collect();
    if edges.is_empty() {
        return (0, Vec::new());
    }
    let mut best_mask = (1u32 << n) - 1;
    let mut best_size = n;
    for mask in 0u32..(1u32 << n) {
        let size = mask.count_ones();
        if size >= best_size {
            continue;
        }
        if edges
            .iter()
            .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
        {
            best_size = size;
            best_mask = mask;
        }
    }
    let cover = (0..n).filter(|&v| best_mask & (1 << v) != 0).collect();
    (best_size, cover)
}

/// Whether a cover of size ≤ `k` exists (the PVC oracle).
pub fn brute_force_pvc(g: &CsrGraph, k: u32) -> bool {
    brute_force_mvc(g).0 <= k
}

/// Exact minimum **weight** vertex cover by subset enumeration — the
/// weighted-MVC test oracle. Ties on weight are broken toward the
/// smaller cover, then the lexicographically smallest vertex set (the
/// enumeration order), so the witness is deterministic. On unweighted
/// graphs (every weight 1) the returned weight equals
/// [`brute_force_mvc`]'s size. Panics for graphs with more than 24
/// vertices (the oracle is for tests).
pub fn weighted_brute_force(g: &CsrGraph) -> (u64, Vec<VertexId>) {
    let n = g.num_vertices();
    assert!(
        n <= 24,
        "weighted brute force oracle limited to 24 vertices, got {n}"
    );
    let edges: Vec<(u32, u32)> = g.edges().collect();
    if edges.is_empty() {
        return (0, Vec::new());
    }
    let mut best_mask = (1u32 << n) - 1;
    let mut best_weight: u64 = (0..n).map(|v| g.weight(v)).sum();
    let mut best_size = n;
    for mask in 0u32..(1u32 << n) {
        let size = mask.count_ones();
        if !edges
            .iter()
            .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
        {
            continue;
        }
        let weight: u64 = (0..n)
            .filter(|&v| mask & (1 << v) != 0)
            .map(|v| g.weight(v))
            .sum();
        if weight < best_weight || (weight == best_weight && size < best_size) {
            best_weight = weight;
            best_size = size;
            best_mask = mask;
        }
    }
    let cover = (0..n).filter(|&v| best_mask & (1 << v) != 0).collect();
    (best_weight, cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;

    #[test]
    fn known_optima() {
        assert_eq!(brute_force_mvc(&gen::path(6)).0, 3);
        assert_eq!(brute_force_mvc(&gen::cycle(5)).0, 3);
        assert_eq!(brute_force_mvc(&gen::cycle(6)).0, 3);
        assert_eq!(brute_force_mvc(&gen::complete(6)).0, 5);
        assert_eq!(brute_force_mvc(&gen::star(8)).0, 1);
        assert_eq!(brute_force_mvc(&gen::petersen()).0, 6);
        assert_eq!(brute_force_mvc(&gen::paper_example()).0, 3);
    }

    #[test]
    fn witness_is_a_cover() {
        for seed in 0..5 {
            let g = gen::gnp(10, 0.4, seed);
            let (size, cover) = brute_force_mvc(&g);
            assert_eq!(cover.len() as u32, size);
            assert!(is_vertex_cover(&g, &cover));
        }
    }

    #[test]
    fn edgeless_graph_has_empty_cover() {
        let g = CsrGraph::from_edges(5, &[]).unwrap();
        assert_eq!(brute_force_mvc(&g), (0, vec![]));
    }

    #[test]
    fn weighted_oracle_degenerates_to_cardinality_on_unit_weights() {
        for seed in 0..5 {
            let g = gen::gnp(10, 0.4, seed);
            let (opt, _) = brute_force_mvc(&g);
            let (w, cover) = weighted_brute_force(&g);
            assert_eq!(w, opt as u64, "seed {seed}");
            assert!(is_vertex_cover(&g, &cover));
        }
    }

    #[test]
    fn weighted_oracle_flips_the_star_optimum() {
        // Unweighted: the hub (size 1). Hub weight 100: the leaves.
        let g = gen::star(5).with_weights(vec![100, 1, 1, 1, 1]).unwrap();
        let (w, cover) = weighted_brute_force(&g);
        assert_eq!(w, 4);
        assert_eq!(cover, vec![1, 2, 3, 4]);
        assert_eq!(brute_force_mvc(&g).0, 1);
    }

    #[test]
    fn weighted_oracle_witness_weight_matches() {
        for seed in 0..5 {
            let g = gen::with_uniform_weights(gen::gnp(10, 0.35, seed), 10, seed + 7);
            let (w, cover) = weighted_brute_force(&g);
            assert_eq!(w, g.cover_weight(&cover), "seed {seed}");
            assert!(is_vertex_cover(&g, &cover), "seed {seed}");
        }
    }

    #[test]
    fn pvc_oracle_thresholds() {
        let g = gen::cycle(5); // MVC = 3
        assert!(!brute_force_pvc(&g, 2));
        assert!(brute_force_pvc(&g, 3));
        assert!(brute_force_pvc(&g, 4));
    }
}
