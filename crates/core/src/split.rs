//! In-search component branching (arXiv 2512.18334).
//!
//! `parvc-prep` splits the instance into connected components **once,
//! before** the search. But the reduction rules keep firing at every
//! tree node, and they routinely *disconnect the intermediate graph
//! mid-search* — a cut vertex joins the cover, a bridge edge loses an
//! endpoint — at which point the remaining components are independent
//! sub-problems whose optima simply **sum**. Continuing the ordinary
//! branch-and-reduce over the union instead multiplies the sub-trees
//! together: every branching in component A is re-explored under every
//! partial solution of component B. Re-splitting inside the search
//! collapses that multiplicative tree into additive per-component
//! sub-trees.
//!
//! The lifecycle of a **component-sum node**:
//!
//! 1. After a node's reduction fixpoint (and the bound check), the
//!    engine asks `detect_components` whether the residual graph has
//!    disconnected. The check is skipped while fewer than
//!    [`SplitParams::min_live`] live vertices remain — tiny residuals
//!    finish faster than they split — and is charged to
//!    [`Activity::ComponentSplit`].
//! 2. If ≥ 2 non-trivial components exist, each is extracted as a
//!    standalone relabeled [`SubInstance`] (the same
//!    `ops::induced_subgraph` relabeling machinery `parvc-prep` uses),
//!    with a greedy upper bound and a maximal-matching lower bound
//!    computed per component.
//! 3. The node becomes a [`PendingSplit`] and is offered to the
//!    scheduling policy
//!    ([`SchedulePolicy::adopt_split`](crate::SchedulePolicy::adopt_split)).
//!    The [`ComponentSteal`](crate::Algorithm::ComponentSteal) policy
//!    adopts it — whole components are the natural unit of stealable
//!    work — while every other policy declines and the engine solves
//!    the components inline (`solve_split`).
//! 4. Each component is solved by a budgeted sub-search
//!    (`solve_bounded`): component `i` must fit within
//!    `bound − |S| − Σ_{j≠i} lb_j`, where the `lb_j` are the sibling
//!    lower bounds (replaced by exact optima as siblings finish). A
//!    component that cannot fit proves the whole node prunable.
//! 5. The per-component covers are written back onto a clone of the
//!    parent node, producing an ordinary edgeless [`TreeNode`] whose
//!    cover is `S ∪ ⋃ sub-covers` — the component-sum solution — which
//!    flows through the normal `on_solution` machinery.
//!
//! Sub-searches run the same reduce/prune/branch step as the engine
//! and re-check connectivity recursively (bounded by
//! [`SplitParams::max_depth`]), so deeply nested disconnections keep
//! decomposing.

use parvc_graph::{matching, ops, CsrGraph, VertexId};
use parvc_obs::SpanTimer;
use parvc_simgpu::counters::{Activity, BlockCounters};

use crate::bound::SearchBound;
use crate::connect::{ConnPool, Connectivity};
use crate::greedy::{greedy_mvc, greedy_weighted_mvc};
use crate::ops::Kernel;
use crate::scratch::BlockScratch;
use crate::TreeNode;

/// Which connectivity backend decides whether a residual disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitBackend {
    /// The incremental union-find tracker ([`crate::connect`]):
    /// localized re-scans of the deleted vertices' neighborhoods,
    /// with a full rebuild only when the traversal jumps to an
    /// unrelated node. The default.
    #[default]
    UnionFind,
    /// A from-scratch BFS over the live residual at every check — the
    /// PR 3 baseline, kept as the reference the union-find backend is
    /// property-tested and cost-compared against.
    Bfs,
}

/// Which lower bound budgets the per-component sub-searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitBound {
    /// The LP / Nemhauser–Trotter relaxation
    /// ([`parvc_prep::lp_lower_bound`]): dominates the matching bound
    /// on every graph, so sibling budgets are at least as tight and
    /// budgeted sub-searches prune at least as early. The default.
    /// Weighted traversals use [`parvc_prep::weighted_lower_bound`] —
    /// the better of the min-weight matching bound and the primal-dual
    /// LP dual (the unweighted LP says nothing about cover *weight*).
    #[default]
    Lp,
    /// A greedy maximal matching (min-weight endpoint sum in weighted
    /// searches) — the PR 3 baseline.
    Matching,
}

/// Tuning knobs for in-search component branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitParams {
    /// Skip the connectivity check while fewer than this many live
    /// (degree ≥ 1) vertices remain: tiny residuals are solved faster
    /// than they are split.
    pub min_live: u32,
    /// Maximum nesting depth of splits inside component sub-searches
    /// (a backstop against pathological recursion on chain-like
    /// graphs; each level strictly shrinks the graph).
    pub max_depth: u32,
    /// Connectivity backend (default: incremental union-find).
    pub backend: SplitBackend,
    /// Per-component lower bound for sibling budgets (default: LP).
    pub bound: SplitBound,
}

impl Default for SplitParams {
    fn default() -> Self {
        SplitParams {
            min_live: 8,
            max_depth: 32,
            backend: SplitBackend::default(),
            bound: SplitBound::default(),
        }
    }
}

impl SplitParams {
    /// Default parameters with a custom check trigger.
    pub fn with_min_live(min_live: u32) -> Self {
        SplitParams {
            min_live,
            ..SplitParams::default()
        }
    }
}

/// One connected component of a disconnected residual, extracted as a
/// standalone instance (vertices relabeled to `0..n`).
///
/// All cost fields are in the units of the search that produced the
/// split: cover *weight* for [`SearchBound::WeightedMvc`] traversals,
/// cover cardinality otherwise. The extracted `graph` carries the
/// parent's vertex weights through the relabeling
/// ([`parvc_graph::ops::induced_subgraph`]), so weighted sub-searches
/// see exactly the weights of the vertices they stand for.
pub struct SubInstance {
    /// The component as its own graph (weights relabeled from the
    /// parent when the parent is weighted).
    pub graph: CsrGraph,
    /// `old_ids[new_id]` = the vertex's id in the graph the split
    /// happened on.
    pub old_ids: Vec<VertexId>,
    /// Seed cover of the component (greedy or approx, per
    /// [`crate::Extensions::seed_strategy`]) — the sub-search's initial
    /// upper bound and its fallback witness. `(cost, witness)` in the
    /// search's units.
    pub greedy: (u64, Vec<VertexId>),
    /// Lower bound on the component's optimum — [`SplitBound`]'s
    /// choice in cardinality searches,
    /// [`parvc_prep::weighted_lower_bound`] (matching ∨ primal-dual
    /// dual) in weighted ones; the sibling budgets are derived from
    /// these.
    pub lower_bound: u64,
}

/// A tree node whose residual graph disconnected, together with its
/// extracted components — what the engine offers to
/// [`SchedulePolicy::adopt_split`](crate::SchedulePolicy::adopt_split).
pub struct PendingSplit {
    /// The node after its reduction fixpoint (its cover `S` is the
    /// shared prefix of every component solution).
    pub parent: TreeNode,
    /// The residual's connected components.
    pub comps: Vec<SubInstance>,
}

/// Outcome of solving a [`PendingSplit`].
pub enum SplitVerdict {
    /// Every component fit its budget: an edgeless node carrying
    /// `S ∪ ⋃ sub-covers`, ready for `on_solution`.
    Solved(TreeNode),
    /// Some component provably cannot fit within the bound — the whole
    /// node is pruned.
    Pruned,
}

/// Whether the split trigger fires: at least [`SplitParams::min_live`]
/// live (degree ≥ 1) vertices remain. A bare counting pass, no
/// allocation, so the tiny residuals the trigger exists for skip at
/// degree-array-scan cost only.
fn trigger(node: &TreeNode, params: SplitParams) -> bool {
    let mut live_count = 0u32;
    for v in 0..node.len() {
        if node.degree(v) > 0 {
            live_count += 1;
        }
    }
    live_count >= params.min_live
}

/// Component labels of `node`'s residual, from the configured backend.
/// `labels[v] == u32::MAX` marks a dead vertex. Records the check and
/// its work in `counters.splits` and charges the cooperative-scan
/// cycles. `count` may come back without full labels on the BFS fast
/// path (first component covers everything ⇒ `count == 1`).
fn component_labels(
    kernel: &Kernel<'_>,
    node: &TreeNode,
    params: SplitParams,
    conn: &mut Connectivity,
    counters: &mut BlockCounters,
) -> (u32, Vec<u32>) {
    counters.splits.checks += 1;
    kernel.sink.counter("split.checks", 1);
    let t_detect = SpanTimer::start(kernel.sink);
    let (count, labels, work) = match params.backend {
        SplitBackend::UnionFind => {
            let (count, work) = conn.update(kernel.graph, |v| node.degree(v), kernel.exec);
            let rebuilds = conn.take_rebuilds();
            counters.splits.uf_rebuilds += rebuilds;
            if rebuilds > 0 && kernel.sink.enabled() {
                parvc_simgpu::obs::rebuild_instant(kernel.sink, counters.block_id + 1, rebuilds);
            }
            let labels = if count >= 2 {
                (0..node.len())
                    .map(|v| conn.label(v).unwrap_or(u32::MAX))
                    .collect()
            } else {
                Vec::new()
            };
            (count, labels, work)
        }
        SplitBackend::Bfs => bfs_labels(kernel, node),
    };
    counters.splits.check_work += work;
    counters.charge(
        Activity::ComponentSplit,
        kernel
            .cost
            .parallel_op(work, kernel.block_size, kernel.variant),
    );
    t_detect.finish(
        kernel.sink,
        "split",
        "detect",
        counters.block_id + 1,
        count as u64,
    );
    (count, labels)
}

/// The from-scratch BFS baseline: one pass over the degree array plus
/// a BFS touching every live adjacency once, early-exiting when the
/// first component already covers every live vertex. Returns
/// `(count, labels, work)`.
fn bfs_labels(kernel: &Kernel<'_>, node: &TreeNode) -> (u32, Vec<u32>, u64) {
    let live: Vec<VertexId> = (0..node.len()).filter(|&v| node.degree(v) > 0).collect();
    let mut work = node.len() as u64;
    let mut comp = vec![u32::MAX; node.len() as usize];
    let mut count = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for &start in &live {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = count;
        queue.push(start);
        let mut visited = 1usize;
        while let Some(v) = queue.pop() {
            work += kernel.graph.neighbors(v).len() as u64;
            for &w in kernel.graph.neighbors(v) {
                if node.degree(w) > 0 && comp[w as usize] == u32::MAX {
                    comp[w as usize] = count;
                    visited += 1;
                    queue.push(w);
                }
            }
        }
        // Fast path: the first BFS reached every live vertex — the
        // residual is still connected, nothing to split.
        if count == 0 && visited == live.len() {
            return (1, comp, work);
        }
        count += 1;
    }
    (count, comp, work)
}

/// Whether `node`'s residual graph has disconnected — the cheap probe
/// [`StackOnly::descend`](crate::stackonly) uses to stop a root
/// re-descent at a component-sum node without paying for extraction.
/// Respects the [`SplitParams::min_live`] trigger and records the
/// check exactly like [`detect_components`].
pub(crate) fn residual_disconnected(
    kernel: &Kernel<'_>,
    node: &TreeNode,
    params: SplitParams,
    conn: &mut Connectivity,
    counters: &mut BlockCounters,
) -> bool {
    if !trigger(node, params) {
        return false;
    }
    let (count, _) = component_labels(kernel, node, params, conn, counters);
    count >= 2
}

/// Checks whether `node`'s residual graph (live vertices with degree
/// ≥ 1) is disconnected and, when it is, extracts the components.
///
/// `conn` is the caller's incremental connectivity tracker (used by
/// the [`SplitBackend::UnionFind`] backend; the BFS baseline ignores
/// it). Returns `None` when the trigger does not fire, the residual is
/// connected, or fewer than two non-trivial components remain.
///
/// Public so policy authors and the backend-agreement property tests
/// can drive the split machinery directly; the engine calls it for
/// every policy from `drive_block`.
pub fn detect_components(
    kernel: &Kernel<'_>,
    node: &TreeNode,
    params: SplitParams,
    conn: &mut Connectivity,
    counters: &mut BlockCounters,
    weighted: bool,
) -> Option<Vec<SubInstance>> {
    if !trigger(node, params) {
        return None;
    }
    let (count, labels) = component_labels(kernel, node, params, conn, counters);
    if count < 2 {
        return None;
    }
    // Group members by label, components ordered by their smallest
    // vertex id and members ascending — the same canonical order under
    // either backend (pinned by the backend-agreement property test).
    let t_extract = SpanTimer::start(kernel.sink);
    let mut groups: Vec<(u32, Vec<VertexId>)> = Vec::new();
    for v in 0..node.len() {
        let l = labels[v as usize];
        if l == u32::MAX {
            continue;
        }
        match groups.iter_mut().find(|(x, _)| *x == l) {
            Some((_, m)) => m.push(v),
            None => groups.push((l, vec![v])),
        }
    }
    let live_total: u64 = groups.iter().map(|(_, m)| m.len() as u64).sum();
    let comps: Vec<SubInstance> = groups
        .into_iter()
        .map(|(_, m)| m)
        .filter(|m| m.len() > 1)
        .map(|m| {
            let (graph, _) = ops::induced_subgraph(kernel.graph, &m);
            let approx_seed = kernel.ext.seed_strategy == crate::approx::SeedStrategy::Approx;
            let (greedy, lower_bound) = if weighted {
                // The approx strategy keeps whichever of the bounded
                // cover and the greedy sweep is lighter: the 2×
                // certificate survives a minimum, and the sibling
                // budgets it feeds must never loosen vs greedy.
                let seed = if approx_seed {
                    let a = crate::approx::weighted_approx_cover(&graph, counters);
                    let (gw, gc) = greedy_weighted_mvc(&graph);
                    if gw < a.cost {
                        (gw, gc)
                    } else {
                        (a.cost, a.cover)
                    }
                } else {
                    greedy_weighted_mvc(&graph)
                };
                // The unweighted LP certifies nothing about cover
                // weight; the weight-sound budget under either
                // `SplitBound` is the better of the min-weight
                // matching bound and the primal-dual LP dual.
                (seed, parvc_prep::weighted_lower_bound(&graph))
            } else {
                let (size, cover) = if approx_seed {
                    let a = crate::approx::matching_cover_exec(&graph, kernel.exec, counters);
                    let (gs, gc) = greedy_mvc(&graph);
                    if u64::from(gs) < a.cost {
                        (gs, gc)
                    } else {
                        (a.cost as u32, a.cover)
                    }
                } else {
                    greedy_mvc(&graph)
                };
                let lb = match params.bound {
                    SplitBound::Lp => parvc_prep::lp_lower_bound_exec(&graph, kernel.exec),
                    SplitBound::Matching => matching::greedy_maximal_matching(&graph).len() as u64,
                };
                ((size as u64, cover), lb)
            };
            SubInstance {
                graph,
                old_ids: m,
                greedy,
                lower_bound,
            }
        })
        .collect();
    t_extract.finish(
        kernel.sink,
        "split",
        "extract",
        counters.block_id + 1,
        comps.len() as u64,
    );
    if comps.len() < 2 {
        return None;
    }
    // Extraction builds each component's CSR and seeds: charge the
    // adjacency traffic once more.
    counters.charge(
        Activity::ComponentSplit,
        kernel.cost.parallel_op(
            2 * node.num_edges() + live_total,
            kernel.block_size,
            kernel.variant,
        ),
    );
    counters
        .splits
        .record_split(comps.iter().map(|c| c.graph.num_vertices()));
    if kernel.sink.enabled() {
        kernel.sink.counter("split.taken", 1);
        for c in &comps {
            kernel
                .sink
                .observe("split.component_size", c.graph.num_vertices() as u64);
        }
    }
    Some(comps)
}

/// The remaining cover budget below a node, in the bound's own units
/// (`spent` is the node's [`SearchBound::node_cost`]): how much more
/// cost a solution through this node may still add. `None` when the
/// budget is already spent (MVC and weighted MVC must *beat* `best`;
/// PVC must stay ≤ `k`).
pub(crate) fn remaining_budget(bound: SearchBound, spent: u64) -> Option<i64> {
    let r: i128 = match bound {
        SearchBound::Mvc { best } => best as i128 - 1 - spent as i128,
        SearchBound::WeightedMvc { best } => best as i128 - 1 - spent as i128,
        SearchBound::Pvc { k } => k as i128 - spent as i128,
    };
    // `CsrGraph::with_weights` caps the total weight at i64::MAX, so
    // real costs always fit; the clamp only tames the inert `u64::MAX`
    // seed bound.
    (r >= 0).then_some(r.min(i64::MAX as i128) as i64)
}

/// Solves every component of a split inline and combines the result —
/// the default (non-adopting) policy path.
///
/// Sibling budgets tighten as components finish: component `i` gets
/// `remaining − Σ_{j<i} opt_j − Σ_{j>i} lb_j`, so when every component
/// fits, the combined cover provably beats the bound.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_split(
    kernel: &Kernel<'_>,
    parent: &TreeNode,
    bound: SearchBound,
    comps: &[SubInstance],
    abort: &mut dyn FnMut() -> bool,
    scratch: &mut BlockScratch,
    pool: &mut ConnPool,
    counters: &mut BlockCounters,
    depth: u32,
) -> SplitVerdict {
    let t_solve = SpanTimer::start(kernel.sink);
    let verdict = solve_split_inner(
        kernel, parent, bound, comps, abort, scratch, pool, counters, depth,
    );
    t_solve.finish(
        kernel.sink,
        "split",
        "solve",
        counters.block_id + 1,
        comps.len() as u64,
    );
    verdict
}

#[allow(clippy::too_many_arguments)]
fn solve_split_inner(
    kernel: &Kernel<'_>,
    parent: &TreeNode,
    bound: SearchBound,
    comps: &[SubInstance],
    abort: &mut dyn FnMut() -> bool,
    scratch: &mut BlockScratch,
    pool: &mut ConnPool,
    counters: &mut BlockCounters,
    depth: u32,
) -> SplitVerdict {
    let Some(mut remaining) = remaining_budget(bound, bound.node_cost(parent)) else {
        return SplitVerdict::Pruned;
    };
    let mut lb_rest: i64 = comps.iter().map(|c| c.lower_bound as i64).sum();
    let mut combined = parent.clone();
    for c in comps {
        lb_rest -= c.lower_bound as i64;
        let limit = remaining - lb_rest;
        if limit < c.lower_bound as i64 {
            return SplitVerdict::Pruned;
        }
        let sub_kernel = Kernel {
            graph: &c.graph,
            ..*kernel
        };
        let Some((opt, cover)) = solve_bounded(
            &sub_kernel,
            c.greedy.clone(),
            limit as u64,
            bound.is_weighted(),
            abort,
            scratch,
            pool,
            counters,
            depth,
        ) else {
            return SplitVerdict::Pruned;
        };
        remaining -= opt as i64;
        debug_assert!(remaining >= lb_rest, "budget accounting went negative");
        for &v in &cover {
            combined.remove_into_cover(kernel.graph, c.old_ids[v as usize]);
        }
    }
    SplitVerdict::Solved(combined)
}

/// Exhaustive bounded MVC sub-search on a standalone (component) graph:
/// the engine's reduce/prune/branch step driven by a plain DFS stack,
/// with nested component splitting. `weighted` selects the bound's
/// units — cover weight over the component graph's weight channel, or
/// cover cardinality — and `seed`/`limit`/the returned optimum are all
/// in those units.
///
/// Returns the component optimum and a witness when it is ≤ `limit`,
/// `None` when the optimum provably exceeds `limit` (the caller prunes
/// the component-sum node). On abort the best witness so far is
/// returned — a valid (possibly non-optimal) cover, consistent with
/// the engine's deadline semantics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_bounded(
    kernel: &Kernel<'_>,
    seed: (u64, Vec<VertexId>),
    limit: u64,
    weighted: bool,
    abort: &mut dyn FnMut() -> bool,
    scratch: &mut BlockScratch,
    pool: &mut ConnPool,
    counters: &mut BlockCounters,
    depth: u32,
) -> Option<(u64, Vec<VertexId>)> {
    let (mut best, mut witness) = if seed.0 <= limit {
        (seed.0, Some(seed.1))
    } else {
        (limit.saturating_add(1), None)
    };
    let make_bound = |best: u64| {
        if weighted {
            SearchBound::WeightedMvc { best }
        } else {
            SearchBound::Mvc {
                best: best.min(u32::MAX as u64) as u32,
            }
        }
    };
    // This sub-search runs on its own (component) graph, so it needs
    // its own tracker — acquired from the caller's reuse pool, so the
    // allocations (not the labels) survive across sub-searches; jumps
    // between stack pops fall back to a rebuild automatically.
    let mut conn = pool.acquire();
    let mut stack = vec![TreeNode::root(kernel.graph)];
    while let Some(mut node) = stack.pop() {
        if abort() {
            break;
        }
        kernel.charge_node_copy(node.len(), Activity::PopFromStack, counters);
        counters.tree_nodes_visited += 1;
        let bound = make_bound(best);
        kernel.reduce(&mut node, bound, scratch, counters);
        if kernel.prune(&node, bound, scratch) {
            continue;
        }
        if depth > 0 {
            if let Some(params) = kernel.ext.component_branching {
                if let Some(comps) =
                    detect_components(kernel, &node, params, &mut conn, counters, weighted)
                {
                    if let SplitVerdict::Solved(combined) = solve_split(
                        kernel,
                        &node,
                        bound,
                        &comps,
                        abort,
                        scratch,
                        pool,
                        counters,
                        depth - 1,
                    ) {
                        if bound.node_cost(&combined) < best {
                            best = bound.node_cost(&combined);
                            witness = Some(combined.cover_vertices());
                        }
                    }
                    continue;
                }
            }
        }
        let vmax = match kernel.find_max_degree(&node, counters) {
            None => {
                if bound.node_cost(&node) < best {
                    best = bound.node_cost(&node);
                    witness = Some(node.cover_vertices());
                }
                continue;
            }
            Some(v) if node.degree(v) == 0 => {
                if bound.node_cost(&node) < best {
                    best = bound.node_cost(&node);
                    witness = Some(node.cover_vertices());
                }
                continue;
            }
            Some(v) => v,
        };
        let mut left = node.clone();
        kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, counters);
        kernel.charge_node_copy(left.len(), Activity::PushToStack, counters);
        stack.push(left);
        kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, counters);
        kernel.charge_node_copy(node.len(), Activity::PushToStack, counters);
        stack.push(node);
    }
    pool.release(conn);
    witness.map(|w| {
        let cost = if weighted {
            kernel.graph.cover_weight(&w)
        } else {
            w.len() as u64
        };
        (cost, w)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::extensions::Extensions;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;
    use parvc_simgpu::{CostModel, KernelVariant};

    fn kernel<'a>(g: &'a CsrGraph, cost: &'a CostModel) -> Kernel<'a> {
        Kernel {
            block_size: 32,
            variant: KernelVariant::SharedMem,
            ext: Extensions {
                component_branching: Some(SplitParams::with_min_live(4)),
                ..Extensions::NONE
            },
            ..Kernel::sequential(g, cost)
        }
    }

    #[test]
    fn detect_finds_disjoint_communities() {
        // Two triangles, no connection.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]).unwrap();
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        let comps = detect_components(
            &k,
            &node,
            SplitParams::with_min_live(4),
            &mut Connectivity::new(),
            &mut c,
            false,
        )
        .expect("two components");
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].old_ids, vec![0, 1, 2]);
        assert_eq!(comps[1].old_ids, vec![3, 4, 5]);
        // The default LP bound certifies 2 on a triangle (LP optimum
        // 3/2, rounded up) — exactly the optimum, where the matching
        // bound only reaches 1.
        assert_eq!(comps[0].lower_bound, 2);
        assert_eq!(c.splits.taken, 1);
        assert_eq!(c.splits.components, 2);
    }

    #[test]
    fn detect_skips_connected_and_tiny_residuals() {
        let g = gen::cycle(8);
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        assert!(detect_components(
            &k,
            &node,
            SplitParams::with_min_live(4),
            &mut Connectivity::new(),
            &mut c,
            false
        )
        .is_none());
        assert_eq!(c.splits.checks, 1, "connected graphs still pay the check");
        assert!(
            detect_components(
                &k,
                &node,
                SplitParams::with_min_live(9),
                &mut Connectivity::new(),
                &mut c,
                false
            )
            .is_none(),
            "below the trigger the check must not run"
        );
        assert_eq!(c.splits.checks, 1);
    }

    #[test]
    fn solve_split_sums_component_optima() {
        // A triangle (opt 2) next to a 4-cycle (opt 2): total 4.
        let g = CsrGraph::from_edges(7, &[(0, 1), (0, 2), (1, 2), (3, 4), (4, 5), (5, 6), (6, 3)])
            .unwrap();
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        let comps = detect_components(
            &k,
            &node,
            SplitParams::with_min_live(4),
            &mut Connectivity::new(),
            &mut c,
            false,
        )
        .unwrap();
        let verdict = solve_split(
            &k,
            &node,
            SearchBound::Mvc { best: 7 },
            &comps,
            &mut || false,
            &mut BlockScratch::new(),
            &mut ConnPool::new(),
            &mut c,
            4,
        );
        let SplitVerdict::Solved(combined) = verdict else {
            panic!("split must solve within best=7");
        };
        assert_eq!(combined.cover_size(), 4);
        assert!(combined.is_edgeless());
        assert!(is_vertex_cover(&g, &combined.cover_vertices()));
        combined.check_consistency(&g).unwrap();
    }

    #[test]
    fn solve_split_prunes_against_tight_bound() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]).unwrap();
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        let comps = detect_components(
            &k,
            &node,
            SplitParams::with_min_live(4),
            &mut Connectivity::new(),
            &mut c,
            false,
        )
        .unwrap();
        // Optimum is 4 (2 per triangle); best = 4 demands ≤ 3 total.
        assert!(matches!(
            solve_split(
                &k,
                &node,
                SearchBound::Mvc { best: 4 },
                &comps,
                &mut || false,
                &mut BlockScratch::new(),
                &mut ConnPool::new(),
                &mut c,
                4,
            ),
            SplitVerdict::Pruned
        ));
    }

    /// The cardinality greedy seed in `solve_bounded`'s `(u64, _)` form.
    fn greedy_seed(g: &CsrGraph) -> (u64, Vec<VertexId>) {
        let (size, cover) = greedy_mvc(g);
        (size as u64, cover)
    }

    #[test]
    fn solve_bounded_is_exact_within_limit() {
        let cost = CostModel::default();
        for seed in 0..8 {
            let g = gen::gnp(12, 0.3, seed);
            let (opt, _) = brute_force_mvc(&g);
            let k = kernel(&g, &cost);
            let mut c = BlockCounters::new(0);
            let (size, cover) = solve_bounded(
                &k,
                greedy_seed(&g),
                g.num_vertices() as u64,
                false,
                &mut || false,
                &mut BlockScratch::new(),
                &mut ConnPool::new(),
                &mut c,
                4,
            )
            .expect("limit = |V| always admits a cover");
            assert_eq!(size, opt as u64, "seed {seed}");
            assert!(is_vertex_cover(&g, &cover));
            // Below the optimum the search must prove infeasibility.
            if opt > 0 {
                assert!(solve_bounded(
                    &k,
                    greedy_seed(&g),
                    opt as u64 - 1,
                    false,
                    &mut || false,
                    &mut BlockScratch::new(),
                    &mut ConnPool::new(),
                    &mut c,
                    4
                )
                .is_none());
            }
        }
    }

    #[test]
    fn weighted_solve_bounded_is_exact_within_limit() {
        let cost = CostModel::default();
        for seed in 0..6 {
            let g = gen::with_uniform_weights(gen::gnp(12, 0.3, seed), 10, seed + 30);
            let (opt, _) = crate::brute::weighted_brute_force(&g);
            let k = kernel(&g, &cost);
            let mut c = BlockCounters::new(0);
            let (weight, cover) = solve_bounded(
                &k,
                crate::greedy::greedy_weighted_mvc(&g),
                u64::MAX - 1,
                true,
                &mut || false,
                &mut BlockScratch::new(),
                &mut ConnPool::new(),
                &mut c,
                4,
            )
            .expect("an unbounded limit always admits a cover");
            assert_eq!(weight, opt, "seed {seed}");
            assert!(is_vertex_cover(&g, &cover));
            assert_eq!(weight, g.cover_weight(&cover));
            if opt > 0 {
                assert!(
                    solve_bounded(
                        &k,
                        crate::greedy::greedy_weighted_mvc(&g),
                        opt - 1,
                        true,
                        &mut || false,
                        &mut BlockScratch::new(),
                        &mut ConnPool::new(),
                        &mut c,
                        4
                    )
                    .is_none(),
                    "seed {seed}: a limit below the weighted optimum must be infeasible"
                );
            }
        }
    }

    /// The satellite regression: a component split on a *weighted*
    /// graph must carry the parent's weights through the relabeling
    /// and preserve the weighted optimum when the components' covers
    /// are combined.
    #[test]
    fn weighted_split_carries_weights_and_preserves_the_optimum() {
        // A triangle next to a 4-cycle, with weights chosen so the
        // weighted optimum differs from the unweighted one on both
        // components.
        let g = CsrGraph::from_edges(7, &[(0, 1), (0, 2), (1, 2), (3, 4), (4, 5), (5, 6), (6, 3)])
            .unwrap()
            .with_weights(vec![1, 9, 2, 8, 1, 8, 1])
            .unwrap();
        let (opt, _) = crate::brute::weighted_brute_force(&g);
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        let comps = detect_components(
            &k,
            &node,
            SplitParams::with_min_live(4),
            &mut Connectivity::new(),
            &mut c,
            true,
        )
        .unwrap();
        assert_eq!(comps.len(), 2);
        // Relabeled weights mirror the parent's.
        for comp in &comps {
            assert!(comp.graph.is_weighted());
            for (new, &old) in comp.old_ids.iter().enumerate() {
                assert_eq!(comp.graph.weight(new as u32), g.weight(old));
            }
            assert!(comp.lower_bound >= 1, "weighted matching LB present");
            assert_eq!(comp.greedy.0, comp.graph.cover_weight(&comp.greedy.1));
        }
        let verdict = solve_split(
            &k,
            &node,
            SearchBound::WeightedMvc { best: opt + 1 },
            &comps,
            &mut || false,
            &mut BlockScratch::new(),
            &mut ConnPool::new(),
            &mut c,
            4,
        );
        let SplitVerdict::Solved(combined) = verdict else {
            panic!("split must solve within best = opt + 1");
        };
        assert_eq!(combined.cover_weight(), opt, "split changed the optimum");
        assert!(is_vertex_cover(&g, &combined.cover_vertices()));
        combined.check_consistency(&g).unwrap();
        // And a bound at the optimum itself must prune (weighted MVC
        // must strictly beat `best`).
        assert!(matches!(
            solve_split(
                &k,
                &node,
                SearchBound::WeightedMvc { best: opt },
                &comps,
                &mut || false,
                &mut BlockScratch::new(),
                &mut ConnPool::new(),
                &mut c,
                4,
            ),
            SplitVerdict::Pruned
        ));
    }

    /// Satellite regression: the weighted sibling budgets use
    /// `max(matching, dual)`, and on shapes where the dual is strictly
    /// tighter it prunes the component-sum node *before* any
    /// sub-search runs — counter-pinned via `tree_nodes_visited`.
    #[test]
    fn weighted_split_prunes_on_the_dual_alone() {
        // Two P3 components 0-1-2 and 3-4-5, weights (1,2,1) each:
        // per-component optimum 2, matching bound 1, primal-dual dual
        // 2. With best = 4 the budget is 3; under dual bounds the
        // first component's limit is 3 − 2 = 1 < lb 2 → pruned with
        // zero nodes searched. Matching-only bounds (limit 2 ≥ 1)
        // would have to run the sub-searches to discover this.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)])
            .unwrap()
            .with_weights(vec![1, 2, 1, 1, 2, 1])
            .unwrap();
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        let comps = detect_components(
            &k,
            &node,
            SplitParams::with_min_live(4),
            &mut Connectivity::new(),
            &mut c,
            true,
        )
        .expect("two path components");
        assert_eq!(comps.len(), 2);
        for comp in &comps {
            assert_eq!(
                parvc_graph::matching::min_weight_matching_bound(&comp.graph),
                1,
                "the matching bound alone certifies only 1"
            );
            assert_eq!(comp.lower_bound, 2, "the dual certifies the optimum");
        }
        assert!(matches!(
            solve_split(
                &k,
                &node,
                SearchBound::WeightedMvc { best: 4 },
                &comps,
                &mut || false,
                &mut BlockScratch::new(),
                &mut ConnPool::new(),
                &mut c,
                4,
            ),
            SplitVerdict::Pruned
        ));
        assert_eq!(
            c.tree_nodes_visited, 0,
            "the dual bound must prune before any sub-search node"
        );
    }

    #[test]
    fn remaining_budgets() {
        assert_eq!(remaining_budget(SearchBound::Mvc { best: 10 }, 4), Some(5));
        assert_eq!(remaining_budget(SearchBound::Mvc { best: 5 }, 4), Some(0));
        assert_eq!(remaining_budget(SearchBound::Mvc { best: 4 }, 4), None);
        assert_eq!(remaining_budget(SearchBound::Pvc { k: 10 }, 4), Some(6));
        assert_eq!(remaining_budget(SearchBound::Pvc { k: 4 }, 4), Some(0));
        assert_eq!(remaining_budget(SearchBound::Pvc { k: 3 }, 4), None);
        assert_eq!(
            remaining_budget(SearchBound::WeightedMvc { best: 10 }, 4),
            Some(5)
        );
        assert_eq!(
            remaining_budget(SearchBound::WeightedMvc { best: 4 }, 4),
            None
        );
        assert_eq!(
            remaining_budget(SearchBound::WeightedMvc { best: u64::MAX }, 0),
            Some(i64::MAX),
            "the inert seed bound clamps instead of overflowing"
        );
    }
}
