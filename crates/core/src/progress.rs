//! Wall-clock progress heartbeat for long solves (`parvc solve
//! --progress[=secs]`): best-so-far bound, tree nodes, and nodes/sec
//! on stderr, on a fixed cadence.
//!
//! Like the deadline machinery, the hot loop must not read the clock
//! per node: [`Heartbeat::tick`] is one relaxed `fetch_add`, and only
//! every 256th node checks elapsed time (the same stride
//! `Deadline::expired` uses for its sticky-flag checks). The heartbeat
//! observes the search — it never changes what the solver does, so it
//! rides the same non-interference contract as the telemetry sinks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::bound::SearchBound;
use crate::shared::BoundSrc;

/// How many ticks between clock reads: a power of two so the gate is
/// one mask of the shared node counter.
const CLOCK_STRIDE: u64 = 256;

/// A shared progress reporter, ticked once per tree node by every
/// block. Thread-safe and lock-free; emission is claimed by a single
/// compare-exchange so concurrent blocks never double-print a beat.
#[derive(Debug)]
pub struct Heartbeat {
    start: Instant,
    interval_us: u64,
    next_due_us: AtomicU64,
    nodes: AtomicU64,
    last_nodes: AtomicU64,
    last_us: AtomicU64,
}

impl Heartbeat {
    /// A heartbeat printing every `interval` (sub-millisecond cadences
    /// are clamped to 1 ms so a misparse can't spam stderr).
    pub fn new(interval: Duration) -> Self {
        let interval_us = (interval.as_micros() as u64).max(1_000);
        Heartbeat {
            start: Instant::now(),
            interval_us,
            next_due_us: AtomicU64::new(interval_us),
            nodes: AtomicU64::new(0),
            last_nodes: AtomicU64::new(0),
            last_us: AtomicU64::new(0),
        }
    }

    /// Tree nodes ticked so far.
    pub fn nodes(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Counts one tree node; every 256th tick checks the clock and, if
    /// a beat is due, prints it with the best-so-far from `bound`.
    pub fn tick(&self, bound: &BoundSrc<'_>) {
        let n = self.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(CLOCK_STRIDE) {
            return;
        }
        let now_us = self.start.elapsed().as_micros() as u64;
        let due = self.next_due_us.load(Ordering::Relaxed);
        if now_us < due {
            return;
        }
        // One winner per beat: losers return without printing.
        let next = now_us + self.interval_us;
        if self
            .next_due_us
            .compare_exchange(due, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let prev_n = self.last_nodes.swap(n, Ordering::Relaxed);
        let prev_us = self.last_us.swap(now_us, Ordering::Relaxed);
        let dn = n.saturating_sub(prev_n);
        let dus = now_us.saturating_sub(prev_us).max(1);
        let rate = dn.saturating_mul(1_000_000) / dus;
        eprintln!(
            "[parvc {:>8.1}s] best={} nodes={} ({} nodes/s)",
            now_us as f64 / 1e6,
            best_label(bound.bound()),
            n,
            rate
        );
    }
}

/// Human label for the current incumbent: `-` until a first solution
/// exists (the atomics start at the type's MAX sentinel).
fn best_label(bound: SearchBound) -> String {
    match bound {
        SearchBound::Mvc { best: u32::MAX } => "-".to_string(),
        SearchBound::Mvc { best } => best.to_string(),
        SearchBound::WeightedMvc { best: u64::MAX } => "-".to_string(),
        SearchBound::WeightedMvc { best } => format!("w{best}"),
        SearchBound::Pvc { k } => format!("k={k}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::{BoundKind, GlobalBest};

    #[test]
    fn ticks_count_and_interval_gates_printing() {
        let best = GlobalBest::new(u32::MAX, Vec::new());
        let deadline = crate::shared::Deadline::new(None);
        let src = BoundSrc {
            kind: BoundKind::Mvc(&best),
            deadline: &deadline,
        };
        // A one-hour interval: nothing should print, but every tick
        // must still be counted.
        let hb = Heartbeat::new(Duration::from_secs(3600));
        for _ in 0..1000 {
            hb.tick(&src);
        }
        assert_eq!(hb.nodes(), 1000);
    }

    #[test]
    fn best_labels() {
        assert_eq!(best_label(SearchBound::Mvc { best: u32::MAX }), "-");
        assert_eq!(best_label(SearchBound::Mvc { best: 7 }), "7");
        assert_eq!(best_label(SearchBound::WeightedMvc { best: 12 }), "w12");
        assert_eq!(best_label(SearchBound::Pvc { k: 3 }), "k=3");
    }
}
