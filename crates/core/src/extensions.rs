//! Optional solver extensions beyond the paper's three rules.
//!
//! The paper's related work (Akiba & Iwata \[38\], the PACE solvers \[37\])
//! builds on richer reduction/pruning portfolios; two of the classic
//! ones are compatible with the degree-array representation (they only
//! ever *remove* vertices, never merge them, unlike e.g. degree-two
//! folding) and are implemented here behind [`Extensions`] flags:
//!
//! * **Domination rule** — if a live vertex `u` has a live neighbor `v`
//!   with `N[v] ⊆ N[u]` (closed neighborhoods in the intermediate
//!   graph), some minimum cover contains `u`: any cover avoiding `u`
//!   must contain all of `N(u) ∋ v`, and swapping `v` for `u` keeps it
//!   a cover. The degree-one and degree-two-triangle rules are special
//!   cases. Off by default (it is `O(Σ min(d(u), d(v)))` per round).
//! * **Matching lower bound** — a maximal matching of the intermediate
//!   graph needs one cover vertex per edge, so
//!   `|S| + |M| ≥` any completion; prune when that already meets the
//!   bound. Strictly stronger than the paper's edge-count test on
//!   sparse residuals.
//!
//! Neither extension is charged to the Figure 6 activity accounting —
//! they are deliberately outside the paper's instrumentation so the
//! reproduced breakdown stays comparable.

use parvc_simgpu::counters::BlockCounters;

use crate::bound::SearchBound;
use crate::ops::Kernel;
use crate::scratch::BlockScratch;
use crate::split::SplitParams;
use crate::TreeNode;

/// Optional pruning/reduction extensions (all off by default — the
/// paper-faithful configuration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Extensions {
    /// Apply the domination rule in every `reduce` fixpoint.
    pub domination_rule: bool,
    /// Prune with a greedy maximal-matching lower bound.
    pub matching_lower_bound: bool,
    /// Re-split the search at tree nodes whose residual graph has
    /// disconnected (see [`crate::split`]). `None` = off.
    ///
    /// Not part of [`Extensions::ALL`]: the reduction extensions
    /// strengthen every node the same way, while component branching
    /// changes the search-tree *shape* and is toggled separately (via
    /// [`SolverBuilder::component_branching`](crate::SolverBuilder::component_branching)
    /// or the `ComponentSteal` policy).
    pub component_branching: Option<SplitParams>,
    /// Which algorithm produces the initial upper bounds — the solve
    /// launch seed and `split`'s per-component sub-instance budgets
    /// (see [`crate::approx`]). Not part of [`Extensions::ALL`]:
    /// seeding changes where the search *starts*, not how nodes are
    /// strengthened.
    pub seed_strategy: crate::approx::SeedStrategy,
}

impl Extensions {
    /// The paper-faithful configuration (no extensions).
    pub const NONE: Extensions = Extensions {
        domination_rule: false,
        matching_lower_bound: false,
        component_branching: None,
        seed_strategy: crate::approx::SeedStrategy::Greedy,
    };

    /// Both reduction/pruning extensions on (component branching stays
    /// a separate toggle — see
    /// [`Extensions::component_branching`]).
    pub const ALL: Extensions = Extensions {
        domination_rule: true,
        matching_lower_bound: true,
        component_branching: None,
        seed_strategy: crate::approx::SeedStrategy::Greedy,
    };
}

impl<'a> Kernel<'a> {
    /// The stopping condition, strengthened by the matching lower bound
    /// when enabled. Replaces bare `bound.prune(node)` in the traversal
    /// loops.
    /// `scratch` provides the bound phase's endpoint flags (reused
    /// across nodes — no allocation on the hot path).
    pub fn prune(&self, node: &TreeNode, bound: SearchBound, scratch: &mut BlockScratch) -> bool {
        if bound.prune(node) {
            return true;
        }
        if self.ext.matching_lower_bound && !node.is_edgeless() {
            return match bound {
                SearchBound::Mvc { best } => {
                    node.cover_size() as u64 + self.residual_matching_bound(node, scratch)
                        >= best as u64
                }
                // Weight units: each matched edge needs a cover vertex
                // costing at least its cheaper endpoint, and matched
                // edges are disjoint, so the minima sum.
                SearchBound::WeightedMvc { best } => {
                    node.cover_weight()
                        .saturating_add(self.residual_weighted_matching_bound(node, scratch))
                        >= best
                }
                SearchBound::Pvc { k } => {
                    node.cover_size() as u64 + self.residual_matching_bound(node, scratch)
                        > k as u64
                }
            };
        }
        false
    }

    /// Size of a greedy maximal matching of the intermediate graph —
    /// every completion of `S` needs at least this many more vertices.
    pub fn residual_matching_bound(&self, node: &TreeNode, scratch: &mut BlockScratch) -> u64 {
        let matched = scratch.matched_for(node.len() as usize);
        let mut size = 0u64;
        for u in 0..node.len() {
            if matched[u as usize] || node.degree(u) <= 0 {
                continue;
            }
            for &v in self.graph.neighbors(u) {
                if v > u && !matched[v as usize] && !node.is_removed(v) {
                    matched[u as usize] = true;
                    matched[v as usize] = true;
                    size += 1;
                    break;
                }
            }
        }
        size
    }

    /// Weighted analogue of
    /// [`residual_matching_bound`](Self::residual_matching_bound):
    /// every completion of `S` pays
    /// at least the cheaper endpoint of each greedily matched residual
    /// edge (see [`parvc_graph::matching::min_weight_matching_bound`]).
    pub fn residual_weighted_matching_bound(
        &self,
        node: &TreeNode,
        scratch: &mut BlockScratch,
    ) -> u64 {
        let matched = scratch.matched_for(node.len() as usize);
        let mut weight = 0u64;
        for u in 0..node.len() {
            if matched[u as usize] || node.degree(u) <= 0 {
                continue;
            }
            for &v in self.graph.neighbors(u) {
                if v > u && !matched[v as usize] && !node.is_removed(v) {
                    matched[u as usize] = true;
                    matched[v as usize] = true;
                    weight += self.graph.weight(u).min(self.graph.weight(v));
                    break;
                }
            }
        }
        weight
    }

    /// One round of the domination rule: scan live vertices in id order
    /// and cover every `u` that dominates one of its neighbors.
    /// Returns whether anything changed.
    ///
    /// With `weighted` set, an application additionally requires
    /// `w(u) ≤ w(v)` for the dominated neighbor `v` — the swap that
    /// justifies the rule must not increase the cover weight.
    pub(crate) fn domination_round(
        &self,
        node: &mut TreeNode,
        weighted: bool,
        scratch: &mut BlockScratch,
        counters: &mut BlockCounters,
    ) -> bool {
        let mut changed = false;
        let mark = scratch.mark_for(node.len() as usize);
        for u in 0..node.len() {
            // Re-check liveness: earlier removals this round may have
            // touched u. Degree-0/1 vertices are handled by the cheaper
            // base rules.
            if node.degree(u) < 2 {
                continue;
            }
            // Mark N[u].
            mark[u as usize] = true;
            for v in node.live_neighbors(self.graph, u) {
                mark[v as usize] = true;
            }
            // Does u dominate any live neighbor v (N[v] ⊆ N[u])?
            let dominates = node
                .live_neighbors(self.graph, u)
                .filter(|&v| node.degree(v) <= node.degree(u))
                .filter(|&v| !weighted || self.graph.weight(u) <= self.graph.weight(v))
                .any(|v| node.live_neighbors(self.graph, v).all(|w| mark[w as usize]));
            // Unmark before mutating.
            mark[u as usize] = false;
            for v in node.live_neighbors(self.graph, u) {
                mark[v as usize] = false;
            }
            if dominates {
                self.remove_vertex(
                    node,
                    u,
                    parvc_simgpu::counters::Activity::HighDegreeRule,
                    counters,
                );
                changed = true;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use parvc_graph::{gen, CsrGraph};
    use parvc_simgpu::CostModel;

    fn kernel<'a>(g: &'a CsrGraph, cost: &'a CostModel, ext: Extensions) -> Kernel<'a> {
        Kernel {
            block_size: 32,
            ext,
            ..Kernel::sequential(g, cost)
        }
    }

    #[test]
    fn matching_bound_on_known_graphs() {
        let cost = CostModel::default();
        // A perfect matching on C6 has 3 edges → bound 3 (= MVC).
        let c6 = gen::cycle(6);
        let mut scratch = BlockScratch::new();
        let k = kernel(&c6, &cost, Extensions::NONE);
        assert_eq!(
            k.residual_matching_bound(&TreeNode::root(&c6), &mut scratch),
            3
        );
        // Star: one matched edge regardless of leaves.
        let star = gen::star(9);
        let k = kernel(&star, &cost, Extensions::NONE);
        assert_eq!(
            k.residual_matching_bound(&TreeNode::root(&star), &mut scratch),
            1
        );
    }

    #[test]
    fn matching_bound_respects_removals() {
        let g = gen::path(5); // 0-1-2-3-4
        let cost = CostModel::default();
        let k = kernel(&g, &cost, Extensions::NONE);
        let mut node = TreeNode::root(&g);
        node.remove_into_cover(&g, 2); // splits into two disjoint edges
        assert_eq!(
            k.residual_matching_bound(&node, &mut BlockScratch::new()),
            2
        );
    }

    #[test]
    fn matching_prune_is_stronger_than_edge_count() {
        // A perfect matching on 12 vertices: 6 edges. The paper's edge
        // test with best=4 allows (4-0-1)²=9 ≥ 6 edges → no prune; the
        // matching bound sees 6 ≥ 4 → prune.
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (2 * i, 2 * i + 1)).collect();
        let g = CsrGraph::from_edges(12, &edges).unwrap();
        let cost = CostModel::default();
        let node = TreeNode::root(&g);
        let bound = SearchBound::Mvc { best: 4 };
        assert!(!bound.prune(&node), "edge-count test must not fire");
        let k = kernel(
            &g,
            &cost,
            Extensions {
                matching_lower_bound: true,
                ..Extensions::NONE
            },
        );
        assert!(
            k.prune(&node, bound, &mut BlockScratch::new()),
            "matching bound must fire"
        );
    }

    #[test]
    fn domination_covers_the_dominator() {
        // K4 minus an edge: 0-1, 0-2, 0-3, 1-2, 1-3 (no 2-3 edge).
        // N[2] = {0,1,2} ⊆ N[0] = {0,1,2,3}: 0 dominates 2 → 0 covered.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let cost = CostModel::default();
        let k = kernel(&g, &cost, Extensions::ALL);
        let mut node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        assert!(k.domination_round(&mut node, false, &mut BlockScratch::new(), &mut c));
        assert!(node.is_removed(0));
        node.check_consistency(&g).unwrap();
    }

    #[test]
    fn extensions_preserve_optimum() {
        let cost = CostModel::default();
        for seed in 0..10 {
            let g = gen::gnp(12, 0.35, seed + 900);
            let (opt, _) = brute_force_mvc(&g);
            let k = kernel(&g, &cost, Extensions::ALL);
            let mut node = TreeNode::root(&g);
            let mut c = BlockCounters::new(0);
            // Domination applied to a fixpoint must keep the optimum:
            // opt = |S| + opt(residual).
            let mut scratch = BlockScratch::new();
            while k.domination_round(&mut node, false, &mut scratch, &mut c) {}
            node.check_consistency(&g).unwrap();
            let residual: Vec<(u32, u32)> = g
                .edges()
                .filter(|&(u, v)| !node.is_removed(u) && !node.is_removed(v))
                .collect();
            let rg = CsrGraph::from_edges(12, &residual).unwrap();
            assert_eq!(
                node.cover_size() + brute_force_mvc(&rg).0,
                opt,
                "seed {seed}: domination changed the optimum"
            );
        }
    }
}
