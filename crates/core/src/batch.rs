//! The Batched sub-tree hand-off scheme — Hybrid's worklist with
//! donations amortized `k` at a time — as a [`SchedulePolicy`].
//!
//! The Hybrid policy pays one queue negotiation per donated child; on
//! shallow, bushy trees (many branchings, little depth) that queue
//! traffic dominates the §IV-C accounting. This policy instead lets
//! branched children accumulate on the block's local stack and, when
//! the worklist is hungry and the stack holds more than `k` spare
//! nodes, hands off a **batch of k sub-trees in one negotiation** —
//! one queue operation's synchronization cost buys `k` transfers.
//!
//! Mechanically it is the Hybrid policy with the donation decision
//! moved from "every dispose" to "every k-th surplus": `dispose`
//! always pushes locally, then flushes a batch while the worklist sits
//! below the threshold. Acquisition is unchanged (local stack first,
//! then the worklist's §IV-C wait loop), so the termination protocol
//! is inherited as-is.

use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::runtime::BlockCtx;
use parvc_worklist::{LocalStack, PopOutcome, WorkerHandle, Worklist};

use crate::engine::{ExitCause, PolicyFactory, SchedulePolicy};
use crate::hybrid::HybridParams;
use crate::ops::Kernel;
use crate::shared::BoundSrc;
use crate::TreeNode;

/// How many children a batch hands off in one queue negotiation.
pub const DEFAULT_BATCH: usize = 8;

/// Shared state: the §IV-C worklist, the donation threshold, and the
/// batch size.
pub struct BatchFactory {
    worklist: Worklist<TreeNode>,
    threshold: usize,
    batch: usize,
}

impl BatchFactory {
    /// A fresh factory (one per launch). `batch` is clamped to ≥ 1.
    pub fn new(params: &HybridParams, batch: usize) -> Self {
        let mut worklist = Worklist::with_capacity(params.worklist_capacity);
        worklist.set_poll_sleep(params.poll_sleep);
        BatchFactory {
            worklist,
            threshold: params.threshold_entries(),
            batch: batch.max(1),
        }
    }
}

impl PolicyFactory for BatchFactory {
    fn seed(&self, root: TreeNode) {
        self.worklist.seed(root);
    }

    fn block_policy<'s>(
        &'s self,
        _ctx: BlockCtx,
        depth_bound: usize,
    ) -> Box<dyn SchedulePolicy + 's> {
        Box::new(BatchPolicy {
            worklist: &self.worklist,
            handle: self.worklist.handle(),
            threshold: self.threshold,
            batch: self.batch,
            stack: LocalStack::with_depth_bound(depth_bound),
        })
    }
}

/// One block's view: local stack first, batched hand-offs to the
/// worklist when it runs hungry.
pub struct BatchPolicy<'a> {
    worklist: &'a Worklist<TreeNode>,
    handle: WorkerHandle<'a, TreeNode>,
    threshold: usize,
    batch: usize,
    stack: LocalStack<TreeNode>,
}

impl SchedulePolicy for BatchPolicy<'_> {
    fn next(
        &mut self,
        kernel: &Kernel<'_>,
        _bound: BoundSrc<'_>,
        counters: &mut BlockCounters,
    ) -> Option<TreeNode> {
        if let Some(n) = self.stack.pop() {
            kernel.charge_node_copy(n.len(), Activity::PopFromStack, counters);
            return Some(n);
        }
        let (outcome, pop_stats) = self.handle.pop_with_stats();
        counters.charge(
            Activity::RemoveFromWorklist,
            pop_stats.attempts * kernel.cost.queue_op + pop_stats.sleeps * kernel.cost.poll_sleep,
        );
        match outcome {
            PopOutcome::Item(n) => {
                counters.nodes_from_worklist += 1;
                kernel.charge_node_copy(n.len(), Activity::RemoveFromWorklist, counters);
                Some(n)
            }
            PopOutcome::Done => None,
        }
    }

    fn dispose(&mut self, child: TreeNode, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        kernel.charge_node_copy(child.len(), Activity::PushToStack, counters);
        self.push_local(child, counters);
        // Hand off a batch while the worklist is hungry and the stack
        // holds more than one batch of spare work (the block keeps at
        // least one node's worth of look-ahead for itself).
        if self.handle.len_hint() < self.threshold && self.stack.len() > self.batch {
            // One negotiation amortized across the whole batch — the
            // point of the scheme.
            counters.charge(Activity::AddToWorklist, kernel.cost.queue_op);
            for _ in 0..self.batch {
                let Some(node) = self.stack.pop() else {
                    break;
                };
                let len = node.len();
                match self.handle.add(node) {
                    Ok(()) => {
                        counters.nodes_donated += 1;
                        kernel.charge_node_copy(len, Activity::AddToWorklist, counters);
                    }
                    Err(back) => {
                        // Queue filled mid-batch: keep the rest local
                        // (never drop work).
                        counters.donations_bounced += 1;
                        self.push_local(back, counters);
                        break;
                    }
                }
            }
        }
    }

    fn on_exit(&mut self, cause: ExitCause, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        match cause {
            ExitCause::Aborted => {
                self.worklist.signal_done();
                counters.charge(Activity::Terminate, kernel.cost.atomic_op);
            }
            ExitCause::Exhausted => {
                counters.charge(Activity::Terminate, kernel.cost.queue_op);
            }
            ExitCause::SolutionFound => {
                self.worklist.signal_done();
            }
        }
        counters.max_stack_depth = counters.max_stack_depth.max(self.stack.high_water() as u64);
    }
}

impl BatchPolicy<'_> {
    fn push_local(&mut self, node: TreeNode, counters: &mut BlockCounters) {
        self.stack.push(node).unwrap_or_else(|_| {
            panic!("stack depth bound violated (bound {})", self.stack.bound())
        });
        counters.max_stack_depth = counters.max_stack_depth.max(self.stack.len() as u64);
    }
}
