//! Solve statistics: everything the evaluation harness reports.

use std::time::Duration;

use parvc_simgpu::counters::LaunchReport;
use parvc_simgpu::LaunchConfig;

/// Statistics attached to every solve result.
#[derive(Debug)]
pub struct SolveStats {
    /// End-to-end wall time, including the greedy approximation and
    /// (for the parallel algorithms) the launch.
    pub wall_time: Duration,
    /// Total search-tree nodes visited (including StackOnly's redundant
    /// descent revisits).
    pub tree_nodes: u64,
    /// Simulated device time: the busiest SM's model-cycle total.
    pub device_cycles: u64,
    /// The launch configuration (None for Sequential).
    pub launch: Option<LaunchConfig>,
    /// Per-block / per-SM instrumentation for Figures 5 and 6.
    pub report: LaunchReport,
    /// Size of the greedy approximation that seeded the search (for
    /// preprocessed solves: forced vertices plus per-component seeds).
    pub greedy_size: u32,
    /// Whether the solve hit its wall-clock deadline; if so, MVC results
    /// are best-so-far (not proven optimal) and PVC results are
    /// inconclusive when `cover` is `None`.
    pub timed_out: bool,
    /// Kernelization statistics, when the solver ran with
    /// [`SolverBuilder::preprocess`](crate::SolverBuilder::preprocess).
    pub prep: Option<parvc_prep::PrepStats>,
    /// Structured telemetry (wall-clock spans, bridged model-cycle
    /// spans, and the metrics registry), when the solver ran with
    /// [`SolverBuilder::telemetry`](crate::SolverBuilder::telemetry).
    /// Export it with [`TelemetrySnapshot::chrome_trace`] /
    /// [`TelemetrySnapshot::metrics_json`] /
    /// [`TelemetrySnapshot::metrics_table`].
    ///
    /// [`TelemetrySnapshot::chrome_trace`]: parvc_obs::TelemetrySnapshot::chrome_trace
    /// [`TelemetrySnapshot::metrics_json`]: parvc_obs::TelemetrySnapshot::metrics_json
    /// [`TelemetrySnapshot::metrics_table`]: parvc_obs::TelemetrySnapshot::metrics_table
    pub telemetry: Option<parvc_obs::TelemetrySnapshot>,
}

impl SolveStats {
    /// Wall time in seconds, as the paper's tables report.
    pub fn seconds(&self) -> f64 {
        self.wall_time.as_secs_f64()
    }
}

/// Result of a minimum-vertex-cover solve (cardinality or weighted —
/// see [`SolverBuilder::weighted`](crate::SolverBuilder::weighted)).
#[derive(Debug)]
pub struct MvcResult {
    /// Number of vertices in `cover`. For cardinality solves this is
    /// the minimized objective; for weighted solves it is merely the
    /// witness's size ([`weight`](Self::weight) is the objective).
    pub size: u32,
    /// Total weight of `cover` under the graph's weight channel (equal
    /// to `size` on unweighted graphs). For weighted solves this is
    /// the minimized objective.
    pub weight: u64,
    /// The optimal cover (minimum cardinality, or minimum weight for
    /// weighted solves).
    pub cover: Vec<u32>,
    /// Instrumentation.
    pub stats: SolveStats,
}

/// Result of a parameterized-vertex-cover solve.
#[derive(Debug)]
pub struct PvcResult {
    /// The parameter the solve ran with.
    pub k: u32,
    /// A cover of size ≤ k, or `None` if none exists.
    pub cover: Option<Vec<u32>>,
    /// Instrumentation.
    pub stats: SolveStats,
}

impl PvcResult {
    /// Whether a cover of size ≤ k was found.
    pub fn found(&self) -> bool {
        self.cover.is_some()
    }
}

/// Result of a maximum-independent-set solve (see [`crate::mis`]).
#[derive(Debug)]
pub struct MisResult {
    /// Maximum independent set size (`|V| − MVC`).
    pub size: u32,
    /// A maximum independent set.
    pub set: Vec<u32>,
    /// Instrumentation from the underlying MVC solve.
    pub stats: SolveStats,
}
