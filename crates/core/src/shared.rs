//! Cross-block shared solver state: the atomic `best` and the PVC
//! found-flag.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use parvc_graph::VertexId;

use crate::TreeNode;

/// The global best solution for MVC: an atomic size (what the kernels
/// compare against, Figure 4 line 12/18) plus the witness cover guarded
/// by a lock (updated only on improvement, so contention is negligible).
pub struct GlobalBest {
    size: AtomicU32,
    witness: Mutex<(u32, Vec<VertexId>)>,
}

impl GlobalBest {
    /// Starts from the greedy approximation (Figure 1 line 1).
    pub fn new(size: u32, cover: Vec<VertexId>) -> Self {
        GlobalBest {
            size: AtomicU32::new(size),
            witness: Mutex::new((size, cover)),
        }
    }

    /// Current best size (a relaxed read, like a kernel load of the
    /// global; staleness only costs extra exploration, never
    /// correctness).
    pub fn load(&self) -> u32 {
        self.size.load(Ordering::Relaxed)
    }

    /// Records `node`'s cover if strictly better (Figure 4 line 18's
    /// atomic min). Returns whether this call improved the best.
    pub fn try_improve(&self, node: &TreeNode) -> bool {
        let new = node.cover_size();
        let mut cur = self.size.load(Ordering::Relaxed);
        loop {
            if new >= cur {
                return false;
            }
            match self
                .size
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut witness = self.witness.lock();
        if new < witness.0 {
            *witness = (new, node.cover_vertices());
        }
        true
    }

    /// Final answer: the smallest cover recorded.
    pub fn into_result(self) -> (u32, Vec<VertexId>) {
        self.witness.into_inner()
    }
}

/// The global best solution for **weighted** MVC: [`GlobalBest`] with
/// the atomic ordered on cover *weight* ([`TreeNode::cover_weight`])
/// instead of cover size. Kept as its own type so the unweighted hot
/// path stays a 32-bit atomic, exactly as the paper's kernels load it.
pub struct WeightedBest {
    weight: AtomicU64,
    witness: Mutex<(u64, Vec<VertexId>)>,
}

impl WeightedBest {
    /// Starts from the weighted greedy approximation.
    pub fn new(weight: u64, cover: Vec<VertexId>) -> Self {
        WeightedBest {
            weight: AtomicU64::new(weight),
            witness: Mutex::new((weight, cover)),
        }
    }

    /// Current best cover weight (relaxed read; staleness only costs
    /// extra exploration, never correctness).
    pub fn load(&self) -> u64 {
        self.weight.load(Ordering::Relaxed)
    }

    /// Records `node`'s cover if its weight is strictly better.
    /// Returns whether this call improved the best.
    pub fn try_improve(&self, node: &TreeNode) -> bool {
        let new = node.cover_weight();
        let mut cur = self.weight.load(Ordering::Relaxed);
        loop {
            if new >= cur {
                return false;
            }
            match self
                .weight
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut witness = self.witness.lock();
        if new < witness.0 {
            *witness = (new, node.cover_vertices());
        }
        true
    }

    /// Final answer: the lightest cover recorded.
    pub fn into_result(self) -> (u64, Vec<VertexId>) {
        self.witness.into_inner()
    }
}

/// The PVC early-exit flag (§IV-A): the first block to find a cover of
/// size ≤ k publishes it and every block drains out.
pub struct PvcFound {
    flag: AtomicBool,
    witness: Mutex<Option<Vec<VertexId>>>,
}

impl PvcFound {
    /// No solution found yet.
    pub fn new() -> Self {
        PvcFound {
            flag: AtomicBool::new(false),
            witness: Mutex::new(None),
        }
    }

    /// Checked at the top of every block iteration (the condition the
    /// paper adds "at the beginning of the loop, before line 4").
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Publishes a solution; the first writer wins.
    pub fn publish(&self, node: &TreeNode) {
        let mut witness = self.witness.lock();
        if witness.is_none() {
            *witness = Some(node.cover_vertices());
        }
        self.flag.store(true, Ordering::Release);
    }

    /// The published cover, if any.
    pub fn into_result(self) -> Option<Vec<VertexId>> {
        self.witness.into_inner()
    }
}

impl Default for PvcFound {
    fn default() -> Self {
        Self::new()
    }
}

/// A wall-clock budget shared by every block of a launch. The paper's
/// Table I reports ">2 hrs" cells — timeouts are part of the evaluation
/// protocol, so they are part of the solver: when the deadline passes,
/// blocks drain out and the solve reports best-so-far with a
/// `timed_out` flag.
pub struct Deadline {
    end: Option<std::time::Instant>,
    hit: AtomicBool,
}

impl Deadline {
    /// A deadline `limit` from now; `None` never expires.
    pub fn new(limit: Option<std::time::Duration>) -> Self {
        Deadline {
            end: limit.map(|d| std::time::Instant::now() + d),
            hit: AtomicBool::new(false),
        }
    }

    /// Whether the budget is spent (sticky once observed).
    pub fn expired(&self) -> bool {
        if self.hit.load(Ordering::Relaxed) {
            return true;
        }
        match self.end {
            None => false,
            Some(end) if std::time::Instant::now() >= end => {
                self.hit.store(true, Ordering::Relaxed);
                true
            }
            Some(_) => false,
        }
    }

    /// Whether expiry was ever observed during the run.
    pub fn was_hit(&self) -> bool {
        self.hit.load(Ordering::Relaxed)
    }
}

/// The problem kind a traversal is bounded by.
#[derive(Clone, Copy)]
pub enum BoundKind<'a> {
    /// MVC: bound against the live global best.
    Mvc(&'a GlobalBest),
    /// Weighted MVC: bound against the live global best *weight*.
    WeightedMvc(&'a WeightedBest),
    /// PVC: bound against fixed `k`, with the early-exit flag.
    Pvc {
        /// The parameter.
        k: u32,
        /// Cross-block found flag.
        found: &'a PvcFound,
    },
}

/// A block's view of the problem bound — the only place MVC and PVC
/// traversals differ, so the traversal loops are shared through it.
#[derive(Clone, Copy)]
pub struct BoundSrc<'a> {
    /// MVC-vs-PVC specifics.
    pub kind: BoundKind<'a>,
    /// The launch's wall-clock budget.
    pub deadline: &'a Deadline,
}

impl<'a> BoundSrc<'a> {
    /// The bound as of now (MVC re-reads the atomic best, like a kernel
    /// load from global memory).
    pub fn bound(&self) -> crate::bound::SearchBound {
        match self.kind {
            BoundKind::Mvc(best) => crate::bound::SearchBound::Mvc { best: best.load() },
            BoundKind::WeightedMvc(best) => {
                crate::bound::SearchBound::WeightedMvc { best: best.load() }
            }
            BoundKind::Pvc { k, .. } => crate::bound::SearchBound::Pvc { k },
        }
    }

    /// Records a solution node. Returns `true` if the whole traversal
    /// should stop (PVC: first cover ≤ k ends the search).
    pub fn on_solution(&self, node: &TreeNode) -> bool {
        match self.kind {
            BoundKind::Mvc(best) => {
                best.try_improve(node);
                false
            }
            BoundKind::WeightedMvc(best) => {
                best.try_improve(node);
                false
            }
            BoundKind::Pvc { found, .. } => {
                found.publish(node);
                true
            }
        }
    }

    /// Whether the traversal must end: a peer found a PVC solution
    /// (checked at the top of every block iteration — the paper's PVC
    /// extra condition) or the wall-clock budget is spent.
    pub fn should_abort(&self) -> bool {
        let kind_abort = match self.kind {
            BoundKind::Mvc(_) | BoundKind::WeightedMvc(_) => false,
            BoundKind::Pvc { found, .. } => found.is_set(),
        };
        kind_abort || self.deadline.expired()
    }
}

/// Raw result of a parallel MVC launch, before report assembly.
pub struct RawParallel {
    /// Best cover size.
    pub best_size: u32,
    /// Witness cover.
    pub best_cover: Vec<VertexId>,
    /// Per-block instrumentation.
    pub blocks: Vec<parvc_simgpu::counters::BlockCounters>,
}

/// Raw result of a parallel **weighted** MVC launch.
pub struct RawWeighted {
    /// Best cover weight.
    pub best_weight: u64,
    /// Witness cover.
    pub best_cover: Vec<VertexId>,
    /// Per-block instrumentation.
    pub blocks: Vec<parvc_simgpu::counters::BlockCounters>,
}

/// Raw result of a parallel PVC launch.
pub struct RawParallelPvc {
    /// A cover of size ≤ k, if one was found.
    pub cover: Option<Vec<VertexId>>,
    /// Per-block instrumentation.
    pub blocks: Vec<parvc_simgpu::counters::BlockCounters>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    fn node_covering(g: &parvc_graph::CsrGraph, vs: &[u32]) -> TreeNode {
        let mut n = TreeNode::root(g);
        for &v in vs {
            n.remove_into_cover(g, v);
        }
        n
    }

    #[test]
    fn improves_monotonically() {
        let g = gen::complete(6);
        let best = GlobalBest::new(6, (0..6).collect());
        assert!(best.try_improve(&node_covering(&g, &[0, 1, 2, 3, 4])));
        assert_eq!(best.load(), 5);
        assert!(
            !best.try_improve(&node_covering(&g, &[0, 1, 2, 3, 4])),
            "equal is not better"
        );
        let (size, cover) = best.into_result();
        assert_eq!(size, 5);
        assert_eq!(cover.len(), 5);
    }

    #[test]
    fn concurrent_improvements_keep_smallest_witness() {
        let g = gen::complete(10);
        let best = GlobalBest::new(10, (0..10).collect());
        std::thread::scope(|s| {
            for take in 5..9u32 {
                let best = &best;
                let g = &g;
                s.spawn(move || {
                    let n = node_covering(g, &(0..take).collect::<Vec<_>>());
                    best.try_improve(&n);
                });
            }
        });
        let (size, cover) = best.into_result();
        assert_eq!(size, 5);
        assert_eq!(cover.len(), 5, "witness must match the recorded size");
    }

    #[test]
    fn weighted_best_orders_on_weight_not_size() {
        // A star whose hub is expensive: {hub} is the smaller cover,
        // the five leaves are the lighter one.
        let g = gen::star(6).with_weights(vec![100, 1, 1, 1, 1, 1]).unwrap();
        let best = WeightedBest::new(u64::MAX, vec![]);
        assert!(best.try_improve(&node_covering(&g, &[0])));
        assert_eq!(best.load(), 100);
        assert!(
            best.try_improve(&node_covering(&g, &[1, 2, 3, 4, 5])),
            "5 vertices of weight 1 beat 1 vertex of weight 100"
        );
        let (w, cover) = best.into_result();
        assert_eq!(w, 5);
        assert_eq!(cover, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pvc_first_writer_wins() {
        let g = gen::complete(4);
        let found = PvcFound::new();
        assert!(!found.is_set());
        found.publish(&node_covering(&g, &[0, 1, 2]));
        found.publish(&node_covering(&g, &[1, 2, 3]));
        assert!(found.is_set());
        assert_eq!(found.into_result().unwrap(), vec![0, 1, 2]);
    }
}
